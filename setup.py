"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs go through `setup.py develop` (see pyproject.toml
for the actual metadata)."""

from setuptools import setup

setup()
