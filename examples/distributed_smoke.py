#!/usr/bin/env python
"""Distributed-sweep smoke test: crash a worker, demand bit-identical bytes.

The end-to-end acceptance check for the leased work-queue service
(``repro sweepd``), runnable locally and in CI:

1. run the sweep grid serially in-process — the oracle fingerprints;
2. submit the same grid to a SQLite bus;
3. start two independent CLI worker processes, one armed with
   ``--chaos-kill-after 1`` so it SIGKILLs itself right after taking
   its first lease (mid-cell, from the bus's point of view);
4. let the surviving worker expire the dead worker's lease, pick the
   cell back up, and drain the queue;
5. compare every completed task's ``stats_fingerprint`` against the
   serial oracle and fail loudly on any divergence, dead letter, or
   unfinished cell.

Exit status 0 means the crash was invisible in the results — the
determinism contract held across processes, a kill, and a lease
recovery.

Run:  python examples/distributed_smoke.py
      python examples/distributed_smoke.py --keep   (keep the bus file)
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import ExperimentConfig
from repro.harness import service
from repro.harness.bus import BusPolicy, SqliteBus
from repro.harness.runner import expand_grid, run_sweep
from repro.harness.service import task_id_for

SCHEMES = ["SingleBase", "EquiNox"]
BENCHMARKS = ["hotspot", "gaussian"]
CONFIG = ExperimentConfig(quota=16, mcts_iterations=20)


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", action="store_true",
                        help="keep the bus/work dir for inspection")
    args = parser.parse_args()

    cells = expand_grid(SCHEMES, BENCHMARKS, CONFIG)
    print(f"[1/5] serial oracle: {len(cells)} cells ...")
    serial = run_sweep(cells, progress=False)
    if not all(o.ok for o in serial.outcomes):
        print("FAIL: serial oracle sweep has failures", file=sys.stderr)
        return 1
    oracle = {
        task_id_for(i, cell): outcome.result.stats_fingerprint
        for i, (cell, outcome) in enumerate(zip(cells, serial.outcomes))
    }

    workdir = Path(tempfile.mkdtemp(prefix="repro-distributed-smoke-"))
    bus_path = workdir / "bus.sqlite"
    try:
        print(f"[2/5] submitting to {bus_path} ...")
        bus = SqliteBus(bus_path, policy=BusPolicy(retries=0,
                                                   backoff_s=0.0))
        service.submit(bus, cells)

        print("[3/5] starting 2 workers (one SIGKILLs itself "
              "after its first lease) ...")
        common = ["sweepd", "worker", "--bus", str(bus_path),
                  "--lease", "2", "--heartbeat", "0.5"]
        chaos = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *common,
             "--name", "chaos", "--chaos-kill-after", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        chaos.wait(timeout=120)
        if chaos.returncode >= 0:
            print(f"FAIL: chaos worker exited {chaos.returncode}, "
                  "expected a SIGKILL death", file=sys.stderr)
            return 1
        print(f"      chaos worker died as planned "
              f"(exit {chaos.returncode})")

        print("[4/5] clean worker drains the queue "
              "(recovering the expired lease) ...")
        drain = run_cli(*common, "--name", "clean")
        sys.stdout.write(drain.stdout)
        if drain.returncode != 0:
            print(f"FAIL: drain worker exited {drain.returncode}\n"
                  f"{drain.stderr}", file=sys.stderr)
            return 1

        print("[5/5] checking status and fingerprints ...")
        status = run_cli("sweepd", "status", "--bus", str(bus_path),
                         "--json")
        snapshot = json.loads(status.stdout)
        if not snapshot["complete"] or snapshot["dead_letters"]:
            print(f"FAIL: sweep did not converge cleanly: {snapshot}",
                  file=sys.stderr)
            return 1
        if snapshot["counts"]["done"] != len(cells):
            print(f"FAIL: {snapshot['counts']} != {len(cells)} done",
                  file=sys.stderr)
            return 1

        fleet = service.fingerprints(SqliteBus(bus_path))
        if fleet != oracle:
            diverged = sorted(
                task for task in oracle
                if fleet.get(task) != oracle[task]
            )
            print("FAIL: fingerprint divergence vs the serial oracle "
                  f"in {diverged}", file=sys.stderr)
            return 1
        print(f"OK: {len(cells)} cells bit-identical to serial across "
              "a worker SIGKILL and lease recovery")
        return 0
    finally:
        if args.keep:
            print(f"kept {workdir}")
        else:
            for entry in workdir.glob("*"):
                entry.unlink()
            workdir.rmdir()


if __name__ == "__main__":
    sys.exit(main())
