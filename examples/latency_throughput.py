#!/usr/bin/env python
"""Classic NoC latency-throughput study of the injection bottleneck.

Drives the reply network alone with the few-to-many pattern at rising
offered loads and prints the accepted throughput and mean latency, for
the plain mesh and for a mesh with EquiNox's EIRs attached.  The plain
mesh saturates at roughly one flit per CB per cycle — the injection
bottleneck — while the EIR network keeps accepting traffic well past
that point.

Run:  python examples/latency_throughput.py
"""

from repro.core.grid import Grid
from repro.core.mcts import SearchConfig
from repro.core.mcts.search import EirSearch
from repro.core.placement import nqueen_best
from repro.noc import EquiNoxInterface, Network, NetworkInterface
from repro.workloads import saturation_throughput, sweep_few_to_many

RATES = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4]


def plain_factory(cbs):
    def factory(grid):
        network = Network("plain", grid, flit_bytes=16, vc_classes=[(0, 1)])
        nis = {cb: NetworkInterface(network, cb) for cb in cbs}
        return network, nis

    return factory


def equinox_factory(placement):
    def factory(grid):
        search = EirSearch(
            grid, placement.nodes,
            SearchConfig(iterations_per_level=80, seed=0),
        )
        design = search.run().design
        network = Network("eir", grid, flit_bytes=16, vc_classes=[(0, 1)])
        nis = {
            cb: EquiNoxInterface(network, cb, design)
            for cb in placement.nodes
        }
        return network, nis

    return factory


def main() -> None:
    grid = Grid(8)
    placement = nqueen_best(grid, 8)
    cbs = list(placement.nodes)

    plain = sweep_few_to_many(
        grid, cbs, RATES, network_factory=plain_factory(cbs)
    )
    eir = sweep_few_to_many(
        grid, cbs, RATES, network_factory=equinox_factory(placement)
    )

    print(f"{'offered':>8} | {'plain tput':>10} {'plain lat':>10} | "
          f"{'EIR tput':>9} {'EIR lat':>9}")
    print("-" * 56)
    for p, e in zip(plain, eir):
        print(f"{p.offered:>8.2f} | {p.throughput:>10.3f} "
              f"{p.mean_latency:>10.1f} | {e.throughput:>9.3f} "
              f"{e.mean_latency:>9.1f}")
    gain = saturation_throughput(eir) / saturation_throughput(plain)
    print(f"\nsaturation throughput gain from EIRs: {gain:.2f}x")
    print("(tput = accepted reply packets per CB per cycle; a 5-flit")
    print(" packet on a 1 flit/cycle port saturates the plain mesh at 0.2)")


if __name__ == "__main__":
    main()
