#!/usr/bin/env python
"""Sweep schemes across a benchmark slice and print a Figure-9-style table.

A scaled-down version of the paper's headline experiment: five
benchmarks spanning compute-bound (gaussian) to memory-bound (kmeans),
all seven schemes, normalised execution time / energy / EDP.

Run:  python examples/benchmark_sweep.py             (about 3-5 minutes)
      python examples/benchmark_sweep.py --quick     (smaller runs)
      python examples/benchmark_sweep.py --jobs 4    (parallel workers)
      python examples/benchmark_sweep.py --smoke     (2x2 CI smoke grid)

``--jobs N`` fans the grid out across N worker processes through the
parallel sweep runner; aggregate statistics are bit-identical to a
serial run, and the timing summary at the end reports the achieved
parallel speedup (bounded by the machine's core count).
"""

import argparse

from repro import SCHEME_ORDER, ExperimentConfig
from repro.harness.metrics import format_table, normalize
from repro.harness.runner import sweep

BENCHMARKS = ["gaussian", "hotspot", "bfs", "fastWalshTransform", "kmeans"]


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller per-cell runs")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny 2-scheme x 2-benchmark grid (CI smoke)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    schemes = list(SCHEME_ORDER)
    benchmarks = list(BENCHMARKS)
    if args.smoke:
        schemes = ["SingleBase", "EquiNox"]
        benchmarks = ["gaussian", "kmeans"]
    config = ExperimentConfig(
        quota=20 if args.smoke else (40 if args.quick else 80),
        mcts_iterations=20 if args.smoke else (40 if args.quick else 100),
    )
    print(f"Running {len(schemes)} schemes x {len(benchmarks)} "
          f"benchmarks (quota={config.quota}, jobs={args.jobs}) ...")
    report = sweep(schemes, benchmarks, config, jobs=args.jobs,
                   progress=True)
    errors = report.errors()
    for (scheme, bench), trace in errors.items():
        print(f"\nFAILED {scheme} x {bench}:\n{trace}")
    if errors:
        raise SystemExit(1)
    results = report.results()

    means = {s: 0.0 for s in schemes}
    for metric, label in (
        ("cycles", "Execution time"),
        ("energy_nj", "NoC energy"),
        ("edp", "Energy-delay product"),
    ):
        rows = []
        means = {s: 0.0 for s in schemes}
        for bench in benchmarks:
            values = {
                s: getattr(results[(s, bench)], metric) for s in schemes
            }
            normed = normalize(values, "SingleBase")
            rows.append(tuple([bench] + [normed[s] for s in schemes]))
            for s in schemes:
                means[s] += normed[s] / len(benchmarks)
        rows.append(tuple(["MEAN"] + [means[s] for s in schemes]))
        print(f"\n{label} (normalised to SingleBase)")
        print(format_table(tuple(["Benchmark"] + schemes), rows))

    if not args.smoke:
        eq = means["EquiNox"]
        sep = means["SeparateBase"]
        print(
            f"\nEquiNox EDP: {100 * (1 - eq):.1f}% below SingleBase, "
            f"{100 * (1 - eq / sep):.1f}% below SeparateBase "
            f"(paper: 55.0% / 32.8% on the full 29-benchmark suite)"
        )

    print("\nTiming")
    print(report.summary())


if __name__ == "__main__":
    main()
