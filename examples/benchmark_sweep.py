#!/usr/bin/env python
"""Sweep schemes across a benchmark slice and print a Figure-9-style table.

A scaled-down version of the paper's headline experiment: five
benchmarks spanning compute-bound (gaussian) to memory-bound (kmeans),
all seven schemes, normalised execution time / energy / EDP.

Run:  python examples/benchmark_sweep.py           (about 3-5 minutes)
      python examples/benchmark_sweep.py --quick   (smaller runs)
"""

import sys

from repro import ExperimentConfig, SCHEME_ORDER, run_suite
from repro.harness.metrics import format_table, normalize

BENCHMARKS = ["gaussian", "hotspot", "bfs", "fastWalshTransform", "kmeans"]


def main() -> None:
    quick = "--quick" in sys.argv
    config = ExperimentConfig(
        quota=40 if quick else 80,
        mcts_iterations=40 if quick else 100,
    )
    print(f"Running {len(SCHEME_ORDER)} schemes x {len(BENCHMARKS)} "
          f"benchmarks (quota={config.quota}) ...")
    results = run_suite(SCHEME_ORDER, BENCHMARKS, config, progress=True)

    for metric, label in (
        ("cycles", "Execution time"),
        ("energy_nj", "NoC energy"),
        ("edp", "Energy-delay product"),
    ):
        rows = []
        means = {s: 0.0 for s in SCHEME_ORDER}
        for bench in BENCHMARKS:
            values = {
                s: getattr(results[(s, bench)], metric) for s in SCHEME_ORDER
            }
            normed = normalize(values, "SingleBase")
            rows.append(tuple([bench] + [normed[s] for s in SCHEME_ORDER]))
            for s in SCHEME_ORDER:
                means[s] += normed[s] / len(BENCHMARKS)
        rows.append(tuple(["MEAN"] + [means[s] for s in SCHEME_ORDER]))
        print(f"\n{label} (normalised to SingleBase)")
        print(format_table(tuple(["Benchmark"] + SCHEME_ORDER), rows))

    eq = means["EquiNox"]
    sep = means["SeparateBase"]
    print(
        f"\nEquiNox EDP: {100 * (1 - eq):.1f}% below SingleBase, "
        f"{100 * (1 - eq / sep):.1f}% below SeparateBase "
        f"(paper: 55.0% / 32.8% on the full 29-benchmark suite)"
    )


if __name__ == "__main__":
    main()
