#!/usr/bin/env python
"""Quickstart: design an EquiNox configuration and measure it.

This walks the full pipeline on an 8x8 network:

1. pick the cache-bank placement (scored N-Queen),
2. select Equivalent Injection Routers with MCTS,
3. validate the interposer wire plan (crossings, layers, µbumps),
4. run one benchmark on EquiNox and on the separate-network baseline,
   and compare execution time, energy and EDP.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, design_equinox, run_experiment
from repro.core.mcts import SearchConfig
from repro.harness.metrics import reduction_percent
from repro.physical.ubump import budget_for_design


def main() -> None:
    print("=" * 64)
    print("Step 1-3: the EquiNox design flow")
    print("=" * 64)
    design = design_equinox(
        width=8,
        num_cbs=8,
        search_config=SearchConfig(iterations_per_level=100, seed=0),
    )
    print(design.summary())

    bumps = budget_for_design(design.eir_design)
    print(f"\nµbumps needed: {bumps.num_bumps} "
          f"({bumps.area_mm2:.2f} mm^2 of die area)")

    print()
    print("=" * 64)
    print("Step 4: run a benchmark (kmeans) on EquiNox vs SeparateBase")
    print("=" * 64)
    config = ExperimentConfig(quota=80, mcts_iterations=100)
    baseline = run_experiment("SeparateBase", "kmeans", config)
    equinox = run_experiment("EquiNox", "kmeans", config)

    for label, result in (("SeparateBase", baseline), ("EquiNox", equinox)):
        print(
            f"{label:14s} cycles={result.cycles:6d}  "
            f"energy={result.energy_nj:8.1f} nJ  "
            f"EDP={result.edp:12.0f} nJ*ns"
        )
    print(
        f"\nEquiNox vs SeparateBase: "
        f"{reduction_percent(baseline.cycles, equinox.cycles):.1f}% faster, "
        f"{reduction_percent(baseline.energy_nj, equinox.energy_nj):.1f}% "
        f"less energy, "
        f"{reduction_percent(baseline.edp, equinox.edp):.1f}% lower EDP"
        f"\n(paper: 23.5% / 18.9% / 32.8% on the full suite)"
    )


if __name__ == "__main__":
    main()
