#!/usr/bin/env python
"""Explore the EIR design space: placements, searches, wire plans.

This example is for architects tuning the design flow itself rather
than just consuming its output:

* scores every 8x8 N-Queen placement and shows the penalty spread,
* compares MCTS against random search at matched evaluation budgets,
* inspects how the four evaluation metrics trade off in the winning
  design, and
* prints the RDL wire plan with per-link lengths and layer assignment.

Run:  python examples/design_space_explorer.py
"""

from repro.core import evaluation
from repro.core.grid import Grid
from repro.core.hotzone import placement_penalty
from repro.core.mcts import EirSearch, SearchConfig, random_search
from repro.core.nqueen import solution_to_nodes, solve_all
from repro.core.placement import nqueen_best
from repro.physical import interposer


def score_all_placements(grid: Grid) -> None:
    print("-" * 64)
    print("N-Queen placement scoring (all 92 solutions on 8x8)")
    print("-" * 64)
    penalties = sorted(
        placement_penalty(grid, solution_to_nodes(grid, cols))
        for cols in solve_all(grid.width)
    )
    print(f"solutions: {len(penalties)}")
    print(f"penalty: min={penalties[0]} median={penalties[46]} "
          f"max={penalties[-1]}")
    best = nqueen_best(grid, 8)
    print(f"chosen placement (penalty {best.penalty}): "
          f"{[grid.coord(n) for n in best.nodes]}")


def compare_searches(grid: Grid, placement) -> None:
    print()
    print("-" * 64)
    print("MCTS vs random search (matched evaluation budgets)")
    print("-" * 64)
    print(f"{'iter/level':>10} {'evals':>6} {'MCTS score':>11} "
          f"{'random score':>13}")
    for iterations in (5, 25, 100):
        mcts = EirSearch(
            grid, placement.nodes,
            SearchConfig(iterations_per_level=iterations, seed=0),
        ).run()
        rand = random_search(
            grid, placement.nodes, samples=max(mcts.designs_evaluated, 1),
            config=SearchConfig(seed=0),
        )
        print(f"{iterations:>10} {mcts.designs_evaluated:>6} "
              f"{mcts.evaluation.score:>11.4f} "
              f"{rand.evaluation.score:>13.4f}")


def inspect_winner(grid: Grid, placement) -> None:
    print()
    print("-" * 64)
    print("Winning design: evaluation metrics and RDL plan")
    print("-" * 64)
    result = EirSearch(
        grid, placement.nodes, SearchConfig(iterations_per_level=150, seed=0)
    ).run()
    design = result.design
    for name, raw in result.evaluation.raw.items():
        norm = result.evaluation.normalized[name]
        print(f"  {name:12s} raw={raw:8.2f}  normalised={norm:.3f}")

    plan = interposer.plan_for_design(design)
    print(f"\nRDL plan: {plan.num_crossings} crossings -> "
          f"{plan.num_layers} layer(s), "
          f"{plan.total_length_mm:.1f} mm of wire, "
          f"repeaters needed: {plan.needs_repeaters()}")
    for (src, dst), segment, layer in zip(
        plan.links, plan.segments, plan.layer_of
    ):
        print(f"  CB {grid.coord(src)} -> EIR {grid.coord(dst)}  "
              f"len={segment.length:.1f} tiles  layer={layer}")

    loads = evaluation.injection_loads(design)
    hottest = max(loads, key=loads.get)
    print(f"\nhottest injection point: node {grid.coord(hottest)} "
          f"with load {loads[hottest]:.1f} PE-shares "
          f"(no-EIR baseline would be 56.0)")


def main() -> None:
    grid = Grid(8)
    placement = nqueen_best(grid, 8)
    score_all_placements(grid)
    compare_searches(grid, placement)
    inspect_winner(grid, placement)


if __name__ == "__main__":
    main()
