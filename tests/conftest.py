"""Shared test configuration.

Registers a deterministic hypothesis profile so property tests shrink
and replay identically across machines, and keeps example budgets small
enough for the suite to finish in a couple of minutes.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
