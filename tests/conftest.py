"""Shared test configuration.

Registers a deterministic hypothesis profile so property tests shrink
and replay identically across machines, and keeps example budgets small
enough for the suite to finish in a couple of minutes.

The design-artefact disk cache is redirected to a per-session temporary
directory so test runs neither read from nor pollute the user's real
cache (individual tests may still override ``REPRO_CACHE_DIR``).
"""

import pytest
from hypothesis import HealthCheck, settings


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
