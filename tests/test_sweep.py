"""Tests for the latency-throughput sweep utility."""

import pytest

from repro.core.grid import Grid
from repro.core.placement import nqueen_best
from repro.workloads import saturation_throughput, sweep_few_to_many
from repro.workloads.synthetic import SweepPoint


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        grid = Grid(8)
        cbs = nqueen_best(grid, 8).nodes
        return sweep_few_to_many(
            grid, cbs, rates=[0.05, 0.15, 0.3], cycles=600, seed=1
        )

    def test_point_per_rate(self, points):
        assert [p.offered for p in points] == [0.05, 0.15, 0.3]

    def test_throughput_tracks_offered_below_saturation(self, points):
        low = points[0]
        assert low.throughput == pytest.approx(low.offered, rel=0.25)

    def test_saturation_caps_throughput(self, points):
        """A 5-flit packet on a 1 flit/cycle port caps near 0.2."""
        high = points[-1]
        assert high.throughput < 0.25

    def test_latency_grows_with_load(self, points):
        latencies = [p.mean_latency for p in points]
        assert latencies[0] < latencies[-1]

    def test_saturation_helper(self, points):
        assert saturation_throughput(points) == max(
            p.throughput for p in points
        )
        assert saturation_throughput([]) == 0.0

    def test_custom_factory(self):
        from repro.noc import Network, NetworkInterface

        grid = Grid(8)
        cbs = nqueen_best(grid, 8).nodes

        def factory(g):
            net = Network("f", g, flit_bytes=16, vc_classes=[(0, 1)])
            return net, {cb: NetworkInterface(net, cb) for cb in cbs}

        points = sweep_few_to_many(
            grid, cbs, rates=[0.1], cycles=300, network_factory=factory
        )
        assert isinstance(points[0], SweepPoint)
        assert points[0].throughput > 0
