"""Unit tests for XY and odd-even routing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.grid import Grid
from repro.noc import routing
from repro.noc.routing import (
    PORT_E,
    PORT_EJECT,
    PORT_N,
    PORT_S,
    PORT_W,
    odd_even_routes,
    opposite,
    port_delta,
    xy_route,
)


@pytest.fixture
def grid():
    return Grid(8)


def step(grid, cur, port):
    x, y = grid.coord(cur)
    dx, dy = port_delta(port)
    return grid.node(x + dx, y + dy)


class TestPorts:
    def test_opposites(self):
        assert opposite(PORT_E) == PORT_W
        assert opposite(PORT_N) == PORT_S
        assert opposite(opposite(PORT_E)) == PORT_E

    def test_port_deltas(self):
        assert port_delta(PORT_E) == (1, 0)
        assert port_delta(PORT_N) == (0, -1)


class TestXY:
    def test_x_first(self, grid):
        cur = grid.node(2, 2)
        dst = grid.node(5, 6)
        assert xy_route(grid, cur, dst) == [PORT_E]

    def test_then_y(self, grid):
        cur = grid.node(5, 2)
        dst = grid.node(5, 6)
        assert xy_route(grid, cur, dst) == [PORT_S]

    def test_eject_at_destination(self, grid):
        node = grid.node(3, 3)
        assert xy_route(grid, node, node) == [PORT_EJECT]

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_xy_path_terminates(self, src, dst):
        grid = Grid(8)
        cur = src
        for _ in range(20):
            ports = xy_route(grid, cur, dst)
            if ports == [PORT_EJECT]:
                break
            cur = step(grid, cur, ports[0])
        assert cur == dst

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_xy_is_minimal(self, src, dst):
        grid = Grid(8)
        cur, hops = src, 0
        while cur != dst:
            cur = step(grid, cur, xy_route(grid, cur, dst)[0])
            hops += 1
        assert hops == grid.hops(src, dst)


class TestOddEven:
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_never_empty(self, src, dst):
        grid = Grid(8)
        ports = odd_even_routes(grid, src, src, dst)
        assert ports

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_productive_only(self, src, dst):
        """Every returned port reduces the distance to the destination."""
        grid = Grid(8)
        if src == dst:
            return
        for port in odd_even_routes(grid, src, src, dst):
            nxt = step(grid, src, port)
            assert grid.hops(nxt, dst) == grid.hops(src, dst) - 1

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 1000))
    def test_all_choices_reach_destination(self, src, dst, pick_seed):
        """Any sequence of odd-even choices is minimal and terminates."""
        import random

        grid = Grid(8)
        rng = random.Random(pick_seed)
        cur, hops = src, 0
        while cur != dst:
            ports = odd_even_routes(grid, cur, src, dst)
            assert ports, (grid.coord(cur), grid.coord(dst))
            cur = step(grid, cur, rng.choice(ports))
            hops += 1
            assert hops <= grid.hops(src, dst)
        assert hops == grid.hops(src, dst)

    def test_turn_rule_even_column_no_en_turn(self, grid):
        """Eastbound packets at even columns may not turn north/south
        unless they entered the column legally (ROUTE-level check)."""
        # At an even column (not the source), heading east with dy != 0
        # and dx > 1: the vertical move must be disallowed.
        src = grid.node(1, 4)
        cur = grid.node(2, 4)  # even column, not source column
        dst = grid.node(5, 1)
        ports = odd_even_routes(grid, cur, src, dst)
        assert PORT_N not in ports
        assert ports == [PORT_E]

    def test_westbound_vertical_only_at_even(self, grid):
        src = grid.node(6, 2)
        dst = grid.node(1, 5)
        odd_col = grid.node(5, 2)
        even_col = grid.node(4, 2)
        assert PORT_S not in odd_even_routes(grid, odd_col, src, dst)
        assert PORT_S in odd_even_routes(grid, even_col, src, dst)

    def test_adaptive_choice_in_quadrant(self, grid):
        """Interior quadrant destinations usually offer two options."""
        src = grid.node(1, 1)
        dst = grid.node(6, 6)
        ports = odd_even_routes(grid, src, src, dst)
        assert len(ports) >= 1


class TestDispatch:
    def test_route_candidates_xy(self, grid):
        assert routing.route_candidates(grid, "xy", 0, 0, 9)

    def test_route_candidates_oddeven(self, grid):
        assert routing.route_candidates(grid, "oddeven", 0, 0, 9)

    def test_unknown_algorithm(self, grid):
        with pytest.raises(ValueError):
            routing.route_candidates(grid, "valiant", 0, 0, 9)
