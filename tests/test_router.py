"""Router-level unit tests: arbitration, VC allocation, monopolisation."""


from repro.core.grid import Grid
from repro.noc import Network, NetworkInterface, Packet, PacketType
from repro.noc.routing import NUM_MESH_PORTS, PORT_E, PORT_W


def make_net(monopolize=False, **kwargs):
    kwargs.setdefault("flit_bytes", 16)
    kwargs.setdefault("vc_classes", [(0,), (1,)])
    net = Network("t", Grid(4), monopolize=monopolize, **kwargs)
    nis = {n: NetworkInterface(net, n) for n in net.grid.nodes()}
    return net, nis


class TestStructure:
    def test_mesh_ports_wired(self):
        net, _ = make_net()
        center = net.routers[net.grid.node(1, 1)]
        assert set(center.neighbors) == set(range(NUM_MESH_PORTS))

    def test_boundary_ports_missing(self):
        net, _ = make_net()
        corner = net.routers[0]
        assert len(corner.disconnected_mesh_ports()) == 2

    def test_injection_port_added_by_ni(self):
        net, nis = make_net()
        router = net.routers[0]
        # mesh inputs + one NI injection port
        assert len(router.input_ports) == NUM_MESH_PORTS + 1

    def test_add_input_port_indices_unique(self):
        net, _ = make_net()
        router = net.routers[5]
        a = router.add_input_port()
        b = router.add_input_port()
        assert a != b
        assert a not in router.outputs
        assert b in router.inputs

    def test_eject_port_present(self):
        net, _ = make_net()
        for router in net.routers:
            assert len(router.eject_ports) == 1
            assert router.eject_ports[0] == NUM_MESH_PORTS


class TestArbitration:
    def test_output_port_serves_one_flit_per_cycle(self):
        """Two packets contending for one link interleave fairly."""
        net, nis = make_net()
        # Both sources on row 0 heading to the same far node: their
        # paths share links.
        a = Packet(1, PacketType.READ_REPLY, 0, 3, 5, 0, vc_class=1)
        b = Packet(2, PacketType.READ_REPLY, 1, 3, 5, 0, vc_class=1)
        nis[0].enqueue(a)
        nis[1].enqueue(b)
        delivered = []
        for _ in range(200):
            net.tick()
            p = net.pop_delivered(3)
            if p:
                delivered.append(p.pid)
            if len(delivered) == 2:
                break
        assert sorted(delivered) == [1, 2]

    def test_vc_held_until_tail(self):
        net, nis = make_net()
        packet = Packet(1, PacketType.READ_REPLY, 0, 3, 5, 0, vc_class=1)
        nis[0].enqueue(packet)
        held_seen = False
        for _ in range(30):
            net.tick()
            router = net.routers[0]
            out = router.outputs[PORT_E]
            if out.owner[1] is not None:
                held_seen = True
            if net.pop_delivered(3):
                break
        assert held_seen
        # After delivery, ownership is released everywhere.
        for router in net.routers:
            for out in router.outputs.values():
                assert all(owner is None for owner in out.owner)


class TestMonopolization:
    def test_disabled_by_default(self):
        net, _ = make_net(monopolize=False)
        router = net.routers[5]
        assert router._borrowable_vcs(1, 1) == ()

    def test_requests_never_borrow(self):
        net, _ = make_net(monopolize=True)
        router = net.routers[5]
        assert router._borrowable_vcs(0, 0) == ()

    def test_replies_borrow_when_router_clear(self):
        net, _ = make_net(monopolize=True)
        router = net.routers[5]
        assert router._borrowable_vcs(1, 1) == (0,)

    def test_no_borrow_from_borrowed_vc(self):
        net, _ = make_net(monopolize=True)
        router = net.routers[5]
        # Packet currently sitting in VC 0 (foreign for class 1).
        assert router._borrowable_vcs(1, 0) == ()

    def test_no_borrow_when_other_class_present(self):
        net, nis = make_net(monopolize=True)
        router = net.routers[net.grid.node(1, 0)]
        assert router._borrowable_vcs(1, 1) == (0,)  # clear: may borrow
        # Park a request flit directly in an input VC.
        req = Packet(1, PacketType.READ_REQUEST, 0, 3, 1, 0, vc_class=0)
        flit = req.make_flits()[0]
        router.accept(PORT_W, 0, flit, cycle=1)
        assert router._borrowable_vcs(1, 1) == ()

    def test_vcmono_network_no_class_leak_for_requests(self):
        """Requests stay in their class VCs even with monopolisation."""
        import random

        net, nis = make_net(monopolize=True)
        rng = random.Random(0)
        pid = 0
        for cycle in range(300):
            for src in net.grid.nodes():
                if rng.random() < 0.2:
                    dst = rng.randrange(16)
                    if dst == src:
                        continue
                    pid += 1
                    reply = rng.random() < 0.6
                    ptype = (PacketType.READ_REPLY if reply
                             else PacketType.READ_REQUEST)
                    nis[src].enqueue(
                        Packet(pid, ptype, src, dst, 5 if reply else 1, 0,
                               vc_class=1 if reply else 0)
                    )
            net.tick()
            for router in net.routers:
                for p in router.input_ports:
                    for vc, ivc in enumerate(router.inputs[p]):
                        for flit in ivc.queue:
                            if flit.packet.vc_class == 0:
                                assert vc == 0  # requests never in VC 1
            for n in net.grid.nodes():
                while net.pop_delivered(n):
                    pass

    def test_vcmono_drains_heavy_mixed_traffic(self):
        """No deadlock under saturating mixed traffic (regression for
        the parked-borrower deadlock found during bring-up)."""
        import random

        net, nis = make_net(monopolize=True)
        rng = random.Random(7)
        sent = 0
        for cycle in range(500):
            for src in net.grid.nodes():
                if rng.random() < 0.3:
                    dst = rng.randrange(16)
                    if dst == src:
                        continue
                    sent += 1
                    reply = rng.random() < 0.7
                    ptype = (PacketType.READ_REPLY if reply
                             else PacketType.READ_REQUEST)
                    nis[src].enqueue(
                        Packet(sent, ptype, src, dst, 5 if reply else 1, 0,
                               vc_class=1 if reply else 0)
                    )
            net.tick()
            for n in net.grid.nodes():
                while net.pop_delivered(n):
                    pass
        for _ in range(20000):
            net.tick()
            for n in net.grid.nodes():
                while net.pop_delivered(n):
                    pass
            if net.idle():
                break
        assert net.idle()
        assert net.stats.packets_delivered == sent
