"""Unit tests for the N-Queen solvers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import nqueen
from repro.core.grid import Grid


KNOWN_COUNTS = {1: 1, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92}


class TestSolveAll:
    @pytest.mark.parametrize("n,count", sorted(KNOWN_COUNTS.items()))
    def test_known_solution_counts(self, n, count):
        assert len(nqueen.solve_all(n)) == count

    def test_all_solutions_valid(self):
        for cols in nqueen.solve_all(8):
            assert nqueen.is_valid_solution(cols)

    def test_solutions_distinct(self):
        solutions = nqueen.solve_all(8)
        assert len(set(solutions)) == len(solutions)

    def test_limit_stops_early(self):
        assert len(nqueen.solve_all(8, limit=5)) == 5

    def test_no_solution_for_n3(self):
        assert nqueen.solve_all(3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            nqueen.solve_all(0)


class TestValidity:
    def test_valid_known_solution(self):
        assert nqueen.is_valid_solution((0, 4, 7, 5, 2, 6, 1, 3))

    def test_rejects_same_column(self):
        assert not nqueen.is_valid_solution((0, 0, 4, 6))

    def test_rejects_diagonal(self):
        assert not nqueen.is_valid_solution((0, 1, 3, 2))

    def test_rejects_non_permutation(self):
        assert not nqueen.is_valid_solution((0, 2, 9, 4))


class TestSampling:
    def test_sampled_solutions_valid(self):
        for cols in nqueen.sample_solutions(12, 10, seed=3):
            assert nqueen.is_valid_solution(cols)

    def test_sampling_deterministic(self):
        a = nqueen.sample_solutions(12, 8, seed=1)
        b = nqueen.sample_solutions(12, 8, seed=1)
        assert a == b

    def test_sampling_distinct(self):
        sols = nqueen.sample_solutions(16, 12, seed=0)
        assert len(set(sols)) == len(sols)
        assert len(sols) == 12

    @settings(deadline=None, max_examples=5)
    @given(st.integers(8, 14))
    def test_sampling_any_n(self, n):
        sols = nqueen.sample_solutions(n, 3, seed=0)
        assert sols
        assert all(nqueen.is_valid_solution(s) for s in sols)


class TestGridConversion:
    def test_solution_to_nodes(self):
        grid = Grid(8)
        cols = nqueen.solve_all(8)[0]
        nodes = nqueen.solution_to_nodes(grid, cols)
        assert len(nodes) == 8
        # One per row and one per column.
        coords = [grid.coord(n) for n in nodes]
        assert len({y for _x, y in coords}) == 8
        assert len({x for x, _y in coords}) == 8

    def test_non_square_grid_rejected(self):
        with pytest.raises(ValueError):
            nqueen.solution_to_nodes(Grid(8, 4), (0,) * 8)

    def test_mismatched_size_rejected(self):
        with pytest.raises(ValueError):
            nqueen.solution_to_nodes(Grid(8), (0, 1, 2))


class TestCandidates:
    def test_small_n_enumerates_all(self):
        assert len(nqueen.candidate_solutions(8)) == 92

    def test_large_n_samples(self):
        sols = nqueen.candidate_solutions(12, max_solutions=16, seed=0)
        assert 0 < len(sols) <= 16

    def test_count_solutions(self):
        assert nqueen.count_solutions(6) == 4


class TestPruning:
    def test_prune_yields_coordinate_subsets(self):
        cols = nqueen.solve_all(8)[0]
        subsets = list(nqueen.prune_to_k(cols, 6, max_subsets=50))
        assert subsets
        for placement in subsets:
            assert len(placement) == 6
            # still distinct rows and columns
            assert len({x for x, _ in placement}) == 6
            assert len({y for _, y in placement}) == 6

    def test_prune_too_many(self):
        with pytest.raises(ValueError):
            list(nqueen.prune_to_k((0, 2), 3))

    def test_prune_respects_cap(self):
        cols = nqueen.solve_all(8)[0]
        subsets = list(nqueen.prune_to_k(cols, 4, max_subsets=10))
        assert len(subsets) == 10
