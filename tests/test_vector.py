"""Object vs vector tick-engine parity: the golden-model contract.

The struct-of-arrays engine (:mod:`repro.noc.vector`) is a performance
path, never a semantic fork: for any configuration — every scheme,
either scheduler, telemetry on or off, fault plans that actually fire —
its ``stats_fingerprint`` must be bit-identical to the per-object
golden model.  These tests pin that contract directly for all seven
compared schemes and the synthetic drivers; the fuzzed side lives in
the verify campaign's dedicated engine-parity property
(:func:`repro.verify.check_engine_parity_case`).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.grid import Grid
from repro.noc.faults import FaultSpec
from repro.noc.network import Network, network_class, resolve_engine
from repro.noc.vector import VectorNetwork
from repro.schemes import SCHEME_ORDER, get_spec
from repro.verify import (
    FAST,
    KNOWN_PROPERTIES,
    PROPERTY_ENGINE_PARITY,
    VerifyCase,
    engine_counterpart,
    run_case,
)
from repro.verify.strategies import cases
from repro.workloads.synthetic import run_uniform

QUICK = dict(benchmark="backprop", width=4, num_cbs=3, quota=3, seed=7)

#: A plan that demonstrably fires inside every QUICK-sized run: a
#: transient mesh-link fault plus an NI-buffer fault, both healing well
#: before the run ends so liveness holds.
FIRING_PLAN = (
    FaultSpec(kind="mesh_link", node=0, peer=1, at_cycle=40,
              heal_cycle=140),
    FaultSpec(kind="ni_buffer", node=2, buffer=0, net="any", at_cycle=60,
              heal_cycle=160),
)


def _assert_parity(case: VerifyCase):
    """Run ``case`` under both engines; return the object-model run."""
    base = run_case(case, validate_every=0)
    twin = run_case(engine_counterpart(case), validate_every=0)
    assert twin.stats_fingerprint == base.stats_fingerprint, case.label()
    return base


class TestEngineSelection:
    def test_resolve_engine_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "object"
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert resolve_engine() == "vector"
        assert resolve_engine("object") == "object"  # explicit arg wins
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp")

    def test_network_class_dispatch(self):
        assert network_class("object") is Network
        assert network_class(None) is Network
        assert network_class("vector") is VectorNetwork
        assert issubclass(VectorNetwork, Network)
        assert VectorNetwork.engine == "vector"
        assert Network.engine == "object"

    def test_engine_threads_from_cli_to_fabric(self):
        from repro.cli import build_parser
        from repro.harness.experiment import build_fabric

        args = build_parser().parse_args(
            ["run", "--scheme", "SingleBase", "--engine", "vector"]
        )
        assert args.engine == "vector"
        case = VerifyCase(scheme="SingleBase", engine="vector", **QUICK)
        cfg = case.experiment_config()
        assert cfg.engine == "vector"
        fabric = build_fabric("SingleBase", cfg)
        assert fabric.engine == "vector"
        for net, _ratio, _role in fabric.networks:
            assert isinstance(net, VectorNetwork)


class TestSchemeParity:
    # Loop topologies are object-only and reject fault plans, so the
    # firing-faults parity property ranges over the fault-capable
    # mesh schemes (the loop baselines get their own rails in
    # test_schemes.py::TestLoopSchemes).
    @pytest.mark.parametrize(
        "scheme",
        [s for s in SCHEME_ORDER if get_spec(s).supports_faults],
    )
    def test_firing_faults_bit_identical(self, scheme):
        # The strongest form of the contract: a fault plan that
        # actually fires mid-run (not merely armed) must perturb both
        # engines identically.
        case = VerifyCase(scheme=scheme, faults=FIRING_PLAN, **QUICK)
        run = _assert_parity(case)
        assert run.injector is not None and run.injector.applied > 0

    def test_dense_scheduler_parity(self):
        case = VerifyCase(
            scheme="EquiNox", scheduler="dense", faults=FIRING_PLAN,
            **QUICK,
        )
        _assert_parity(case)

    def test_telemetry_probes_read_vector_state(self):
        # Per-cycle telemetry sampling reads live occupancy/credit
        # state; on the vector path the probes must see the SoA-backed
        # truth without perturbing the fingerprint.
        case = VerifyCase(scheme="EquiNox", telemetry=1, **QUICK)
        _assert_parity(case)

    def test_audits_enforced_on_vector_path(self):
        # validate_every=1 runs the full audit set every base cycle
        # against materialised vector state: conservation, credit and
        # ownership invariants stay enforced, not bypassed for speed.
        case = VerifyCase(
            scheme="EquiNox", engine="vector", faults=FIRING_PLAN, **QUICK
        )
        run = run_case(case, validate_every=1)
        assert run.transactions_completed == run.transactions_total


class TestSyntheticParity:
    @pytest.mark.parametrize("scheduler", ["active", "dense"])
    def test_uniform_traffic_bit_identical(self, scheduler):
        kwargs = dict(
            injection_rate=0.1, cycles=300, seed=3, scheduler=scheduler
        )
        obj = run_uniform(Grid(8), **kwargs)
        vec = run_uniform(Grid(8), engine="vector", **kwargs)
        assert isinstance(vec.network, VectorNetwork)
        assert not isinstance(obj.network, VectorNetwork)
        assert (vec.sent, vec.received, vec.cycles) == (
            obj.sent, obj.received, obj.cycles
        )
        assert obj.sent and obj.received  # actually moved traffic
        assert vec.network.stats.fingerprint() == (
            obj.network.stats.fingerprint()
        )


class TestVerifyIntegration:
    def test_engine_parity_is_a_campaign_property(self):
        assert PROPERTY_ENGINE_PARITY in KNOWN_PROPERTIES
        assert FAST.engine_examples > 0

    def test_fast_profile_space_draws_both_engines(self):
        seen = set()

        @settings(
            deadline=None, max_examples=40, derandomize=True,
            database=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(case=cases())
        def sample(case):
            seen.add(case.engine)

        sample()
        assert seen == {"object", "vector"}
