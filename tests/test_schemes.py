"""Tests for scheme configs and the fabric builder."""

import pytest

from repro.harness.experiment import ExperimentConfig, build_fabric
from repro.noc import PacketType
from repro.noc.interface import EquiNoxInterface, MultiPortInterface
from repro.schemes import SCHEME_ORDER, SchemeConfig, get_config


class TestConfigs:
    def test_all_seven_schemes_exist(self):
        assert SCHEME_ORDER == [
            "SingleBase",
            "VC-Mono",
            "Interposer-CMesh",
            "SeparateBase",
            "DA2Mesh",
            "MultiPort",
            "EquiNox",
        ]

    def test_network_types_match_paper(self):
        """Schemes 1-3 are single-network, 4-7 separate (section 5)."""
        for name in SCHEME_ORDER[:3]:
            assert get_config(name).network_type == "single"
        for name in SCHEME_ORDER[3:]:
            assert get_config(name).network_type == "separate"

    def test_equinox_uses_nqueen(self):
        assert get_config("EquiNox").placement_name == "nqueen"

    def test_others_use_diamond(self):
        for name in SCHEME_ORDER[:-1]:
            assert get_config(name).placement_name == "diamond"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            get_config("Mesh2000")

    def test_invalid_combinations_rejected(self):
        with pytest.raises(ValueError):
            SchemeConfig(name="x", network_type="single", equinox=True)
        with pytest.raises(ValueError):
            SchemeConfig(name="x", network_type="single", da2mesh=True)
        with pytest.raises(ValueError):
            SchemeConfig(name="x", network_type="ring")


class TestFabricStructure:
    @pytest.fixture(autouse=True)
    def _cfg(self):
        self.cfg = ExperimentConfig(quota=10, mcts_iterations=20)

    def test_single_base_one_network(self):
        fabric = build_fabric("SingleBase", self.cfg)
        assert len(fabric.networks) == 1
        assert fabric.request_net is fabric.reply_net

    def test_separate_base_two_networks(self):
        fabric = build_fabric("SeparateBase", self.cfg)
        assert len(fabric.networks) == 2
        assert fabric.request_net is not fabric.reply_net

    def test_cmesh_has_overlay(self):
        fabric = build_fabric("Interposer-CMesh", self.cfg)
        assert fabric.cmesh_net is not None
        assert fabric.cmesh_net.grid.size == 16
        assert len(fabric.cmesh_nis) == 64

    def test_da2mesh_has_eight_subnets(self):
        fabric = build_fabric("DA2Mesh", self.cfg)
        assert len(fabric.reply_subnets) == 8
        for subnet in fabric.reply_subnets:
            assert subnet.flit_bytes == 2
            assert subnet.clock_ratio == 2.5

    def test_multiport_nis(self):
        fabric = build_fabric("MultiPort", self.cfg)
        for cb in fabric.placement:
            assert isinstance(fabric.reply_nis[cb], MultiPortInterface)
            assert len(fabric.reply_nis[cb].buffers) == 4
            # Extra request-network ejection ports at CBs.
            router = fabric.request_net.routers[cb]
            assert len(router.eject_ports) == 4

    def test_equinox_nis_and_eir_ports(self):
        fabric = build_fabric("EquiNox", self.cfg)
        design = fabric.equinox_design
        assert design is not None
        total_eirs = 0
        for cb in fabric.placement:
            ni = fabric.reply_nis[cb]
            assert isinstance(ni, EquiNoxInterface)
            total_eirs += len(ni.buffers) - 1
        assert total_eirs == design.num_eirs

    def test_vc_mono_flags(self):
        fabric = build_fabric("VC-Mono", self.cfg)
        net = fabric.request_net
        assert net.routers[0].monopolize
        assert net.monopolize_injection


class TestFabricTraffic:
    @pytest.fixture(autouse=True)
    def _cfg(self):
        self.cfg = ExperimentConfig(quota=10, mcts_iterations=20)

    def _roundtrip(self, scheme):
        fabric = build_fabric(scheme, self.cfg)
        pe = fabric.pes[0]
        cb = fabric.placement[0]
        token = {"id": 1}
        fabric.send_request(pe, cb, PacketType.READ_REQUEST, token)
        got = None
        for _ in range(500):
            fabric.tick()
            got = fabric.pop_request(cb)
            if got is not None:
                break
        assert got is token
        fabric.send_reply(cb, pe, PacketType.READ_REPLY, token)
        back = None
        for _ in range(500):
            fabric.tick()
            back = fabric.pop_reply(pe)
            if back is not None:
                break
        assert back is token
        assert fabric.idle()

    @pytest.mark.parametrize("scheme", SCHEME_ORDER)
    def test_request_reply_roundtrip(self, scheme):
        self._roundtrip(scheme)

    def test_cmesh_chooser_uses_overlay_for_far_traffic(self):
        fabric = build_fabric("Interposer-CMesh", self.cfg)
        grid = fabric.grid
        cb = fabric.placement[0]
        far_pe = max(fabric.pes, key=lambda n: grid.hops(cb, n))
        near_pe = min(fabric.pes, key=lambda n: grid.hops(cb, n))
        assert fabric._use_cmesh(cb, far_pe)
        assert not fabric._use_cmesh(cb, near_pe)

    def test_da2mesh_round_robin_across_subnets(self):
        fabric = build_fabric("DA2Mesh", self.cfg)
        cb = fabric.placement[0]
        pe = fabric.pes[0]
        packets = [
            fabric.send_reply(cb, pe, PacketType.READ_REPLY, {"i": i})
            for i in range(8)
        ]
        # Packets landed in eight different subnets' NIs.
        backlogs = [ni.backlog() + (0 if ni.buffers[0].free else 1)
                    for ni in fabric.reply_nis[cb]]
        assert sum(backlogs) == 8
        assert max(backlogs) == 1

    def test_reply_backlog_reporting(self):
        fabric = build_fabric("SeparateBase", self.cfg)
        cb = fabric.placement[0]
        pe = fabric.pes[0]
        for i in range(5):
            fabric.send_reply(cb, pe, PacketType.READ_REPLY, i)
        assert fabric.reply_backlog(cb) == 5
