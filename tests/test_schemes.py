"""Tests for scheme configs and the fabric builder."""

import pytest

from repro.harness.experiment import ExperimentConfig, build_fabric
from repro.noc import PacketType
from repro.noc.interface import EquiNoxInterface, MultiPortInterface
from repro.schemes import SCHEME_ORDER, SchemeConfig, get_config, get_spec

LOOP_SCHEMES = ["ring_router", "routerless"]


class TestConfigs:
    def test_all_nine_schemes_exist(self):
        assert SCHEME_ORDER == [
            "SingleBase",
            "VC-Mono",
            "Interposer-CMesh",
            "SeparateBase",
            "DA2Mesh",
            "MultiPort",
            "EquiNox",
            "ring_router",
            "routerless",
        ]

    def test_network_types_match_paper(self):
        """Schemes 1-3 are single-network, 4-7 separate (section 5);
        the loop baselines also run separate request/reply networks."""
        for name in SCHEME_ORDER[:3]:
            assert get_config(name).network_type == "single"
        for name in SCHEME_ORDER[3:]:
            assert get_config(name).network_type == "separate"

    def test_equinox_uses_nqueen(self):
        assert get_config("EquiNox").placement_name == "nqueen"

    def test_others_use_diamond(self):
        for name in SCHEME_ORDER:
            if name != "EquiNox":
                assert get_config(name).placement_name == "diamond"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            get_config("Mesh2000")

    def test_capability_flags(self):
        for name in SCHEME_ORDER:
            spec = get_spec(name)
            if name in LOOP_SCHEMES:
                assert not spec.supports_faults
                assert spec.engines == ("object",)
            else:
                assert spec.supports_faults
                assert spec.engines == ("object", "vector")

    def test_invalid_combinations_rejected(self):
        with pytest.raises(ValueError):
            SchemeConfig(name="x", network_type="single", equinox=True)
        with pytest.raises(ValueError):
            SchemeConfig(name="x", network_type="single", da2mesh=True)
        with pytest.raises(ValueError):
            SchemeConfig(name="x", network_type="ring")
        # Loop topologies: separate networks only, no overlays/NI
        # variants, and at least two VCs for the dateline.
        with pytest.raises(ValueError):
            SchemeConfig(name="x", network_type="single", topology="ring")
        with pytest.raises(ValueError):
            SchemeConfig(
                name="x", network_type="separate", topology="routerless",
                multiport=4,
            )
        with pytest.raises(ValueError):
            SchemeConfig(
                name="x", network_type="separate", topology="ring",
                num_vcs=1,
            )
        with pytest.raises(ValueError):
            SchemeConfig(name="x", network_type="separate", topology="torus")


class TestFabricStructure:
    @pytest.fixture(autouse=True)
    def _cfg(self):
        self.cfg = ExperimentConfig(quota=10, mcts_iterations=20)

    def test_single_base_one_network(self):
        fabric = build_fabric("SingleBase", self.cfg)
        assert len(fabric.networks) == 1
        assert fabric.request_net is fabric.reply_net

    def test_separate_base_two_networks(self):
        fabric = build_fabric("SeparateBase", self.cfg)
        assert len(fabric.networks) == 2
        assert fabric.request_net is not fabric.reply_net

    def test_cmesh_has_overlay(self):
        fabric = build_fabric("Interposer-CMesh", self.cfg)
        assert fabric.cmesh_net is not None
        assert fabric.cmesh_net.grid.size == 16
        assert len(fabric.cmesh_nis) == 64

    def test_da2mesh_has_eight_subnets(self):
        fabric = build_fabric("DA2Mesh", self.cfg)
        assert len(fabric.reply_subnets) == 8
        for subnet in fabric.reply_subnets:
            assert subnet.flit_bytes == 2
            assert subnet.clock_ratio == 2.5

    def test_multiport_nis(self):
        fabric = build_fabric("MultiPort", self.cfg)
        for cb in fabric.placement:
            assert isinstance(fabric.reply_nis[cb], MultiPortInterface)
            assert len(fabric.reply_nis[cb].buffers) == 4
            # Extra request-network ejection ports at CBs.
            router = fabric.request_net.routers[cb]
            assert len(router.eject_ports) == 4

    def test_equinox_nis_and_eir_ports(self):
        fabric = build_fabric("EquiNox", self.cfg)
        design = fabric.equinox_design
        assert design is not None
        total_eirs = 0
        for cb in fabric.placement:
            ni = fabric.reply_nis[cb]
            assert isinstance(ni, EquiNoxInterface)
            total_eirs += len(ni.buffers) - 1
        assert total_eirs == design.num_eirs

    def test_vc_mono_flags(self):
        fabric = build_fabric("VC-Mono", self.cfg)
        net = fabric.request_net
        assert net.routers[0].monopolize
        assert net.monopolize_injection


class TestFabricTraffic:
    @pytest.fixture(autouse=True)
    def _cfg(self):
        self.cfg = ExperimentConfig(quota=10, mcts_iterations=20)

    def _roundtrip(self, scheme):
        fabric = build_fabric(scheme, self.cfg)
        pe = fabric.pes[0]
        cb = fabric.placement[0]
        token = {"id": 1}
        fabric.send_request(pe, cb, PacketType.READ_REQUEST, token)
        got = None
        for _ in range(500):
            fabric.tick()
            got = fabric.pop_request(cb)
            if got is not None:
                break
        assert got is token
        fabric.send_reply(cb, pe, PacketType.READ_REPLY, token)
        back = None
        for _ in range(500):
            fabric.tick()
            back = fabric.pop_reply(pe)
            if back is not None:
                break
        assert back is token
        assert fabric.idle()

    @pytest.mark.parametrize("scheme", SCHEME_ORDER)
    def test_request_reply_roundtrip(self, scheme):
        self._roundtrip(scheme)

    def test_cmesh_chooser_uses_overlay_for_far_traffic(self):
        fabric = build_fabric("Interposer-CMesh", self.cfg)
        grid = fabric.grid
        cb = fabric.placement[0]
        far_pe = max(fabric.pes, key=lambda n: grid.hops(cb, n))
        near_pe = min(fabric.pes, key=lambda n: grid.hops(cb, n))
        assert fabric._use_cmesh(cb, far_pe)
        assert not fabric._use_cmesh(cb, near_pe)

    def test_da2mesh_round_robin_across_subnets(self):
        fabric = build_fabric("DA2Mesh", self.cfg)
        cb = fabric.placement[0]
        pe = fabric.pes[0]
        packets = [
            fabric.send_reply(cb, pe, PacketType.READ_REPLY, {"i": i})
            for i in range(8)
        ]
        # Packets landed in eight different subnets' NIs.
        backlogs = [ni.backlog() + (0 if ni.buffers[0].free else 1)
                    for ni in fabric.reply_nis[cb]]
        assert sum(backlogs) == 8
        assert max(backlogs) == 1

    def test_reply_backlog_reporting(self):
        fabric = build_fabric("SeparateBase", self.cfg)
        cb = fabric.placement[0]
        pe = fabric.pes[0]
        for i in range(5):
            fabric.send_reply(cb, pe, PacketType.READ_REPLY, i)
        assert fabric.reply_backlog(cb) == 5


class TestLoopSchemes:
    """Geometry, injection path, delivery accounting and capability
    rails for the loop-topology baselines (ring_router / routerless)."""

    @pytest.fixture(autouse=True)
    def _cfg(self):
        self.cfg = ExperimentConfig(
            width=6, num_cbs=5, quota=10, mcts_iterations=20
        )

    @pytest.mark.parametrize("scheme", LOOP_SCHEMES)
    def test_geometry(self, scheme):
        from repro.noc.loops import verify_loop_cover

        fabric = build_fabric(scheme, self.cfg)
        assert fabric.config.topology in ("ring", "routerless")
        assert len(fabric.networks) == 2
        for net, _ratio, _role in fabric.networks:
            assert net.loops
            # Every loop hop is a wired point-to-point link.
            for lane, ports in zip(net.loops, net.loop_ports):
                length = len(lane)
                for i, node in enumerate(lane):
                    nxt = lane[(i + 1) % length]
                    assert net.routers[node].neighbors[ports[i]][0] == nxt
            # Every (src, dst) pair shares at least one loop.
            verify_loop_cover(net.grid, net.loops)
            # The mesh ports stay unwired on a loop topology.
            for router in net.routers:
                assert all(p not in router.neighbors for p in range(4))
            # Injection is pinned to VC 0 (the dateline precondition).
            assert net.vc_classes == [(0,)]

    def test_ring_is_two_counter_rotating_rings(self):
        fabric = build_fabric("ring_router", self.cfg)
        net = fabric.request_net
        assert len(net.loops) == 2
        assert set(net.loops[0]) == set(range(net.grid.size))
        assert net.loops[1] == tuple(reversed(net.loops[0]))

    def test_routerless_loops_are_rectangle_perimeters(self):
        fabric = build_fabric("routerless", self.cfg)
        net = fabric.request_net
        assert len(net.loops) > 2
        grid = net.grid
        for lane in net.loops:
            xs = [grid.coord(n)[0] for n in lane]
            ys = [grid.coord(n)[1] for n in lane]
            w = max(xs) - min(xs) + 1
            h = max(ys) - min(ys) + 1
            # A rectangle perimeter visits each boundary node once.
            assert len(lane) == len(set(lane)) == 2 * (w + h) - 4

    @pytest.mark.parametrize("scheme", LOOP_SCHEMES)
    def test_injection_path_stamps_lane(self, scheme):
        fabric = build_fabric(scheme, self.cfg)
        pe, cb = fabric.pes[0], fabric.placement[0]
        pkt = fabric.send_request(pe, cb, PacketType.READ_REQUEST, object())
        assert pkt.vc_class == 0
        for _ in range(5):
            fabric.tick()
        assert pkt.lane is not None
        lane = fabric.request_net.loops[pkt.lane]
        assert pe in lane and cb in lane
        # Wire selection picked a minimal-forward-distance lane.
        state = fabric.loop_states["request"]
        dist = state.distance(pkt.lane, pe, cb)
        assert dist == min(
            state.distance(i, pe, cb) for i in state.candidates(pe, cb)
        )

    @pytest.mark.parametrize("scheme", LOOP_SCHEMES)
    def test_delivery_accounting(self, scheme):
        from repro.noc.validation import assert_healthy

        fabric = build_fabric(scheme, self.cfg)
        tokens = {}
        for i, pe in enumerate(fabric.pes[:6]):
            cb = fabric.placement[i % len(fabric.placement)]
            tokens[i] = (pe, cb)
            fabric.send_request(pe, cb, PacketType.READ_REQUEST, i)
        got = set()
        for _ in range(2000):
            fabric.tick()
            for cb in fabric.placement:
                token = fabric.pop_request(cb)
                if token is not None:
                    got.add(token)
            if len(got) == len(tokens):
                break
        assert got == set(tokens)
        assert fabric.idle()
        for net, _ratio, _role in fabric.networks:
            assert_healthy(net)
            stats = net.stats
            assert stats.packets_created == stats.packets_delivered
            assert stats.flits_injected == stats.flits_ejected

    @pytest.mark.parametrize("scheme", LOOP_SCHEMES)
    def test_fault_plans_rejected_at_arm_time(self, scheme):
        from repro.harness.experiment import run_experiment
        from repro.noc.faults import FaultSpec

        spec = FaultSpec(kind="mesh_link", node=0, peer=1, at_cycle=10)
        cfg = ExperimentConfig(
            width=4, num_cbs=3, quota=4, faults=(spec,)
        )
        with pytest.raises(ValueError, match="fault"):
            run_experiment(scheme, "kmeans", cfg)

    @pytest.mark.parametrize("scheme", LOOP_SCHEMES)
    def test_verify_case_rejects_faults_and_vector_engine(self, scheme):
        from repro.noc.faults import FaultSpec
        from repro.verify.space import VerifyCase

        base = dict(
            scheme=scheme, benchmark="kmeans", width=4, num_cbs=3,
            quota=4, seed=0,
        )
        VerifyCase(**base)  # valid: object engine, no faults
        with pytest.raises(ValueError, match="fault"):
            VerifyCase(
                faults=(
                    FaultSpec(
                        kind="mesh_link", node=0, peer=1, at_cycle=9999
                    ),
                ),
                **base,
            )
        with pytest.raises(ValueError, match="engine"):
            VerifyCase(engine="vector", **base)

    @pytest.mark.parametrize("scheme", LOOP_SCHEMES)
    def test_vector_engine_rejected_by_fabric(self, scheme):
        cfg = ExperimentConfig(
            width=4, num_cbs=3, quota=4, engine="vector"
        )
        with pytest.raises(ValueError, match="object engine"):
            build_fabric(scheme, cfg)

    @pytest.mark.parametrize("scheme", LOOP_SCHEMES)
    def test_scheduler_differential(self, scheme):
        import dataclasses

        from repro.harness.experiment import run_experiment

        cfg = ExperimentConfig(
            width=5, num_cbs=4, quota=8, mcts_iterations=10
        )
        runs = [
            run_experiment(
                scheme, "hotspot",
                dataclasses.replace(cfg, scheduler=scheduler),
            )
            for scheduler in ("active", "dense")
        ]
        assert runs[0].stats_fingerprint == runs[1].stats_fingerprint
        assert runs[0].cycles == runs[1].cycles


class TestLoopDeterminism:
    """Object-engine determinism across serial / parallel / cache-warm
    sweeps for the loop baselines (mirrors TestDeterminism in
    test_runner.py, which covers the mesh schemes)."""

    def test_serial_parallel_and_cache_tiers_bit_identical(
        self, tmp_path, monkeypatch
    ):
        from repro.harness import cache
        from repro.harness.runner import sweep

        cfg = ExperimentConfig(
            width=5, num_cbs=4, quota=6, mcts_iterations=10
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        serial = sweep(LOOP_SCHEMES, ["hotspot"], cfg, jobs=1).results()
        parallel = sweep(LOOP_SCHEMES, ["hotspot"], cfg, jobs=2).results()
        cache.clear()  # memory dropped; disk tier stays warm
        warmed = sweep(LOOP_SCHEMES, ["hotspot"], cfg, jobs=1).results()
        assert set(serial) == set(parallel) == set(warmed)
        for key in serial:
            runs = (serial[key], parallel[key], warmed[key])
            assert len({r.stats_fingerprint for r in runs}) == 1, key
            assert len({r.cycles for r in runs}) == 1, key
            assert runs[0].stats_fingerprint
