"""Unit tests for the PE, cache bank, and full-system models."""

import pytest

from repro.gpu import ProcessingElement, System, SystemConfig, Transaction
from repro.harness.experiment import ExperimentConfig, build_fabric
from repro.workloads import get
from repro.workloads.profiles import WorkloadProfile


def profile(**kwargs):
    defaults = dict(
        name="unit",
        suite="test",
        intensity=1.0,
        read_fraction=0.8,
        l2_hit_rate=0.5,
        row_hit_rate=0.5,
        burstiness=0.0,
        dependency=0.0,
    )
    defaults.update(kwargs)
    return WorkloadProfile(**defaults)


class TestPE:
    def test_issues_up_to_quota(self):
        pe = ProcessingElement(0, profile(), 8, quota=5, seed=0, pe_index=0,
                               mshrs=100)
        issued = []
        for cycle in range(1, 200):
            txn = pe.try_issue(cycle, len(issued) + 1, list(range(8)))
            if txn:
                issued.append(txn)
        assert len(issued) == 5
        assert pe.remaining == 0

    def test_mshr_limit_blocks(self):
        pe = ProcessingElement(0, profile(), 8, quota=100, seed=0, pe_index=0,
                               mshrs=4)
        issued = []
        for cycle in range(1, 50):
            txn = pe.try_issue(cycle, len(issued) + 1, list(range(8)))
            if txn:
                issued.append(txn)
        assert len(issued) == 4
        assert pe.stall_cycles > 0
        pe.receive_reply(issued[0], 60)
        txn = pe.try_issue(61, 5, list(range(8)))
        assert txn is not None

    def test_done_requires_all_replies(self):
        pe = ProcessingElement(0, profile(), 8, quota=1, seed=0, pe_index=0)
        txn = None
        for cycle in range(1, 20):
            txn = txn or pe.try_issue(cycle, 1, list(range(8)))
        assert txn is not None
        assert not pe.done
        pe.receive_reply(txn, 30)
        assert pe.done
        assert pe.finished_cycle == 30

    def test_wrong_pe_reply_rejected(self):
        pe = ProcessingElement(0, profile(), 8, quota=1, seed=0, pe_index=0)
        txn = Transaction(1, pe=3, cb=0, is_read=True, row_hit=True, issued=0)
        with pytest.raises(ValueError):
            pe.receive_reply(txn, 5)

    def test_dependency_serialises(self):
        dep = ProcessingElement(
            0, profile(dependency=1.0), 8, quota=10, seed=0, pe_index=0
        )
        issued = []
        for cycle in range(1, 100):
            txn = dep.try_issue(cycle, len(issued) + 1, list(range(8)))
            if txn:
                issued.append(txn)
        # With full dependency and no replies, only one issues.
        assert len(issued) == 1
        dep.receive_reply(issued[0], 120)
        for cycle in range(121, 200):
            txn = dep.try_issue(cycle, 2, list(range(8)))
            if txn:
                issued.append(txn)
                break
        assert len(issued) == 2

    def test_intensity_throttles_issue_rate(self):
        lo = ProcessingElement(0, profile(intensity=0.05), 8, quota=10**6,
                               seed=0, pe_index=0, mshrs=10**6)
        hi = ProcessingElement(0, profile(intensity=0.5), 8, quota=10**6,
                               seed=0, pe_index=1, mshrs=10**6)
        lo_count = sum(
            1 for c in range(2000) if lo.try_issue(c, c, list(range(8)))
        )
        hi_count = sum(
            1 for c in range(2000) if hi.try_issue(c, c, list(range(8)))
        )
        assert lo_count < hi_count
        assert lo_count == pytest.approx(2000 * 0.05, rel=0.5)


class TestSystem:
    def _run(self, scheme="SeparateBase", bench="hotspot", quota=20, **kw):
        cfg = ExperimentConfig(quota=quota, mcts_iterations=20)
        fabric = build_fabric(scheme, cfg)
        system = System(fabric, get(bench),
                        SystemConfig(quota=quota, seed=1, **kw))
        return system.run()

    def test_all_instructions_complete(self):
        result = self._run()
        num_pes = 56
        assert result.instructions == 20 * num_pes
        completed = [t for t in result.transactions if t.completed is not None]
        assert len(completed) == result.instructions

    def test_transactions_have_monotone_timestamps(self):
        result = self._run()
        for txn in result.transactions:
            assert txn.accepted is None or txn.accepted >= txn.issued
            if txn.reply_sent is not None:
                assert txn.reply_sent >= txn.accepted
            if txn.completed is not None and txn.reply_sent is not None:
                assert txn.completed >= txn.reply_sent

    def test_deterministic(self):
        a = self._run(quota=10)
        b = self._run(quota=10)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    def test_seed_changes_schedule(self):
        cfg = ExperimentConfig(quota=10, mcts_iterations=20)
        fabric_a = build_fabric("SeparateBase", cfg)
        ra = System(fabric_a, get("hotspot"),
                    SystemConfig(quota=10, seed=1)).run()
        fabric_b = build_fabric("SeparateBase", cfg)
        rb = System(fabric_b, get("hotspot"),
                    SystemConfig(quota=10, seed=2)).run()
        assert ra.cycles != rb.cycles

    def test_ipc_positive(self):
        result = self._run(quota=10)
        assert result.ipc > 0
        assert result.mean_round_trip() > 0

    def test_backpressure_shows_in_request_queuing(self):
        """The parking-lot effect: request queuing >> reply queuing on a
        saturating workload (paper section 6.4)."""
        cfg = ExperimentConfig(quota=60, mcts_iterations=20)
        fabric = build_fabric("SeparateBase", cfg)
        System(fabric, get("kmeans"), SystemConfig(quota=60, seed=0)).run()
        req = fabric.request_net.stats.latency_breakdown()
        rep = fabric.reply_net.stats.latency_breakdown()
        assert req["request_queuing"] > rep["reply_queuing"]

    def test_cb_capacity_limits_occupancy(self):
        cfg = ExperimentConfig(quota=20, mcts_iterations=20)
        fabric = build_fabric("SeparateBase", cfg)
        system = System(fabric, get("kmeans"),
                        SystemConfig(quota=20, seed=0, cb_capacity=4))
        system.run()
        for bank in system.banks.values():
            assert bank.occupancy <= 4
            assert bank.requests_accepted > 0

    def test_l2_hit_ratio_tracks_profile(self):
        result = self._run(bench="hotspot", quota=40)
        hits = sum(1 for t in result.transactions if t.l2_hit)
        ratio = hits / len(result.transactions)
        assert ratio == pytest.approx(get("hotspot").l2_hit_rate, abs=0.08)
