"""Tests for the energy and area models."""

import pytest

from repro.harness.experiment import ExperimentConfig, build_fabric
from repro.power import (
    EnergyParams,
    fabric_area,
    fabric_energy,
    network_area,
    network_energy,
    router_area_mm2,
)


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(quota=10, mcts_iterations=20)


@pytest.fixture(scope="module")
def loaded_fabric(cfg):
    """A SeparateBase fabric that has actually moved traffic."""
    from repro.gpu import System, SystemConfig
    from repro.workloads import get

    fabric = build_fabric("SeparateBase", cfg)
    System(fabric, get("hotspot"), SystemConfig(quota=10, seed=0)).run()
    return fabric


class TestEnergy:
    def test_energy_positive_after_run(self, loaded_fabric):
        report = fabric_energy(loaded_fabric, 1000)
        assert report.total_pj > 0
        for net in report.networks:
            assert net.static_pj > 0

    def test_dynamic_scales_with_traffic(self, cfg, loaded_fabric):
        idle = build_fabric("SeparateBase", cfg)
        idle_report = fabric_energy(idle, 1000)
        loaded_report = fabric_energy(loaded_fabric, 1000)
        idle_dynamic = sum(n.dynamic_pj for n in idle_report.networks)
        loaded_dynamic = sum(n.dynamic_pj for n in loaded_report.networks)
        assert idle_dynamic == 0
        assert loaded_dynamic > 0

    def test_static_scales_with_cycles(self, loaded_fabric):
        short = fabric_energy(loaded_fabric, 1000)
        long = fabric_energy(loaded_fabric, 2000)
        assert sum(n.static_pj for n in long.networks) == pytest.approx(
            2 * sum(n.static_pj for n in short.networks)
        )

    def test_edp_definition(self, loaded_fabric):
        report = fabric_energy(loaded_fabric, 1000)
        assert report.edp == pytest.approx(
            report.total_nj * report.execution_ns
        )

    def test_separate_more_static_than_single(self, cfg):
        single = fabric_energy(build_fabric("SingleBase", cfg), 1000)
        separate = fabric_energy(build_fabric("SeparateBase", cfg), 1000)
        assert (
            sum(n.static_pj for n in separate.networks)
            > sum(n.static_pj for n in single.networks)
        )

    def test_width_scaling(self, loaded_fabric):
        base = network_energy(loaded_fabric.reply_net, 1000)
        wide_params = EnergyParams(reference_flit_bytes=32)
        wide = network_energy(loaded_fabric.reply_net, 1000, wide_params)
        assert wide.dynamic_pj == pytest.approx(base.dynamic_pj / 2)


class TestArea:
    def test_router_area_plausible(self):
        """A 5-port 2-VC 128-bit router is in the 0.05-0.2 mm^2 range."""
        area = router_area_mm2(5, 5, 2, 5, 16)
        assert 0.05 < area < 0.2

    def test_area_grows_with_ports(self):
        small = router_area_mm2(5, 5, 2, 5, 16)
        big = router_area_mm2(9, 9, 2, 5, 16)
        assert big > small

    def test_single_less_than_separate(self, cfg):
        single = fabric_area(build_fabric("SingleBase", cfg)).total_mm2
        separate = fabric_area(build_fabric("SeparateBase", cfg)).total_mm2
        assert single < separate

    def test_equinox_overhead_near_paper(self, cfg):
        """Paper: EquiNox consumes ~4.6% more area than SeparateBase."""
        separate = fabric_area(build_fabric("SeparateBase", cfg)).total_mm2
        equinox = fabric_area(build_fabric("EquiNox", cfg)).total_mm2
        overhead = equinox / separate - 1
        assert 0.01 < overhead < 0.12

    def test_figure11_ordering(self, cfg):
        """Structural orderings visible in Figure 11."""
        areas = {
            name: fabric_area(build_fabric(name, cfg)).total_mm2
            for name in ("SingleBase", "VC-Mono", "Interposer-CMesh",
                         "SeparateBase", "DA2Mesh", "MultiPort", "EquiNox")
        }
        # Single-network schemes are cheapest...
        assert areas["SingleBase"] < areas["SeparateBase"]
        assert areas["VC-Mono"] == pytest.approx(areas["SingleBase"])
        # ...except Interposer-CMesh, which pays for the overlay routers.
        assert areas["Interposer-CMesh"] > areas["SingleBase"]
        # MultiPort and EquiNox pay extra ports over SeparateBase.
        assert areas["MultiPort"] > areas["SeparateBase"]
        assert areas["EquiNox"] > areas["SeparateBase"]

    def test_network_area_breakdown_sums(self, cfg):
        fabric = build_fabric("SeparateBase", cfg)
        breakdown = network_area(fabric.reply_net)
        assert breakdown.total_mm2 == pytest.approx(
            breakdown.buffers_mm2 + breakdown.xbar_mm2
            + breakdown.alloc_mm2 + breakdown.ni_mm2
        )
