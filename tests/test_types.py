"""Unit tests for packet/flit types and size arithmetic."""

import pytest

from repro.noc.types import (
    CACHE_LINE_BYTES,
    CONTROL_BYTES,
    Packet,
    PacketType,
    packet_bytes,
    packet_flits,
)


class TestPacketType:
    def test_request_reply_partition(self):
        for t in PacketType:
            assert t.is_request != t.is_reply

    def test_data_carriers(self):
        assert PacketType.READ_REPLY.carries_data
        assert PacketType.WRITE_REQUEST.carries_data
        assert not PacketType.READ_REQUEST.carries_data
        assert not PacketType.WRITE_REPLY.carries_data


class TestSizes:
    def test_packet_bytes(self):
        assert packet_bytes(PacketType.READ_REQUEST) == CONTROL_BYTES
        assert packet_bytes(PacketType.READ_REPLY) == (
            CONTROL_BYTES + CACHE_LINE_BYTES
        )

    @pytest.mark.parametrize(
        "ptype,flit_bytes,expected",
        [
            (PacketType.READ_REQUEST, 16, 1),
            (PacketType.WRITE_REQUEST, 16, 5),
            (PacketType.READ_REPLY, 16, 5),
            (PacketType.WRITE_REPLY, 16, 1),
            (PacketType.READ_REPLY, 32, 3),   # CMesh width
            (PacketType.READ_REPLY, 2, 36),   # DA2Mesh subnet width
            (PacketType.WRITE_REPLY, 2, 4),
        ],
    )
    def test_packet_flits(self, ptype, flit_bytes, expected):
        assert packet_flits(ptype, flit_bytes) == expected

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            packet_flits(PacketType.READ_REPLY, 0)


class TestPacket:
    def test_make_flits_structure(self):
        p = Packet(1, PacketType.READ_REPLY, 0, 9, 5, 0)
        flits = p.make_flits()
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])
        assert all(f.packet is p for f in flits)

    def test_single_flit_head_and_tail(self):
        p = Packet(1, PacketType.READ_REQUEST, 0, 9, 1, 0)
        (flit,) = p.make_flits()
        assert flit.is_head and flit.is_tail

    def test_latency_requires_delivery(self):
        p = Packet(1, PacketType.READ_REQUEST, 0, 9, 1, created=10)
        with pytest.raises(ValueError):
            _ = p.latency
        p.delivered = 25
        assert p.latency == 15
