"""Unit tests for EIR groups, candidates and designs."""

import pytest

from repro.core import eir, placement
from repro.core.grid import Grid
from repro.core.hotzone import daz


@pytest.fixture
def grid():
    return Grid(8)


@pytest.fixture
def nodes(grid):
    return placement.nqueen_best(grid, 8).nodes


class TestCandidates:
    def test_candidates_have_four_sectors(self, grid, nodes):
        cands = eir.candidate_positions(grid, nodes, nodes[0])
        assert set(cands) == {(1, 0), (-1, 0), (0, 1), (0, -1)}

    def test_candidates_within_distance(self, grid, nodes):
        cb = nodes[3]
        cands = eir.candidate_positions(grid, nodes, cb)
        for options in cands.values():
            for node in options:
                assert 2 <= grid.hops(cb, node) <= 3

    def test_candidates_avoid_cbs_and_dazs(self, grid, nodes):
        forbidden = set(nodes)
        for cb in nodes:
            forbidden |= daz(grid, cb)
        for cb in nodes:
            cands = eir.candidate_positions(grid, nodes, cb)
            for options in cands.values():
                assert not (set(options) & forbidden)

    def test_candidates_sector_consistent(self, grid, nodes):
        cb = nodes[3]
        cx, cy = grid.coord(cb)
        cands = eir.candidate_positions(grid, nodes, cb)
        for node in cands[(1, 0)]:
            x, y = grid.coord(node)
            assert x - cx >= abs(y - cy) and x > cx

    def test_non_cb_rejected(self, grid, nodes):
        non_cb = next(n for n in grid.nodes() if n not in nodes)
        with pytest.raises(ValueError):
            eir.candidate_positions(grid, nodes, non_cb)


class TestGroups:
    def test_enumerate_groups_non_empty(self, grid, nodes):
        for cb in nodes:
            groups = eir.enumerate_groups(grid, nodes, cb)
            assert groups

    def test_require_full_groups_are_maximal(self, grid, nodes):
        cb = nodes[3]
        cands = eir.candidate_positions(grid, nodes, cb)
        non_empty_dirs = sum(1 for opts in cands.values() if opts)
        for group in eir.enumerate_groups(grid, nodes, cb, require_full=True):
            assert len(group) == non_empty_dirs

    def test_groups_respect_taken(self, grid, nodes):
        cb = nodes[3]
        all_groups = eir.enumerate_groups(grid, nodes, cb)
        some_eir = next(g.nodes[0] for g in all_groups if g.nodes)
        filtered = eir.enumerate_groups(
            grid, nodes, cb, taken=frozenset({some_eir})
        )
        assert all(some_eir not in g.nodes for g in filtered)

    def test_group_one_eir_per_direction(self, grid, nodes):
        for cb in nodes[:3]:
            for group in eir.enumerate_groups(grid, nodes, cb)[:50]:
                directions = [d for d, _n in group.eirs]
                assert len(directions) == len(set(directions))

    def test_make_group(self):
        group = eir.make_group(10, {(1, 0): 12, (0, 1): 26})
        assert group.cb == 10
        assert set(group.nodes) == {12, 26}
        assert group.by_direction[(1, 0)] == 12


class TestDesign:
    def _design(self, grid, nodes):
        groups = []
        taken = set()
        for cb in nodes:
            options = eir.enumerate_groups(
                grid, nodes, cb, taken=frozenset(taken), require_full=True
            )
            groups.append(options[0])
            taken.update(options[0].nodes)
        return eir.EirDesign(grid=grid, placement=tuple(nodes),
                             groups=tuple(groups))

    def test_design_valid(self, grid, nodes):
        design = self._design(grid, nodes)
        assert len(design.groups) == 8
        assert design.eir_nodes.isdisjoint(set(nodes))

    def test_design_rejects_shared_eir(self, grid, nodes):
        design = self._design(grid, nodes)
        groups = list(design.groups)
        shared = groups[0].nodes[0]
        bad = eir.make_group(groups[1].cb, {(1, 0): shared})
        groups[1] = bad
        with pytest.raises(ValueError, match="shared"):
            eir.EirDesign(grid=grid, placement=tuple(nodes),
                          groups=tuple(groups))

    def test_design_rejects_wrong_cbs(self, grid, nodes):
        groups = tuple(eir.make_group(cb, {}) for cb in nodes[:-1])
        with pytest.raises(ValueError):
            eir.EirDesign(grid=grid, placement=tuple(nodes), groups=groups)

    def test_injection_points_local_first(self, grid, nodes):
        design = self._design(grid, nodes)
        cb = nodes[0]
        points = design.injection_points(cb)
        assert points[0] == cb
        assert set(points[1:]) == set(design.group_by_cb[cb].nodes)

    def test_links_and_length(self, grid, nodes):
        design = self._design(grid, nodes)
        links = design.links()
        assert all(src in nodes for src, _ in links)
        assert design.total_link_length() == sum(
            grid.hops(a, b) for a, b in links
        )

    def test_no_eir_design(self, grid, nodes):
        design = eir.no_eir_design(grid, nodes)
        assert design.links() == []
        assert design.injection_points(nodes[0]) == (nodes[0],)


class TestShortestPathEirs:
    def test_on_path_eirs_cause_no_detour(self, grid, nodes):
        design = self._any_design(grid, nodes)
        for cb in nodes:
            for dst in grid.nodes():
                if dst == cb:
                    continue
                base = grid.hops(cb, dst)
                for e in eir.shortest_path_eirs(grid, design, cb, dst):
                    assert grid.hops(cb, e) + grid.hops(e, dst) == base

    def test_self_destination_rejected(self, grid, nodes):
        design = self._any_design(grid, nodes)
        with pytest.raises(ValueError):
            eir.shortest_path_eirs(grid, design, nodes[0], nodes[0])

    def _any_design(self, grid, nodes):
        groups = []
        taken = set()
        for cb in nodes:
            options = eir.enumerate_groups(
                grid, nodes, cb, taken=frozenset(taken), require_full=True
            )
            groups.append(options[-1])
            taken.update(options[-1].nodes)
        return eir.EirDesign(grid=grid, placement=tuple(nodes),
                             groups=tuple(groups))


class TestDesignSpace:
    def test_space_is_large(self, grid, nodes):
        """The paper quotes ~1.7e10 for 8x8; our action model is larger."""
        size = eir.design_space_size(grid, nodes)
        assert size > 1e10

    def test_space_product_of_per_cb_counts(self, grid):
        nodes = (Grid(8).node(3, 3), Grid(8).node(6, 6))
        a = len(eir.enumerate_groups(grid, nodes, nodes[0],
                                     min_distance=1, max_distance=3))
        b = len(eir.enumerate_groups(grid, nodes, nodes[1],
                                     min_distance=1, max_distance=3))
        assert eir.design_space_size(grid, nodes) == a * b
