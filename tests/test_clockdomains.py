"""Tests for multi-clock-domain behaviour (DA2Mesh's 2.5x subnets)."""


from repro.harness.experiment import ExperimentConfig, build_fabric
from repro.noc.types import PacketType


CFG = ExperimentConfig(quota=10, mcts_iterations=20)


class TestClockRatios:
    def test_subnets_tick_faster(self):
        fabric = build_fabric("DA2Mesh", CFG)
        for _ in range(20):  # 20 base cycles
            fabric.tick()
        assert fabric.request_net.cycle == 20
        for subnet in fabric.reply_subnets:
            assert subnet.cycle == 50  # 2.5x

    def test_ratio_accumulator_pattern(self):
        """2.5x means alternating 2 and 3 subnet ticks per base tick."""
        fabric = build_fabric("DA2Mesh", CFG)
        deltas = []
        prev = 0
        for _ in range(8):
            fabric.tick()
            now = fabric.reply_subnets[0].cycle
            deltas.append(now - prev)
            prev = now
        assert sorted(set(deltas)) == [2, 3]
        assert sum(deltas) == 20

    def test_base_networks_unaffected(self):
        fabric = build_fabric("SeparateBase", CFG)
        for _ in range(15):
            fabric.tick()
        assert fabric.request_net.cycle == 15
        assert fabric.reply_net.cycle == 15

    def test_narrow_packet_sizes(self):
        """A 72-byte read reply is 36 narrow (2-byte) flits."""
        fabric = build_fabric("DA2Mesh", CFG)
        cb = fabric.placement[0]
        pe = fabric.pes[0]
        packet = fabric.send_reply(cb, pe, PacketType.READ_REPLY, None)
        assert packet.size == 36
        ack = fabric.send_reply(cb, pe, PacketType.WRITE_REPLY, None)
        assert ack.size == 4

    def test_latency_in_subnet_cycles_exceeds_base_equivalent(self):
        """Serialisation: a narrow reply takes more wall time than a
        wide one despite the 2.5x clock."""
        da2 = build_fabric("DA2Mesh", CFG)
        sep = build_fabric("SeparateBase", CFG)
        results = {}
        for name, fabric in (("da2", da2), ("sep", sep)):
            cb = fabric.placement[0]
            pe = max(fabric.pes,
                     key=lambda n: fabric.grid.hops(cb, n))
            packet = fabric.send_reply(cb, pe, PacketType.READ_REPLY, "t")
            for base_cycle in range(400):
                fabric.tick()
                if fabric.pop_reply(pe) is not None:
                    results[name] = base_cycle + 1
                    break
        assert results["da2"] > results["sep"]
