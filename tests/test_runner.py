"""Tests for the parallel sweep runner and the two-tier design cache.

The determinism contract is the load-bearing property: an identical
``(seed, config)`` run must produce bit-identical ``NetworkStats``
counters whether it executes serially or in worker processes, and
whether the design cache is cold or warmed from disk.
"""

import json
import os

import pytest

from repro.harness import cache
from repro.harness.experiment import ExperimentConfig, run_suite
from repro.harness.runner import (
    SweepCell,
    cell_seed,
    expand_grid,
    run_sweep,
    sweep,
    warm_design_cache,
)

CFG = ExperimentConfig(quota=8, mcts_iterations=10)


class TestGrid:
    def test_expand_grid_order_and_config(self):
        cells = expand_grid(["A", "B"], ["x", "y"], CFG)
        assert [c.key for c in cells] == [
            ("A", "x"), ("A", "y"), ("B", "x"), ("B", "y")
        ]
        assert all(c.config is CFG for c in cells)

    def test_cell_seed_deterministic_and_distinct(self):
        a = cell_seed(0, "EquiNox", "kmeans")
        assert a == cell_seed(0, "EquiNox", "kmeans")
        assert a != cell_seed(1, "EquiNox", "kmeans")
        assert a != cell_seed(0, "EquiNox", "bfs")
        assert a != cell_seed(0, "SingleBase", "kmeans")

    def test_reseed_cells_derives_per_cell_seeds(self):
        cells = expand_grid(["A"], ["x", "y"], CFG, reseed_cells=True)
        assert cells[0].config.seed == cell_seed(CFG.seed, "A", "x")
        assert cells[1].config.seed == cell_seed(CFG.seed, "A", "y")
        assert cells[0].config.seed != cells[1].config.seed
        assert cells[0].config.quota == CFG.quota


class TestRunSweep:
    def test_serial_records_timing_and_results(self):
        report = run_sweep(
            expand_grid(["SingleBase"], ["hotspot"], CFG), jobs=1
        )
        assert report.jobs == 1
        outcome = report.outcomes[0]
        assert outcome.ok
        assert outcome.duration_s > 0
        assert outcome.result.cycles > 0
        assert report.results()[("SingleBase", "hotspot")] is outcome.result
        assert "1 cells" in report.summary()

    def test_failed_cell_keeps_sweep_alive(self):
        cells = [
            SweepCell("SingleBase", "no-such-benchmark", CFG),
            SweepCell("SingleBase", "hotspot", CFG),
        ]
        report = run_sweep(cells, jobs=1)
        errors = report.errors()
        assert set(errors) == {("SingleBase", "no-such-benchmark")}
        assert "Traceback" in errors[("SingleBase", "no-such-benchmark")]
        assert ("SingleBase", "hotspot") in report.results()

    def test_run_suite_raises_on_failed_cell(self):
        with pytest.raises(RuntimeError, match="no-such-benchmark"):
            run_suite(["SingleBase"], ["no-such-benchmark"], CFG)

    def test_stall_dump_captured_from_failed_cell(self, monkeypatch):
        """Watchdog/audit failures carry their diagnostic dump into the
        sweep report instead of burying it in the traceback text."""
        from repro.gpu.system import SimulationStall
        from repro.harness import runner

        def stall(scheme, benchmark, config):
            raise SimulationStall(
                "no network progress", dump="=== network 'request' ==="
            )

        monkeypatch.setattr(runner, "run_experiment", stall)
        report = run_sweep([SweepCell("SingleBase", "hotspot", CFG)], jobs=1)
        outcome = report.outcomes[0]
        assert not outcome.ok
        assert outcome.stall_dump == "=== network 'request' ==="
        assert report.stall_dumps() == {
            ("SingleBase", "hotspot"): "=== network 'request' ==="
        }

    def test_plain_failure_has_no_stall_dump(self):
        report = run_sweep(
            [SweepCell("SingleBase", "no-such-benchmark", CFG)], jobs=1
        )
        assert report.outcomes[0].stall_dump is None
        assert report.stall_dumps() == {}

    def test_run_suite_matches_runner(self):
        suite = run_suite(["SingleBase"], ["hotspot"], CFG)
        report = sweep(["SingleBase"], ["hotspot"], CFG)
        key = ("SingleBase", "hotspot")
        assert suite[key].stats_fingerprint == (
            report.results()[key].stats_fingerprint
        )


class TestDeterminism:
    SCHEMES = ["SingleBase", "EquiNox"]
    BENCHMARKS = ["hotspot"]

    def test_serial_parallel_and_cache_tiers_bit_identical(self, tmp_path,
                                                           monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        serial = sweep(self.SCHEMES, self.BENCHMARKS, CFG, jobs=1).results()
        parallel = sweep(self.SCHEMES, self.BENCHMARKS, CFG,
                         jobs=2).results()
        cache.clear()  # memory dropped; disk tier stays warm
        warmed = sweep(self.SCHEMES, self.BENCHMARKS, CFG, jobs=1).results()
        assert set(serial) == set(parallel) == set(warmed)
        for key in serial:
            runs = (serial[key], parallel[key], warmed[key])
            fingerprints = {r.stats_fingerprint for r in runs}
            assert len(fingerprints) == 1, key
            assert len({r.cycles for r in runs}) == 1, key
            assert len({r.energy_nj for r in runs}) == 1, key
            assert runs[0].stats_fingerprint  # non-empty digest


class TestDiskCache:
    def test_design_survives_process_cache_clear(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        first = cache.equinox_design(8, 8, iterations_per_level=10, seed=0)
        stored = list(tmp_path.glob("design-*.json"))
        assert len(stored) == 1
        cache.clear()
        second = cache.equinox_design(8, 8, iterations_per_level=10, seed=0)
        assert second is not first
        assert second.eir_design == first.eir_design

    def test_placement_survives_process_cache_clear(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        first = cache.placement("diamond", 8)
        assert list(tmp_path.glob("placement-*.json"))
        cache.clear()
        second = cache.placement("diamond", 8)
        assert second is not first
        assert second == first

    def test_corrupt_entry_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        cache.equinox_design(8, 8, iterations_per_level=10, seed=0)
        (entry,) = tmp_path.glob("design-*.json")
        entry.write_text("{not json")
        cache.clear()
        design = cache.equinox_design(8, 8, iterations_per_level=10, seed=0)
        assert design is not None
        assert json.loads(entry.read_text())["version"] >= 1  # rewritten

    def test_disk_write_fsyncs_before_publishing(self, tmp_path,
                                                 monkeypatch):
        # Durability regression: the temp file's bytes must be forced
        # to disk (fsync) before os.replace publishes them under the
        # entry name — otherwise a power loss right after the rename
        # can leave a torn entry under the real key.
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(cache.os, "fsync", spy_fsync)
        monkeypatch.setattr(cache.os, "replace", spy_replace)
        target = tmp_path / "design-deadbeef.json"
        cache._disk_write(target, {"k": 1})
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")
        assert json.loads(target.read_text()) == {"k": 1}

    def test_disk_write_fsyncs_directory_after_publishing(self, tmp_path,
                                                          monkeypatch):
        # Durability regression (the other half of the torn-write
        # fix): os.replace lives in the directory's entry table, so
        # without a directory fsync *after* the rename a power loss
        # can silently undo the publish even though the entry's bytes
        # were durable.  Detect the directory fsync by fd: it is the
        # only fsync on a directory file descriptor.
        import stat

        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            mode = os.fstat(fd).st_mode
            events.append("fsync-dir" if stat.S_ISDIR(mode) else "fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(cache.os, "fsync", spy_fsync)
        monkeypatch.setattr(cache.os, "replace", spy_replace)
        cache._disk_write(tmp_path / "design-cafef00d.json", {"k": 2})
        assert "fsync-dir" in events
        assert events.index("replace") < events.index("fsync-dir")

    def test_torn_write_never_visible_under_entry_name(self, tmp_path,
                                                       monkeypatch):
        # A writer that dies before the rename must leave the entry
        # name absent (a clean miss) and clean up its temp file — a
        # reader must never see a half-written JSON under the key.
        target = tmp_path / "design-cafebabe.json"

        def crash_replace(src, dst):
            raise OSError("simulated crash before publish")

        monkeypatch.setattr(cache.os, "replace", crash_replace)
        cache._disk_write(target, {"k": 2})
        assert not target.exists()
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache._disk_read(target) is None  # a miss, not an error

    def test_orphaned_tmp_files_are_never_read(self, tmp_path,
                                               monkeypatch):
        # A hard crash (kill -9) can orphan a mkstemp file; entries are
        # only ever read via their .json path, so the orphan must not
        # poison the store or shadow the real entry once written.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        (tmp_path / "placement-0.jsonorphanXYZ.tmp").write_text("{torn")
        before = cache.corrupt_evictions()
        first = cache.placement("diamond", 8)
        cache.clear()
        second = cache.placement("diamond", 8)
        assert second == first
        assert cache.corrupt_evictions() == before  # orphan never parsed

    def test_key_includes_parameters(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        cache.equinox_design(8, 8, iterations_per_level=10, seed=0)
        cache.equinox_design(8, 8, iterations_per_level=10, seed=1)
        assert len(list(tmp_path.glob("design-*.json"))) == 2

    def test_disk_tier_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert cache.cache_dir() is None
        cache.clear()
        cache.placement("diamond", 8)  # must not raise without a store
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cache.cache_dir() == tmp_path

    def test_clear_disk_removes_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        cache.placement("diamond", 8)
        assert list(tmp_path.glob("*.json"))
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.json"))

    def test_warm_design_cache_covers_grid(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        cells = expand_grid(["SingleBase", "EquiNox"], ["hotspot"], CFG)
        warm_design_cache(cells)
        assert list(tmp_path.glob("design-*.json"))
        assert list(tmp_path.glob("placement-*.json"))
