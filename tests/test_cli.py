"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_validate_flag_defaults_off(self):
        args = build_parser().parse_args(["run", "--scheme", "SingleBase"])
        assert args.validate == 0
        assert args.watchdog_cycles == 0

    def test_validate_bare_flag_means_default_interval(self):
        args = build_parser().parse_args(["run", "--validate"])
        assert args.validate == 1

    def test_validate_interval_and_watchdog_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "--validate", "64", "--watchdog-cycles", "500"]
        )
        assert args.validate == 64
        assert args.watchdog_cycles == 500

    def test_experiment_config_carries_validation(self):
        from repro.cli import _experiment_config

        args = build_parser().parse_args(
            ["run", "--validate", "64", "--watchdog-cycles", "500"]
        )
        cfg = _experiment_config(args)
        assert cfg.validate == 64
        assert cfg.watchdog_cycles == 500

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "TorusMax"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EquiNox" in out
        assert "kmeans" in out

    def test_figure_fig5(self, capsys):
        assert main(["figure", "fig5"]) == 0
        assert "92" in capsys.readouterr().out

    def test_figure_sec66(self, capsys):
        assert main(["figure", "sec66", "--iterations", "20"]) == 0
        assert "32768" in capsys.readouterr().out

    def test_design_save_load(self, tmp_path, capsys):
        path = tmp_path / "design.json"
        assert main(["design", "--iterations", "10", "--save",
                     str(path)]) == 0
        assert path.exists()
        assert main(["design", "--load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "EquiNox design on 8x8" in out

    def test_run_small(self, capsys):
        assert main([
            "run", "--scheme", "SingleBase", "--benchmark", "gaussian",
            "--quota", "10", "--iterations", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "EDP" in out

    def test_sweep_small(self, capsys):
        assert main([
            "sweep", "--schemes", "SingleBase", "SeparateBase",
            "--benchmarks", "gaussian", "--quota", "10",
            "--iterations", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "Execution time (normalised to SingleBase)" in out
