"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "TorusMax"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EquiNox" in out
        assert "kmeans" in out

    def test_figure_fig5(self, capsys):
        assert main(["figure", "fig5"]) == 0
        assert "92" in capsys.readouterr().out

    def test_figure_sec66(self, capsys):
        assert main(["figure", "sec66", "--iterations", "20"]) == 0
        assert "32768" in capsys.readouterr().out

    def test_design_save_load(self, tmp_path, capsys):
        path = tmp_path / "design.json"
        assert main(["design", "--iterations", "10", "--save",
                     str(path)]) == 0
        assert path.exists()
        assert main(["design", "--load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "EquiNox design on 8x8" in out

    def test_run_small(self, capsys):
        assert main([
            "run", "--scheme", "SingleBase", "--benchmark", "gaussian",
            "--quota", "10", "--iterations", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "EDP" in out

    def test_sweep_small(self, capsys):
        assert main([
            "sweep", "--schemes", "SingleBase", "SeparateBase",
            "--benchmarks", "gaussian", "--quota", "10",
            "--iterations", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "Execution time (normalised to SingleBase)" in out
