"""Tests for the packet tracer."""


from repro.core.grid import Grid
from repro.noc import Network, NetworkInterface, Packet, PacketType
from repro.noc.tracer import PacketTracer


def make_traced_net(watch=None):
    net = Network("t", Grid(4), flit_bytes=16, vc_classes=[(0,), (1,)])
    nis = {n: NetworkInterface(net, n) for n in net.grid.nodes()}
    tracer = PacketTracer(net, watch=watch)
    return net, nis, tracer


def run(net, dst, cycles=300):
    for _ in range(cycles):
        net.tick()
        got = net.pop_delivered(dst)
        if got:
            return got
    return None


class TestTracer:
    def test_records_hops_and_delivery(self):
        net, nis, tracer = make_traced_net()
        p = Packet(1, PacketType.READ_REPLY, 0, 15, 5, 0, vc_class=1)
        nis[0].enqueue(p)
        assert run(net, 15) is p
        events = tracer.trace(1)
        assert events
        kinds = {e.kind for e in events}
        assert "hop" in kinds
        assert "eject" in kinds
        assert "deliver" in kinds

    def test_path_is_minimal_at_zero_load(self):
        net, nis, tracer = make_traced_net()
        src, dst = 0, 15
        p = Packet(1, PacketType.READ_REPLY, src, dst, 5, 0, vc_class=1)
        nis[src].enqueue(p)
        run(net, dst)
        path = tracer.path(1)
        # hops + final eject at the destination router
        assert len(path) == net.grid.hops(src, dst) + 1
        assert path[0] == src
        assert path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert net.grid.hops(a, b) <= 1

    def test_wait_cycles_zero_at_zero_load(self):
        net, nis, tracer = make_traced_net()
        p = Packet(1, PacketType.READ_REPLY, 0, 15, 5, 0, vc_class=1)
        nis[0].enqueue(p)
        run(net, 15)
        assert tracer.wait_cycles(1) == 0

    def test_wait_cycles_positive_under_contention(self):
        """Packets from different sources converging on one destination
        contend for the shared ejection port and merging links."""
        net, nis, tracer = make_traced_net()
        pid = 0
        for src in (0, 1, 2, 4, 8):
            for _ in range(2):
                pid += 1
                nis[src].enqueue(
                    Packet(pid, PacketType.READ_REPLY, src, 15, 5, 0,
                           vc_class=1)
                )
        for _ in range(800):
            net.tick()
            while net.pop_delivered(15):
                pass
            if net.idle():
                break
        total_wait = sum(tracer.wait_cycles(p) for p in range(1, pid + 1))
        assert total_wait > 0

    def test_watch_filter(self):
        net, nis, tracer = make_traced_net(watch=lambda p: p.pid == 2)
        for pid in (1, 2, 3):
            nis[0].enqueue(
                Packet(pid, PacketType.READ_REQUEST, 0, 15, 1, 0, vc_class=0)
            )
        for _ in range(200):
            net.tick()
            while net.pop_delivered(15):
                pass
            if net.idle():
                break
        assert tracer.trace(1) == []
        assert tracer.trace(2) != []
        assert tracer.trace(3) == []

    def test_format_trace(self):
        net, nis, tracer = make_traced_net()
        p = Packet(7, PacketType.READ_REPLY, 0, 5, 5, 0, vc_class=1)
        nis[0].enqueue(p)
        run(net, 5)
        text = tracer.format_trace(7)
        assert "packet 7:" in text
        assert "deliver" in text
        assert tracer.format_trace(99) == "packet 99: no recorded events"

    def test_first_event_is_inject(self):
        """Regression: the documented ``inject`` event kind was never
        recorded, so traces began mid-flight at the first hop."""
        net, nis, tracer = make_traced_net()
        p = Packet(1, PacketType.READ_REPLY, 0, 15, 5, 0, vc_class=1)
        nis[0].enqueue(p)
        assert run(net, 15) is p
        events = tracer.trace(1)
        assert events[0].kind == "inject"
        assert events[0].node == 0
        assert sum(1 for e in events if e.kind == "inject") == 1
        assert "inject" in tracer.format_trace(1)

    def test_inject_hook_chains_previous_hook(self):
        net, nis, first = make_traced_net()
        second = PacketTracer(net)  # wraps the first tracer's hook
        p = Packet(1, PacketType.READ_REPLY, 0, 5, 5, 0, vc_class=1)
        nis[0].enqueue(p)
        run(net, 5)
        assert first.trace(1)[0].kind == "inject"
        assert second.trace(1)[0].kind == "inject"

    def test_inject_wait_counted_under_injection_contention(self):
        """Two buffers of one multi-port NI race into the same router
        output; the loser's pre-first-hop wait is now visible."""
        from repro.noc import MultiPortInterface

        net = Network("t", Grid(4), flit_bytes=16, vc_classes=[(0,), (1,)])
        nis = {n: NetworkInterface(net, n) for n in net.grid.nodes()
               if n != 0}
        nis[0] = MultiPortInterface(net, 0, num_ports=2)
        tracer = PacketTracer(net)
        for pid in (1, 2):
            nis[0].enqueue(
                Packet(pid, PacketType.READ_REPLY, 0, 3, 5, 0, vc_class=1)
            )
        for _ in range(300):
            net.tick()
            while net.pop_delivered(3):
                pass
            if net.idle():
                break
        waits = [tracer.wait_cycles(1), tracer.wait_cycles(2)]
        assert max(waits) > 0

    def test_prune_delivered_drops_history(self):
        net, nis, tracer = make_traced_net()
        p = Packet(1, PacketType.READ_REPLY, 0, 15, 5, 0, vc_class=1)
        nis[0].enqueue(p)
        run(net, 15)
        assert tracer.trace(1)
        tracer.prune_delivered()
        assert tracer.trace(1) == []

    def test_prune_keeps_in_flight_history(self):
        net, nis, tracer = make_traced_net()
        p = Packet(1, PacketType.READ_REPLY, 0, 15, 5, 0, vc_class=1)
        nis[0].enqueue(p)
        for _ in range(3):
            net.tick()
        tracer.prune_delivered()
        assert tracer.trace(1)  # still in flight: history retained

    def test_max_packets_cap(self):
        net, nis, tracer = make_traced_net()
        tracer.max_packets = 2
        for pid in range(1, 6):
            nis[pid % 4].enqueue(
                Packet(pid, PacketType.READ_REQUEST, pid % 4, 15, 1, 0,
                       vc_class=0)
            )
        for _ in range(300):
            net.tick()
            while net.pop_delivered(15):
                pass
            if net.idle():
                break
        assert len(tracer.events) <= 2
