"""Tests for request-trace recording and replay."""

import pytest

from repro.workloads.generator import RequestGenerator
from repro.workloads.profiles import get
from repro.workloads.trace import (
    TraceEntry,
    TraceRecorder,
    TraceSource,
    record_trace,
)


class TestRecord:
    def test_recorder_is_transparent(self):
        profile = get("kmeans")
        plain = RequestGenerator(profile, 8, seed=4, pe_index=0)
        recorded = TraceRecorder(
            RequestGenerator(profile, 8, seed=4, pe_index=0)
        )
        for _ in range(500):
            a = plain.maybe_issue()
            b = recorded.maybe_issue()
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.is_read, a.cb_index, a.row_hit) == (
                    b.is_read, b.cb_index, b.row_hit
                )

    def test_record_trace_helper(self):
        entries = record_trace(get("kmeans"), 8, cycles=400, seed=1)
        assert entries
        assert all(1 <= e.cycle <= 400 for e in entries)
        cycles = [e.cycle for e in entries]
        assert cycles == sorted(cycles)

    def test_entry_roundtrip(self):
        entry = TraceEntry(cycle=12, is_read=True, cb_index=3,
                           row_hit=False, dependent=True)
        assert TraceEntry.from_line(entry.to_line()) == entry


class TestReplay:
    def test_replay_matches_recording(self):
        profile = get("hotspot")
        entries = record_trace(profile, 8, cycles=600, seed=2)
        source = TraceSource(entries)
        replayed = []
        for cycle in range(1, 601):
            request = source.maybe_issue()
            if request is not None:
                replayed.append((cycle, request.is_read, request.cb_index))
        assert replayed == [
            (e.cycle, e.is_read, e.cb_index) for e in entries
        ]

    def test_exhaustion(self):
        entries = [TraceEntry(2, True, 0, True, False)]
        source = TraceSource(entries)
        assert not source.exhausted
        assert source.maybe_issue() is None     # cycle 1
        assert source.maybe_issue() is not None  # cycle 2
        assert source.exhausted
        assert source.maybe_issue() is None

    def test_duplicate_cycle_rejected(self):
        entries = [
            TraceEntry(1, True, 0, True, False),
            TraceEntry(1, False, 1, True, False),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            TraceSource(entries)

    def test_file_roundtrip(self, tmp_path):
        recorder = TraceRecorder(
            RequestGenerator(get("scan"), 8, seed=3, pe_index=1)
        )
        for _ in range(300):
            recorder.maybe_issue()
        path = recorder.save(tmp_path / "traces" / "scan.jsonl")
        assert path.exists()
        source = TraceSource.load(path)
        replayed = 0
        for _ in range(300):
            if source.maybe_issue() is not None:
                replayed += 1
        assert replayed == len(recorder.entries)

    def test_empty_trace(self):
        source = TraceSource([])
        assert source.exhausted
        assert source.maybe_issue() is None


class TestMalformedTraces:
    def test_invalid_json_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('[1, 1, 0, 1, 0]\n{torn garbage\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            TraceSource.load(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('[1, 1, 0]\n')  # truncated field list
        with pytest.raises(ValueError, match="list of 5 fields"):
            TraceSource.load(path)
        path.write_text('{"cycle": 1}\n')
        with pytest.raises(ValueError, match="list of 5 fields"):
            TraceSource.load(path)

    def test_bad_field_types_rejected(self):
        with pytest.raises(ValueError, match="cycle must be a positive"):
            TraceEntry.from_line('["one", 1, 0, 1, 0]')
        with pytest.raises(ValueError, match="cycle must be a positive"):
            TraceEntry.from_line('[0, 1, 0, 1, 0]')
        with pytest.raises(ValueError, match="cb index"):
            TraceEntry.from_line('[1, 1, -2, 1, 0]')

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no entries"):
            TraceSource.load(path)

    def test_missing_file_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read trace file"):
            TraceSource.load(tmp_path / "nope.jsonl")
