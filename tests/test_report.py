"""Tests for the consolidated report builder."""


import pytest

from repro.harness.report import SECTIONS, build_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "figure5.txt").write_text("Figure 5: 92 solutions\n")
    (d / "table1.txt").write_text("Parameter  Value\n")
    return d


class TestBuildReport:
    def test_collects_present_sections(self, results_dir):
        report = build_report(results_dir)
        assert "figure5" in report.sections
        assert "table1" in report.sections
        assert "figure9" in report.missing

    def test_render_includes_titles_and_content(self, results_dir):
        text = build_report(results_dir).render()
        assert "Figure 5 — N-Queen scoring" in text
        assert "92 solutions" in text
        assert "Missing sections" in text

    def test_empty_dir(self, tmp_path):
        report = build_report(tmp_path)
        assert report.sections == {}
        assert len(report.missing) == len(SECTIONS)

    def test_full_report_no_missing(self, tmp_path):
        d = tmp_path / "r"
        d.mkdir()
        for key, _title in SECTIONS:
            (d / f"{key}.txt").write_text(f"content of {key}\n")
        report = build_report(d)
        assert not report.missing
        assert "Missing sections" not in report.render()


class TestWriteReport:
    def test_writes_file(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "REPORT.md")
        assert out.exists()
        assert "EquiNox reproduction report" in out.read_text()

    def test_cli_report(self, results_dir, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "R.md"
        assert main(["report", "--results", str(results_dir),
                     "--output", str(out)]) == 0
        assert out.exists()
