"""Unit tests for the MCTS EIR search."""

import math

import pytest

from repro.core import placement
from repro.core.eir import make_group
from repro.core.grid import Grid
from repro.core.mcts import (
    EirSearch,
    Node,
    SearchConfig,
    SearchResult,
    random_search,
)


@pytest.fixture
def grid():
    return Grid(8)


@pytest.fixture
def nodes(grid):
    return placement.nqueen_best(grid, 8).nodes


class TestNode:
    def test_state_path(self):
        root = Node(action=None)
        g1 = make_group(1, {(1, 0): 3})
        g2 = make_group(2, {(0, 1): 10})
        child = root.add_child(g1)
        grandchild = child.add_child(g2)
        assert grandchild.state() == (g1, g2)
        assert grandchild.depth == 2

    def test_ucb_unvisited_infinite(self):
        root = Node(action=None)
        root.visits = 10
        child = root.add_child(make_group(1, {}))
        assert root.ucb(child) == math.inf

    def test_ucb_formula(self):
        root = Node(action=None)
        root.visits = 100
        child = root.add_child(make_group(1, {}))
        child.visits = 10
        child.total_reward = 5.0
        expected = 0.5 + math.sqrt(2) * math.sqrt(math.log(100) / 10)
        assert root.ucb(child) == pytest.approx(expected)

    def test_ucb_balances_exploration(self):
        root = Node(action=None)
        root.visits = 1000
        exploited = root.add_child(make_group(1, {}))
        exploited.visits, exploited.total_reward = 900, 540  # mean 0.6
        neglected = root.add_child(make_group(2, {}))
        neglected.visits, neglected.total_reward = 5, 2.5  # mean 0.5
        # The rarely-visited child wins on UCB despite lower mean.
        assert root.ucb(neglected) > root.ucb(exploited)

    def test_backpropagate_accumulates(self):
        root = Node(action=None)
        child = root.add_child(make_group(1, {}))
        child.backpropagate(0.7)
        child.backpropagate(0.3)
        assert root.visits == 2
        assert root.total_reward == pytest.approx(1.0)
        assert child.mean_reward == pytest.approx(0.5)

    def test_best_child_value(self):
        root = Node(action=None)
        a = root.add_child(make_group(1, {}))
        b = root.add_child(make_group(2, {}))
        a.visits, a.total_reward = 10, 6.0
        b.visits, b.total_reward = 10, 7.0
        assert root.best_child_value() is b

    def test_best_child_empty_raises(self):
        with pytest.raises(ValueError):
            Node(action=None).best_child_ucb()

    def test_tree_size(self):
        root = Node(action=None)
        c = root.add_child(make_group(1, {}))
        c.add_child(make_group(2, {}))
        assert root.tree_size() == 3


class TestSearch:
    def test_run_produces_complete_design(self, grid, nodes):
        search = EirSearch(grid, nodes, SearchConfig(iterations_per_level=20))
        result = search.run()
        assert len(result.design.groups) == len(nodes)
        assert result.evaluation.score > 0

    def test_deterministic_given_seed(self, grid, nodes):
        cfg = SearchConfig(iterations_per_level=15, seed=7)
        a = EirSearch(grid, nodes, cfg).run()
        b = EirSearch(grid, nodes, cfg).run()
        assert a.design == b.design
        assert a.evaluation.score == b.evaluation.score

    def test_different_seeds_explore(self, grid, nodes):
        a = EirSearch(grid, nodes, SearchConfig(iterations_per_level=10, seed=1)).run()
        b = EirSearch(grid, nodes, SearchConfig(iterations_per_level=10, seed=2)).run()
        # Not a strict requirement, but with this few iterations the
        # search should not have converged to the same design.
        assert a.designs_evaluated > 0 and b.designs_evaluated > 0

    def test_tree_depth_equals_cb_count(self, grid, nodes):
        """Group-per-level expansion: one level per CB (paper 4.3)."""
        search = EirSearch(grid, nodes, SearchConfig(iterations_per_level=5))
        result = search.run()
        assert len(result.best_score_trace) == len(nodes)

    def test_actions_respect_taken_eirs(self, grid, nodes):
        search = EirSearch(grid, nodes, SearchConfig())
        first = search.actions(())[0]
        second_actions = search.actions((first,))
        used = set(first.nodes)
        for group in second_actions:
            assert not (set(group.nodes) & used)

    def test_rollout_completes_state(self, grid, nodes):
        search = EirSearch(grid, nodes, SearchConfig(seed=3))
        full = search.rollout(())
        assert len(full) == len(nodes)
        assert search.is_terminal(full)

    def test_more_iterations_not_worse(self, grid, nodes):
        """MCTS with a real budget should beat a nearly-greedy run."""
        small = EirSearch(grid, nodes, SearchConfig(iterations_per_level=2,
                                                    seed=0)).run()
        large = EirSearch(grid, nodes, SearchConfig(iterations_per_level=60,
                                                    seed=0)).run()
        assert large.evaluation.score <= small.evaluation.score * 1.05

    def test_eval_cache_hit(self, grid, nodes):
        search = EirSearch(grid, nodes, SearchConfig(seed=0))
        state = search.rollout(())
        first = search.evaluate_state(state)
        count = search.designs_evaluated
        second = search.evaluate_state(state)
        assert first is second
        assert search.designs_evaluated == count


class TestRandomSearch:
    def test_random_search_returns_best_seen(self, grid, nodes):
        result = random_search(grid, nodes, samples=20,
                               config=SearchConfig(seed=5))
        assert isinstance(result, SearchResult)
        assert len(result.best_score_trace) == 20
        # The trace is non-increasing (best-so-far).
        for earlier, later in zip(result.best_score_trace,
                                  result.best_score_trace[1:]):
            assert later <= earlier

    def test_mcts_beats_random_at_equal_budget(self, grid, nodes):
        """The paper's search-efficiency claim, at small scale."""
        mcts = EirSearch(grid, nodes,
                         SearchConfig(iterations_per_level=40, seed=0)).run()
        rand = random_search(grid, nodes, samples=mcts.designs_evaluated,
                             config=SearchConfig(seed=0))
        assert mcts.evaluation.score <= rand.evaluation.score * 1.10
