"""Property-based tests over the simulator's core invariants."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import hotzone
from repro.core.eir import EirDesign, enumerate_groups
from repro.core.grid import Grid
from repro.core.nqueen import is_valid_solution, sample_solutions
from repro.noc import Network, NetworkInterface, Packet, PacketType
from repro.physical import geometry, interposer


SLOW = settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestNetworkProperties:
    @SLOW
    @given(
        seed=st.integers(0, 10**6),
        rate=st.floats(0.02, 0.25),
        width=st.sampled_from([3, 4, 5]),
        routing=st.sampled_from(["xy", "oddeven"]),
    )
    def test_conservation_and_quiescence(self, seed, rate, width, routing):
        """Any random traffic drains completely with no lost packets."""
        net = Network(
            "p", Grid(width), flit_bytes=16,
            vc_classes=[(0,), (1,)], routing_algorithm=routing,
        )
        nis = {n: NetworkInterface(net, n) for n in net.grid.nodes()}
        rng = random.Random(seed)
        nodes = list(net.grid.nodes())
        sent = 0
        for _ in range(120):
            for src in nodes:
                if rng.random() < rate:
                    dst = rng.choice(nodes)
                    if dst == src:
                        continue
                    sent += 1
                    reply = rng.random() < 0.5
                    net_packet = Packet(
                        sent,
                        PacketType.READ_REPLY if reply
                        else PacketType.READ_REQUEST,
                        src, dst, 5 if reply else 1, 0,
                        vc_class=1 if reply else 0,
                    )
                    nis[src].enqueue(net_packet)
            net.tick()
            for n in nodes:
                while net.pop_delivered(n):
                    pass
        for _ in range(20000):
            net.tick()
            for n in nodes:
                while net.pop_delivered(n):
                    pass
            if net.idle():
                break
        assert net.idle()
        assert net.stats.packets_delivered == sent
        assert net.stats.flits_injected == net.stats.flits_ejected

    @SLOW
    @given(seed=st.integers(0, 10**6))
    def test_latency_never_below_zero_load(self, seed):
        """Measured latency >= the zero-load bound for every packet."""
        net = Network("p", Grid(4), flit_bytes=16, vc_classes=[(0,), (1,)])
        nis = {n: NetworkInterface(net, n) for n in net.grid.nodes()}
        rng = random.Random(seed)
        packets = []
        for pid in range(1, 30):
            src, dst = rng.sample(range(16), 2)
            p = Packet(pid, PacketType.READ_REPLY, src, dst, 5, 0, vc_class=1)
            packets.append(p)
            nis[src].enqueue(p)
        for _ in range(3000):
            net.tick()
            for n in net.grid.nodes():
                while net.pop_delivered(n):
                    pass
            if net.idle():
                break
        for p in packets:
            inj = p.inject_router if p.inject_router is not None else p.src
            zero_load = net.grid.hops(inj, p.dst) + p.size + 2
            assert p.latency >= zero_load


class TestNQueenProperties:
    @settings(deadline=None, max_examples=10)
    @given(n=st.integers(6, 12), seed=st.integers(0, 100))
    def test_sampled_solutions_always_valid(self, n, seed):
        for cols in sample_solutions(n, 3, seed=seed):
            assert is_valid_solution(cols)


class TestHotzoneProperties:
    @settings(deadline=None, max_examples=30)
    @given(nodes=st.sets(st.integers(0, 63), min_size=1, max_size=10))
    def test_overlap_subset_of_hotzones(self, nodes):
        grid = Grid(8)
        placement = tuple(nodes)
        union = set()
        for cb in placement:
            union |= hotzone.hot_zone(grid, cb)
        assert hotzone.overlap_tiles(grid, placement) <= union

    @settings(deadline=None, max_examples=30)
    @given(
        nodes=st.sets(st.integers(0, 63), min_size=2, max_size=8),
        extra=st.integers(0, 63),
    )
    def test_adding_cb_never_reduces_penalty(self, nodes, extra):
        grid = Grid(8)
        placement = tuple(nodes)
        bigger = tuple(set(placement) | {extra})
        assert hotzone.placement_penalty(grid, bigger) >= (
            hotzone.placement_penalty(grid, placement)
        )


class TestGeometryProperties:
    coords = st.tuples(
        st.integers(0, 7), st.integers(0, 7), st.integers(0, 7),
        st.integers(0, 7),
    )

    @settings(deadline=None, max_examples=60)
    @given(s1=coords, s2=coords, s3=coords)
    def test_crossing_count_permutation_invariant(self, s1, s2, s3):
        def seg(c):
            return geometry.Segment((float(c[0]), float(c[1])),
                                    (float(c[2]), float(c[3])))

        a = geometry.count_crossings([seg(s1), seg(s2), seg(s3)])
        b = geometry.count_crossings([seg(s3), seg(s1), seg(s2)])
        assert a == b

    @settings(deadline=None, max_examples=40)
    @given(links=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 63)).filter(
            lambda t: t[0] != t[1]
        ),
        min_size=1, max_size=8,
    ))
    def test_layer_assignment_always_valid(self, links):
        plan = interposer.plan_links(Grid(8), links)
        for i, j in plan.crossings:
            assert plan.layer_of[i] != plan.layer_of[j]
        assert plan.num_layers >= 1


class TestEirProperties:
    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 1000))
    def test_random_full_designs_are_valid(self, seed):
        """Any rollout-constructed design passes EirDesign validation."""
        grid = Grid(8)
        from repro.core.placement import nqueen_best

        placement = nqueen_best(grid, 8).nodes
        rng = random.Random(seed)
        taken = set()
        groups = []
        for cb in placement:
            options = enumerate_groups(
                grid, placement, cb, taken=frozenset(taken), require_full=True
            )
            group = rng.choice(options)
            groups.append(group)
            taken.update(group.nodes)
        design = EirDesign(grid=grid, placement=placement,
                           groups=tuple(groups))
        # EIRs never sit on CBs or inside any DAZ.
        forbidden = set(placement)
        for cb in placement:
            forbidden |= hotzone.daz(grid, cb)
        assert not (set(design.eir_nodes) & forbidden)
