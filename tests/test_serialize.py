"""Tests for design JSON (de)serialisation."""

import json

import pytest

from repro.core.serialize import (
    FORMAT_VERSION,
    design_from_dict,
    design_to_dict,
    load_design,
    save_design,
)
from repro.harness import cache


@pytest.fixture(scope="module")
def design():
    return cache.equinox_design(8, 8, iterations_per_level=20, seed=0)


class TestRoundTrip:
    def test_dict_roundtrip(self, design):
        data = design_to_dict(design)
        rebuilt = design_from_dict(data)
        assert rebuilt.placement.nodes == design.placement.nodes
        assert rebuilt.eir_design == design.eir_design
        assert rebuilt.evaluation.score == pytest.approx(
            design.evaluation.score
        )
        assert rebuilt.rdl_plan.num_crossings == design.rdl_plan.num_crossings

    def test_file_roundtrip(self, design, tmp_path):
        path = save_design(design, tmp_path / "designs" / "d8.json")
        assert path.exists()
        rebuilt = load_design(path)
        assert rebuilt.eir_design == design.eir_design

    def test_json_is_plain(self, design, tmp_path):
        path = save_design(design, tmp_path / "d.json")
        data = json.loads(path.read_text())
        assert data["version"] == FORMAT_VERSION
        assert data["grid"] == {"width": 8, "height": 8}
        assert len(data["groups"]) == 8


class TestValidation:
    def test_bad_version_rejected(self, design):
        data = design_to_dict(design)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            design_from_dict(data)

    def test_tampered_score_rejected_when_strict(self, design):
        data = design_to_dict(design)
        data["evaluation"]["score"] = 123.0
        with pytest.raises(ValueError, match="score"):
            design_from_dict(data)
        rebuilt = design_from_dict(data, strict=False)
        assert rebuilt.eir_design == design.eir_design

    def test_corrupt_groups_rejected(self, design):
        data = design_to_dict(design)
        # Duplicate an EIR across two CBs.
        node = data["groups"][0]["eirs"][0]["node"]
        data["groups"][1]["eirs"][0]["node"] = node
        with pytest.raises(ValueError):
            design_from_dict(data, strict=False)
