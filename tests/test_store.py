"""Content-addressed result store: addressing, durability, queries."""

import json

import pytest

from repro import __version__
from repro.harness import store as store_mod
from repro.harness.experiment import ExperimentConfig, config_digest
from repro.harness.runner import expand_grid, run_sweep
from repro.harness.store import (
    DirectoryResultStore,
    MemoryResultStore,
    default_store_dir,
    make_record,
    record_result,
    resolve_store,
    result_key,
)

CFG = ExperimentConfig(quota=8, mcts_iterations=10)


def _result():
    cells = expand_grid(["SingleBase"], ["hotspot"], CFG)
    return run_sweep(cells).outcomes[0].result


@pytest.fixture(scope="module")
def result():
    return _result()


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryResultStore()
    return DirectoryResultStore(tmp_path / "results")


class TestAddressing:
    def test_key_is_stable(self):
        assert result_key("EquiNox", "hotspot", CFG) == result_key(
            "EquiNox", "hotspot", ExperimentConfig(quota=8,
                                                   mcts_iterations=10)
        )

    def test_key_covers_all_inputs(self):
        base = result_key("EquiNox", "hotspot", CFG)
        assert result_key("SingleBase", "hotspot", CFG) != base
        assert result_key("EquiNox", "tensor", CFG) != base
        assert result_key(
            "EquiNox", "hotspot", ExperimentConfig(quota=9,
                                                   mcts_iterations=10)
        ) != base
        # The package version is part of the address: a release that
        # could change behaviour invalidates every stored result.
        assert result_key("EquiNox", "hotspot", CFG,
                          version="0.0.0") != base

    def test_record_shape(self, result):
        record = make_record("SingleBase", "hotspot", CFG, result,
                             seed_used=0, attempts=1, duration_s=0.25)
        assert record["key"] == result_key("SingleBase", "hotspot", CFG)
        assert record["version"] == __version__
        assert record["config_digest"] == config_digest(CFG)
        assert record["width"] == CFG.width
        rebuilt = record_result(record)
        assert rebuilt == result  # bit-identical through the store

    def test_record_result_rejects_garbage(self):
        assert record_result({"result": None}) is None
        assert record_result({"result": {"bogus": 1}}) is None


class TestBackends:
    def test_roundtrip(self, store, result):
        record = make_record("SingleBase", "hotspot", CFG, result)
        store.put(record)
        fetched = store.get(record["key"])
        assert fetched["result"] == record["result"]
        assert record_result(fetched) == result
        assert len(store) == 1

    def test_miss_returns_none(self, store):
        assert store.get("0" * 24) is None

    def test_malformed_record_rejected(self, store):
        with pytest.raises(ValueError):
            store.put({"schema": 999, "key": "x", "result": {}})

    def test_query_filters(self, store, result):
        store.put(make_record("SingleBase", "hotspot", CFG, result))
        store.put(make_record("EquiNox", "hotspot", CFG, result))
        other = ExperimentConfig(quota=16, mcts_iterations=10)
        store.put(make_record("EquiNox", "hotspot", other, result))
        assert len(store.query()) == 3
        assert [r["scheme"] for r in store.query(scheme="EquiNox")] == [
            "EquiNox", "EquiNox",
        ]
        assert len(store.query(scheme="EquiNox",
                               config_digest=config_digest(CFG))) == 1
        assert store.query(scheme="NoSuch") == []
        assert len(store.query(width=CFG.width)) == 3
        assert store.query(width=16) == []


class TestDirectoryStore:
    def test_corrupt_entry_evicted(self, tmp_path, result):
        store = DirectoryResultStore(tmp_path)
        record = make_record("SingleBase", "hotspot", CFG, result)
        store.put(record)
        (path,) = tmp_path.glob("result-*.json")
        path.write_text("{torn")
        assert store.get(record["key"]) is None
        assert not path.exists()  # evicted, never trusted again

    def test_key_mismatch_evicted(self, tmp_path, result):
        store = DirectoryResultStore(tmp_path)
        record = make_record("SingleBase", "hotspot", CFG, result)
        store.put(record)
        (path,) = tmp_path.glob("result-*.json")
        # An entry renamed under the wrong address must be a miss: the
        # filename is the lookup key and must agree with the content.
        wrong = tmp_path / "result-deadbeefdeadbeefdeadbeef.json"
        path.rename(wrong)
        assert store.get("deadbeefdeadbeefdeadbeef") is None
        assert not wrong.exists()

    def test_no_temp_files_left_behind(self, tmp_path, result):
        store = DirectoryResultStore(tmp_path)
        store.put(make_record("SingleBase", "hotspot", CFG, result))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_query_skips_unparseable(self, tmp_path, result):
        store = DirectoryResultStore(tmp_path)
        store.put(make_record("SingleBase", "hotspot", CFG, result))
        (tmp_path / "result-notjson.json").write_text("{")
        assert len(store.query()) == 1

    def test_entries_are_sorted_json(self, tmp_path, result):
        store = DirectoryResultStore(tmp_path)
        store.put(make_record("SingleBase", "hotspot", CFG, result))
        (path,) = tmp_path.glob("result-*.json")
        text = path.read_text()
        assert text == json.dumps(json.loads(text), sort_keys=True)


class TestResolution:
    def test_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.STORE_ENV, str(tmp_path))
        assert default_store_dir() == tmp_path
        store = resolve_store(None)
        assert isinstance(store, DirectoryResultStore)
        assert store.root == tmp_path

    @pytest.mark.parametrize("sentinel", ["", "0", "off", "none",
                                          "disabled", " OFF "])
    def test_env_disables(self, sentinel, monkeypatch):
        monkeypatch.setenv(store_mod.STORE_ENV, sentinel)
        assert default_store_dir() is None
        assert resolve_store(None) is None

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv(store_mod.STORE_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_store_dir() == tmp_path / "repro-equinox" / "results"

    def test_explicit_spec_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.STORE_ENV, "off")
        store = resolve_store(str(tmp_path / "mine"))
        assert store is not None and store.root == tmp_path / "mine"
        assert resolve_store("off") is None
