"""Tests for the cross-run analysis helpers."""

import pytest

from repro.harness.analysis import (
    classify,
    crossover_benchmarks,
    summarize_scheme,
)
from repro.harness.metrics import ExperimentResult, LatencyNs


def result(scheme, benchmark, cycles):
    return ExperimentResult(
        scheme=scheme,
        benchmark=benchmark,
        width=8,
        cycles=cycles,
        instructions=1000,
        energy_nj=100.0,
        area_mm2=10.0,
        latency=LatencyNs(),
        reply_bits_fraction=0.7,
    )


class TestClassify:
    def test_labels(self):
        baseline = {
            "heavy": result("base", "heavy", 1000),
            "mid": result("base", "mid", 1000),
            "light": result("base", "light", 1000),
        }
        improved = {
            "heavy": result("eq", "heavy", 700),   # 30% faster
            "mid": result("eq", "mid", 920),       # 8%
            "light": result("eq", "light", 990),   # 1%
        }
        classes = {c.benchmark: c.label for c in classify(baseline, improved)}
        assert classes == {
            "heavy": "noc-bound",
            "mid": "moderate",
            "light": "compute-bound",
        }

    def test_sorted_by_sensitivity(self):
        baseline = {b: result("base", b, 1000) for b in "abc"}
        improved = {
            "a": result("eq", "a", 900),
            "b": result("eq", "b", 500),
            "c": result("eq", "c", 990),
        }
        order = [c.benchmark for c in classify(baseline, improved)]
        assert order == ["b", "a", "c"]

    def test_missing_benchmark_rejected(self):
        with pytest.raises(KeyError):
            classify({"a": result("base", "a", 100)}, {})


class TestSummarize:
    def _grid(self):
        return {
            ("SingleBase", "x"): result("SingleBase", "x", 1000),
            ("SingleBase", "y"): result("SingleBase", "y", 1000),
            ("EquiNox", "x"): result("EquiNox", "x", 600),
            ("EquiNox", "y"): result("EquiNox", "y", 1100),
        }

    def test_summary_fields(self):
        summary = summarize_scheme("EquiNox", self._grid(), ["x", "y"])
        assert summary.mean_reduction == pytest.approx((0.4 - 0.1) / 2)
        assert summary.best_benchmark == "x"
        assert summary.worst_benchmark == "y"
        assert summary.wins == 1
        assert summary.total == 2


class TestCrossover:
    def test_split(self):
        grid = {
            ("A", "x"): result("A", "x", 500),
            ("B", "x"): result("B", "x", 700),
            ("A", "y"): result("A", "y", 900),
            ("B", "y"): result("B", "y", 800),
            ("A", "z"): result("A", "z", 600),
            ("B", "z"): result("B", "z", 600),
        }
        a_wins, b_wins = crossover_benchmarks("A", "B", grid, ["x", "y", "z"])
        assert a_wins == ["x"]
        assert b_wins == ["y"]
