"""Differential tests for the active-set scheduler.

The active scheduler (tick only components with work, fast-forward
quiescent gaps) must be *bit-identical* to the dense oracle (walk every
NI and router every cycle): same stats fingerprints, same cycle counts,
same stall counters, same audit outcomes, same watchdog trip cycle.
These tests pin that contract across all schemes, with conservation
audits armed and with a firing fault plan, plus the MCTS evaluation
memoization's equivalence to direct evaluation.
"""

import random

import pytest

from repro.core import evaluation
from repro.core.grid import Grid
from repro.core.mcts import EirSearch, SearchConfig
from repro.core.placement import nqueen_best
from repro.gpu.system import SimulationStall, System, SystemConfig
from repro.harness.experiment import (
    ExperimentConfig,
    build_fabric,
    run_experiment,
)
from repro.noc.faults import FaultSpec
from repro.noc.network import resolve_scheduler
from repro.schemes import SCHEME_ORDER, get_spec
from repro.workloads import profiles
from repro.workloads.synthetic import run_uniform

QUICK = dict(quota=10, mcts_iterations=10, validate=64)


def _config(scheduler, faults=()):
    return ExperimentConfig(faults=tuple(faults), scheduler=scheduler,
                            **QUICK)


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------
class TestResolveScheduler:
    def test_default_is_active(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert resolve_scheduler() == "active"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "dense")
        assert resolve_scheduler() == "dense"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "dense")
        assert resolve_scheduler("active") == "active"

    def test_invalid_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            resolve_scheduler("lazy")

    def test_fabric_exposes_choice(self):
        fabric = build_fabric(
            "SeparateBase", ExperimentConfig(scheduler="dense", **QUICK)
        )
        assert fabric.scheduler == "dense"
        for net, _ratio, _role in fabric.networks:
            assert net.scheduler == "dense"


# ----------------------------------------------------------------------
# Full-system differential: every scheme, audits armed, faults firing
# ----------------------------------------------------------------------
class TestSchedulerDifferential:
    # Fault plans are a mesh-only capability; the loop baselines get an
    # equivalent scheduler differential (without faults) in
    # test_schemes.py::TestLoopSchemes.
    @pytest.mark.parametrize(
        "scheme",
        [s for s in SCHEME_ORDER if get_spec(s).supports_faults],
    )
    def test_scheme_bit_identical_with_firing_faults(self, scheme):
        # Fault the first CB's reply-injection buffer mid-run (firing),
        # and arm a never-firing mesh fault: both the fault machinery
        # and the armed-only path must leave the schedulers in lockstep.
        placement = build_fabric(scheme, _config("dense")).placement
        faults = (
            FaultSpec(kind="ni_buffer", node=placement[0], buffer=0,
                      net="reply", at_cycle=50, heal_cycle=400),
            FaultSpec(kind="mesh_link", node=0, peer=1, net="any",
                      at_cycle=10 ** 9),
        )
        results = {
            sched: run_experiment(scheme, "hotspot",
                                  _config(sched, faults))
            for sched in ("dense", "active")
        }
        dense, active = results["dense"], results["active"]
        assert active.stats_fingerprint == dense.stats_fingerprint
        assert active.cycles == dense.cycles
        assert active.instructions == dense.instructions
        assert active.pe_stall_cycles == dense.pe_stall_cycles
        assert active.cb_stall_cycles == dense.cb_stall_cycles
        assert active.flits_dropped == dense.flits_dropped
        assert active.packets_recovered == dense.packets_recovered

    def test_fast_forward_engages_and_stays_invisible(self):
        cycles = {}
        for sched in ("dense", "active"):
            fabric = build_fabric("SeparateBase", _config(sched))
            system = System(fabric, profiles.get("bfs"),
                            SystemConfig(quota=10))
            result = system.run()
            cycles[sched] = result.cycles
            if sched == "active":
                assert system.fast_forwarded_cycles > 0
            else:
                assert system.fast_forwarded_cycles == 0
        assert cycles["active"] == cycles["dense"]

    def test_watchdog_trips_at_identical_cycle(self):
        trip = {}
        for sched in ("dense", "active"):
            fabric = build_fabric("SeparateBase", _config(sched))
            system = System(
                fabric, profiles.get("kmeans"),
                SystemConfig(quota=10, watchdog_cycles=800,
                             max_cycles=100000),
            )
            # Leak every ejection credit of the reply network so replies
            # can never commit and the run deadlocks.
            for router in fabric.reply_net.routers:
                for eject in router.eject_ports:
                    router.outputs[eject].credits[0] = 0
            with pytest.raises(SimulationStall):
                system.run()
            trip[sched] = system.cycle
        assert trip["active"] == trip["dense"]


# ----------------------------------------------------------------------
# Network-only differential
# ----------------------------------------------------------------------
class TestSyntheticDifferential:
    @pytest.mark.parametrize("rate", [0.002, 0.05, 0.3])
    def test_uniform_traffic_fingerprints_match(self, rate):
        prints = {}
        for sched in ("dense", "active"):
            result = run_uniform(Grid(8), injection_rate=rate, cycles=600,
                                 seed=7, scheduler=sched)
            prints[sched] = (result.network.stats.fingerprint(),
                             result.received, result.cycles)
        assert prints["active"] == prints["dense"]


# ----------------------------------------------------------------------
# MCTS evaluation memoization
# ----------------------------------------------------------------------
class TestIncrementalEvaluation:
    def test_incremental_matches_direct_bit_for_bit(self):
        grid = Grid(8)
        placement = nqueen_best(grid, 8).nodes
        search = EirSearch(grid, placement,
                           SearchConfig(iterations_per_level=5, seed=3))
        incremental = evaluation.IncrementalEvaluator(grid, placement)
        for _ in range(20):
            state = search.rollout(())
            inc = incremental.evaluate(state)
            direct = evaluation.evaluate(search._design(state))
            assert inc.score == direct.score
            assert inc.raw == direct.raw
            assert inc.normalized == direct.normalized

    def test_search_reports_nonzero_hit_rate(self):
        grid = Grid(8)
        placement = nqueen_best(grid, 8).nodes
        result = EirSearch(
            grid, placement, SearchConfig(iterations_per_level=40, seed=0)
        ).run()
        assert result.eval_cache_lookups > 0
        assert result.eval_cache_hits > 0
        assert 0.0 < result.eval_cache_hit_rate < 1.0
        assert (result.designs_evaluated
                == result.eval_cache_lookups - result.eval_cache_hits)

    def test_fragment_reuse_across_designs(self):
        grid = Grid(8)
        placement = nqueen_best(grid, 8).nodes
        search = EirSearch(grid, placement,
                           SearchConfig(iterations_per_level=5, seed=11))
        incremental = evaluation.IncrementalEvaluator(grid, placement)
        rng = random.Random(5)
        base = list(search.rollout(()))
        incremental.evaluate(base)
        fragments_after_first = len(incremental._fragments)
        # Replace one CB's group; only that CB's fragment is new.
        depth = rng.randrange(len(base))
        options = [g for g in search.actions(base[:depth])
                   if g != base[depth]]
        if options:
            mutated = base[:depth] + [rng.choice(options)]
            while not search.is_terminal(mutated):
                mutated.append(search.rollout(tuple(mutated))[len(mutated)])
            incremental.evaluate(mutated)
            grown = len(incremental._fragments) - fragments_after_first
            assert grown >= 1  # new fragments only for changed groups
            assert grown <= len(placement) - depth
