"""Regression tests for the arbitration-fairness fixes.

Three bugs pinned here:

* ``Router.tick`` used a hard-coded ``% 16`` in output arbitration, so
  round-robin fairness silently degraded once dynamically added
  injection/interposer port indices reached 16 (aliased indices tie and
  the earlier port always wins);
* ``EquiNoxInterface._select_buffer`` advanced one shared round-robin
  pointer modulo the transient free-list length, biasing EIR choice
  whenever candidate sets differ per destination;
* ``Network.pop_delivered`` advanced the per-node eject rotation even
  when nothing was popped and regardless of which port served, starving
  later ports under asymmetric load.
"""

from collections import deque
from types import SimpleNamespace

from repro.core.grid import Grid
from repro.noc import Network, Packet, PacketType
from repro.noc.interface import EquiNoxInterface


class TestOutputArbitrationModulus:
    def _net(self):
        return Network(
            "t", Grid(2), flit_bytes=16, num_vcs=2, vc_capacity=200,
            vc_classes=[(0, 1)],
        )

    def test_rr_mod_tracks_added_ports(self):
        net = self._net()
        router = net.routers[0]
        assert router.rr_mod == 1 + max(max(router.inputs),
                                        max(router.outputs))
        for _ in range(20):
            router.add_input_port()
        assert router.rr_mod == 1 + max(router.inputs)
        eject = net.add_eject_port(0)
        assert router.rr_mod == eject + 1

    def test_high_port_indices_share_the_link(self):
        """Ports 16 apart must alternate, not alias to the same slot.

        With the old ``% 16`` both contenders hash to the same
        round-robin key, the tie resolves by scan order, and the
        higher-indexed port never wins.
        """
        net = self._net()
        router = net.routers[0]
        ports = [router.add_input_port() for _ in range(17)]
        lo, hi = ports[0], ports[-1]
        assert hi - lo == 16  # the aliasing distance of the old modulus
        pid = 0
        winners = []
        for cycle in range(1, 13):
            # Keep a multi-flit packet streaming at each port (input VC
            # 0 at lo, input VC 1 at hi, so both hold an output VC and
            # contend in switch allocation every cycle).
            for port, vc in ((lo, 0), (hi, 1)):
                ivc = router.inputs[port][vc]
                if not ivc.queue:
                    pid += 1
                    packet = Packet(pid, PacketType.READ_REPLY, 0, 1, 4, 0)
                    for flit in packet.make_flits():
                        router.accept(port, vc, flit, cycle)
            for in_port, _vc, _out, _ovc, _flit in router.tick(cycle):
                winners.append(in_port)
        assert winners.count(lo) >= 4
        assert winners.count(hi) >= 4


class _StubBuffer:
    """Just the policy surface ``_select_buffer`` reads."""

    def __init__(self):
        self.free = True
        self.failed = False
        self.draining = False

    @property
    def available(self):
        return self.free and not self.failed and not self.draining


class TestEirBufferSelection:
    def _ni(self, choices):
        """A minimal stand-in carrying just the state the policy reads."""
        size = 1 + max((i for c in choices.values() for i in c), default=0)
        return SimpleNamespace(
            buffers=[_StubBuffer() for _ in range(size)],
            _choices=choices,
            _rr={},
        )

    def test_ties_alternate_within_a_candidate_set(self):
        ni = self._ni({9: (1, 2)})
        select = EquiNoxInterface._select_buffer
        picks = [select(ni, SimpleNamespace(dst=9)) for _ in range(6)]
        assert sorted(set(picks)) == [1, 2]
        assert picks.count(1) == 3 and picks.count(2) == 3
        assert all(a != b for a, b in zip(picks, picks[1:]))

    def test_candidate_sets_rotate_independently(self):
        """Traffic to one destination must not skew another's tie-break."""
        ni = self._ni({9: (1, 2), 7: (3, 4)})
        select = EquiNoxInterface._select_buffer
        seq = [select(ni, SimpleNamespace(dst=d))
               for d in (9, 7, 9, 7, 9, 7)]
        for pair, picks in (((1, 2), seq[0::2]), ((3, 4), seq[1::2])):
            assert sorted(set(picks)) == list(pair)
            assert all(a != b for a, b in zip(picks, picks[1:]))

    def test_busy_candidates_fall_back_to_local(self):
        ni = self._ni({9: (1, 2)})
        for i in (1, 2):
            ni.buffers[i].free = False
        select = EquiNoxInterface._select_buffer
        assert select(ni, SimpleNamespace(dst=9)) == 0
        ni.buffers[0].free = False
        assert select(ni, SimpleNamespace(dst=9)) is None

    def test_forced_choice_still_advances_rotation(self):
        """After a forced pick, the next tie starts past the served one."""
        ni = self._ni({9: (1, 2)})
        select = EquiNoxInterface._select_buffer
        ni.buffers[1].free = False
        assert select(ni, SimpleNamespace(dst=9)) == 2  # forced
        ni.buffers[1].free = True
        assert select(ni, SimpleNamespace(dst=9)) == 1  # rotation moved on


class TestEjectPopRotation:
    def _net_with_ports(self):
        net = Network("t", Grid(2), flit_bytes=16)
        net.add_eject_port(0)
        net.add_eject_port(0)
        return net, net.routers[0].eject_ports

    def _load(self, net, node, port, count):
        router = net.routers[node]
        queue = net.receive_queues.setdefault((node, port), deque())
        for _ in range(count):
            packet = Packet(1, PacketType.READ_REQUEST, 1, node, 1, 0)
            queue.append((packet, router.outputs[port]))
            net._delivered[node] = net._delivered.get(node, 0) + 1

    def test_empty_pop_does_not_rotate(self):
        net, ports = self._net_with_ports()
        assert net.pop_delivered(0) is None
        assert net._pop_rr.get(0, 0) == 0
        # The next pop therefore starts at the first port, as if the
        # empty scans never happened.
        self._load(net, 0, ports[0], 1)
        assert net.pop_delivered(0) is not None
        assert net._pop_rr[0] == 1

    def test_rotation_advances_past_serving_port(self):
        """The pointer moves past the port that served, not by one."""
        net, ports = self._net_with_ports()
        self._load(net, 0, ports[1], 1)  # only the middle port is loaded
        assert net.pop_delivered(0) is not None
        assert net._pop_rr[0] == 2  # past ports[1], old code left 1
        self._load(net, 0, ports[0], 1)
        self._load(net, 0, ports[1], 1)
        self._load(net, 0, ports[2], 1)
        # Scan resumes at ports[2]: the port after the one that served.
        assert net.pop_delivered(0) is not None
        assert net._pop_rr[0] == 0

    def test_symmetric_load_round_robins(self):
        net, ports = self._net_with_ports()
        for p in ports:
            self._load(net, 0, p, 2)
        served = []
        for _ in range(6):
            packet = net.pop_delivered(0)
            assert packet is not None
            served.append(net._pop_rr[0])
        assert served == [1, 2, 0, 1, 2, 0]

    def test_explicit_port_does_not_rotate(self):
        net, ports = self._net_with_ports()
        self._load(net, 0, ports[2], 1)
        assert net.pop_delivered(0, port=ports[2]) is not None
        assert net._pop_rr.get(0, 0) == 0
