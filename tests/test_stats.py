"""Unit tests for network statistics."""

import pytest

from repro.noc.stats import LatencyAccumulator, NetworkStats
from repro.noc.types import Packet, PacketType


def packet(ptype=PacketType.READ_REPLY, size=5, created=0, delivered=20):
    p = Packet(1, ptype, 0, 5, size, created)
    p.delivered = delivered
    return p


class TestLatencyAccumulator:
    def test_add_splits_queuing(self):
        acc = LatencyAccumulator()
        acc.add(total=30, non_queuing=12)
        assert acc.count == 1
        assert acc.queuing == 18
        assert acc.non_queuing == 12

    def test_non_queuing_clamped_to_total(self):
        acc = LatencyAccumulator()
        acc.add(total=8, non_queuing=12)  # faster than the model's bound
        assert acc.non_queuing == 8
        assert acc.queuing == 0

    def test_clamped_samples_are_counted(self):
        """Regression: clamping was silent, hiding zero-load-model bugs."""
        acc = LatencyAccumulator()
        acc.add(total=8, non_queuing=12)   # clamped
        acc.add(total=30, non_queuing=12)  # normal
        acc.add(total=12, non_queuing=12)  # boundary: not clamped
        assert acc.clamped == 1
        assert acc.count == 3

    def test_means(self):
        acc = LatencyAccumulator()
        acc.add(10, 4)
        acc.add(20, 4)
        assert acc.mean_total == 15.0
        assert acc.mean_queuing == 11.0
        assert acc.mean_non_queuing == 4.0

    def test_empty_means_zero(self):
        acc = LatencyAccumulator()
        assert acc.mean_total == 0.0


class TestNetworkStats:
    def test_record_delivery_by_type(self):
        stats = NetworkStats(16, 16)
        stats.record_delivery(packet(PacketType.READ_REPLY), 10)
        stats.record_delivery(packet(PacketType.READ_REQUEST, size=1), 10)
        assert stats.latency[PacketType.READ_REPLY].count == 1
        assert stats.latency[PacketType.READ_REQUEST].count == 1
        assert stats.packets_delivered == 2
        assert stats.bits_delivered == (5 + 1) * 16 * 8

    def test_latency_breakdown_groups_types(self):
        stats = NetworkStats(16, 16)
        stats.record_delivery(packet(PacketType.READ_REPLY), 12)
        stats.record_delivery(packet(PacketType.WRITE_REPLY, size=1), 12)
        stats.record_delivery(packet(PacketType.READ_REQUEST, size=1), 12)
        breakdown = stats.latency_breakdown()
        assert breakdown["reply_queuing"] == pytest.approx(8.0)
        assert breakdown["request_non_queuing"] == pytest.approx(12.0)

    def test_mean_latency_filtered(self):
        stats = NetworkStats(16, 16)
        stats.record_delivery(packet(PacketType.READ_REPLY, delivered=30), 10)
        stats.record_delivery(
            packet(PacketType.READ_REQUEST, delivered=10), 5
        )
        assert stats.mean_latency() == pytest.approx(20.0)
        assert stats.mean_latency([PacketType.READ_REQUEST]) == 10.0

    def test_heatmap_masks_untouched_routers(self):
        stats = NetworkStats(4, 16)
        stats.record_move(2, 7)
        heat = stats.heatmap()
        assert heat[2] == 7.0
        assert heat[0] == 0.0

    def test_heatmap_variance(self):
        stats = NetworkStats(4, 16)
        for node in range(4):
            stats.record_move(node, 3)
        assert stats.heatmap_variance() == 0.0

    def test_merge_accumulates(self):
        a = NetworkStats(16, 2)
        b = NetworkStats(16, 2)
        a.buffer_writes = 5
        b.buffer_writes = 7
        a.record_move(3, 2)
        b.record_move(3, 4)
        b.record_delivery(packet(), 10)
        a.merge(b)
        assert a.buffer_writes == 12
        assert a.residence_cycles[3] == 6
        assert a.residence_count[3] == 2
        assert a.latency[PacketType.READ_REPLY].count == 1

    def test_snapshot_and_merge_carry_clamped(self):
        a = NetworkStats(16, 2)
        b = NetworkStats(16, 2)
        a.latency[PacketType.READ_REPLY].add(total=5, non_queuing=9)
        b.latency[PacketType.READ_REPLY].add(total=5, non_queuing=9)
        snap = a.snapshot()
        assert snap["latency"][PacketType.READ_REPLY.name][4] == 1
        assert "packets_created" in snap
        a.merge(b)
        assert a.latency[PacketType.READ_REPLY].clamped == 2
