"""Tests for the experiment harness: metrics, cache, runners."""

import pytest

from repro.harness import cache
from repro.harness.experiment import (
    ExperimentConfig,
    build_fabric,
    default_config,
    run_experiment,
    run_suite,
)
from repro.harness.metrics import (
    LatencyNs,
    format_table,
    geomean,
    mean,
    normalize,
    reduction_percent,
)


class TestMetrics:
    def test_normalize(self):
        values = {"a": 2.0, "b": 1.0, "base": 4.0}
        out = normalize(values, "base")
        assert out == {"a": 0.5, "b": 0.25, "base": 1.0}

    def test_normalize_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, "base")

    def test_normalize_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize({"base": 0.0}, "base")

    def test_mean_and_geomean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert geomean([1.0, 4.0]) == 2.0
        assert mean([]) == 0.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_reports_offending_values(self):
        # Regression: the error must name which inputs are broken so a
        # poisoned normalized sweep table is diagnosable at a glance.
        with pytest.raises(ValueError, match=r"2 non-positive of 3"):
            geomean([1.0, 0.0, -2.5])
        with pytest.raises(ValueError, match=r"\[1\]=0.0"):
            geomean([1.0, 0.0, -2.5])
        with pytest.raises(ValueError, match=r"\[2\]=-2.5"):
            geomean([1.0, 0.0, -2.5])

    def test_geomean_rejects_nan(self):
        with pytest.raises(ValueError, match="non-positive"):
            geomean([1.0, float("nan")])

    def test_reduction_percent(self):
        assert reduction_percent(100.0, 76.5) == pytest.approx(23.5)
        assert reduction_percent(0.0, 10.0) == 0.0

    def test_latency_ns_totals(self):
        lat = LatencyNs(1.0, 2.0, 3.0, 4.0)
        assert lat.request_total == 3.0
        assert lat.reply_total == 7.0
        assert lat.total == 10.0

    def test_format_table(self):
        table = format_table(("A", "Bee"), [("x", 1.0), ("yyy", 2.5)])
        lines = table.splitlines()
        assert lines[0].startswith("A")
        assert "1.000" in table
        assert len(lines) == 4


class TestCache:
    def test_equinox_design_cached(self):
        cache.clear()
        a = cache.equinox_design(8, 8, iterations_per_level=10, seed=0)
        b = cache.equinox_design(8, 8, iterations_per_level=10, seed=0)
        assert a is b
        cache.clear()
        c = cache.equinox_design(8, 8, iterations_per_level=10, seed=0)
        assert c is not a
        assert c.eir_design == a.eir_design  # deterministic rebuild

    def test_placement_cached(self):
        cache.clear()
        a = cache.placement("diamond", 8)
        b = cache.placement("diamond", 8)
        assert a is b


class TestExperiment:
    CFG = ExperimentConfig(quota=10, mcts_iterations=20)

    def test_default_config(self):
        cfg = default_config()
        assert cfg.width == 8
        assert cfg.num_cbs == 8

    def test_run_experiment_fields(self):
        result = run_experiment("SeparateBase", "hotspot", self.CFG)
        assert result.scheme == "SeparateBase"
        assert result.benchmark == "hotspot"
        assert result.cycles > 0
        assert result.instructions == 10 * 56
        assert result.energy_nj > 0
        assert result.area_mm2 > 0
        assert result.edp == pytest.approx(
            result.energy_nj * result.execution_ns
        )

    def test_reply_bits_dominate(self):
        """The paper's 72.7% reply-bit share, approximately."""
        result = run_experiment("SeparateBase", "kmeans", self.CFG)
        assert 0.6 < result.reply_bits_fraction < 0.9

    def test_latency_components_positive(self):
        result = run_experiment("SeparateBase", "kmeans", self.CFG)
        assert result.latency.request_non_queuing > 0
        assert result.latency.reply_non_queuing > 0

    def test_run_suite_grid(self):
        results = run_suite(
            ["SingleBase", "SeparateBase"], ["hotspot"], self.CFG
        )
        assert set(results) == {
            ("SingleBase", "hotspot"),
            ("SeparateBase", "hotspot"),
        }

    def test_build_fabric_equinox_uses_cached_design(self):
        fabric = build_fabric("EquiNox", self.CFG)
        assert fabric.equinox_design is cache.equinox_design(
            8, 8, iterations_per_level=20, seed=0
        )

    def test_experiment_deterministic(self):
        a = run_experiment("SingleBase", "hotspot", self.CFG)
        b = run_experiment("SingleBase", "hotspot", self.CFG)
        assert a.cycles == b.cycles
        assert a.energy_nj == pytest.approx(b.energy_nj)
