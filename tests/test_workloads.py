"""Tests for benchmark profiles and traffic generators."""

import pytest

from repro.core.grid import Grid
from repro.core.placement import by_name
from repro.workloads import (
    BENCHMARKS,
    RequestGenerator,
    WorkloadProfile,
    get,
    names,
    run_few_to_many,
    run_many_to_few,
    run_uniform,
    subset,
)


class TestProfiles:
    def test_twenty_nine_benchmarks(self):
        assert len(BENCHMARKS) == 29

    def test_suites(self):
        suites = {b.suite for b in BENCHMARKS}
        assert suites == {"rodinia", "cuda-sdk"}
        assert sum(1 for b in BENCHMARKS if b.suite == "rodinia") == 16

    def test_paper_mentioned_benchmarks_present(self):
        for name in ("kmeans", "heartwall", "monteCarlo", "particlefilter",
                     "fastWalshTransform", "scan", "sortingNetworks",
                     "gaussian", "myocyte"):
            assert get(name).name == name

    def test_names_unique(self):
        assert len(set(names())) == 29

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            get("crysis")

    def test_parameter_ranges_validated(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "t", 1.5, 0.5, 0.5, 0.5, 0.5)

    def test_scaled(self):
        base = get("kmeans")
        double = base.scaled(2.0)
        assert double.intensity == pytest.approx(min(1.0, base.intensity * 2))
        assert double.name == base.name

    def test_subset_spans_spectrum(self):
        small = subset(5)
        assert len(small) == 5
        intensities = [b.intensity for b in small]
        assert min(intensities) < 0.05
        assert max(intensities) >= 0.15

    def test_intensity_spread(self):
        """The suite must span compute-bound to memory-bound."""
        intensities = sorted(b.intensity for b in BENCHMARKS)
        assert intensities[0] < 0.025
        assert intensities[-1] >= 0.18

    def test_read_dominance(self):
        """GPU workloads read far more than they write (section 2.2)."""
        mean_reads = sum(b.read_fraction for b in BENCHMARKS) / 29
        assert mean_reads > 0.7


class TestGenerator:
    def _gen(self, **kwargs):
        profile = get("kmeans")
        if kwargs:
            from dataclasses import replace

            profile = replace(profile, **kwargs)
        return RequestGenerator(profile, 8, seed=1, pe_index=0)

    def test_deterministic(self):
        a = self._gen()
        b = self._gen()
        seq_a = [a.maybe_issue() for _ in range(500)]
        seq_b = [b.maybe_issue() for _ in range(500)]
        assert [
            (r.is_read, r.cb_index, r.row_hit) if r else None for r in seq_a
        ] == [
            (r.is_read, r.cb_index, r.row_hit) if r else None for r in seq_b
        ]

    def test_mean_rate_tracks_intensity(self):
        gen = self._gen(burstiness=0.0, intensity=0.2)
        issued = sum(1 for _ in range(20000) if gen.maybe_issue())
        assert issued / 20000 == pytest.approx(0.2, rel=0.15)

    def test_bursty_rate_still_tracks_intensity(self):
        gen = self._gen(burstiness=0.6, intensity=0.2)
        issued = sum(1 for _ in range(40000) if gen.maybe_issue())
        assert issued / 40000 == pytest.approx(0.2, rel=0.25)

    def test_cb_distribution_roughly_uniform(self):
        gen = self._gen(intensity=1.0, burstiness=0.0)
        counts = [0] * 8
        for _ in range(8000):
            req = gen.maybe_issue()
            if req:
                counts[req.cb_index] += 1
        total = sum(counts)
        for c in counts:
            assert c / total == pytest.approx(1 / 8, rel=0.3)

    def test_read_fraction(self):
        gen = self._gen(intensity=1.0, burstiness=0.0, read_fraction=0.9)
        reqs = [gen.maybe_issue() for _ in range(5000)]
        reads = sum(1 for r in reqs if r and r.is_read)
        total = sum(1 for r in reqs if r)
        assert reads / total == pytest.approx(0.9, abs=0.03)

    def test_different_pes_different_streams(self):
        profile = get("kmeans")
        a = RequestGenerator(profile, 8, seed=1, pe_index=0)
        b = RequestGenerator(profile, 8, seed=1, pe_index=1)
        seq_a = [bool(a.maybe_issue()) for _ in range(200)]
        seq_b = [bool(b.maybe_issue()) for _ in range(200)]
        assert seq_a != seq_b


class TestSynthetic:
    def test_uniform_delivers_everything(self):
        result = run_uniform(Grid(4), 0.05, cycles=300, seed=0)
        assert result.received == result.sent
        assert result.network.idle()

    def test_few_to_many_heat_concentrates_at_cbs(self):
        grid = Grid(8)
        cbs = by_name("top", grid, 8).nodes
        result = run_few_to_many(grid, cbs, injection_rate=0.4, cycles=800)
        heat = result.network.stats.heatmap()
        cb_heat = max(heat[list(cbs)])
        # Hot routers sit at/near the injection row.
        assert cb_heat >= heat.mean()
        assert result.heatmap_variance > 0

    def test_many_to_few_delivers(self):
        grid = Grid(8)
        cbs = by_name("diamond", grid, 8).nodes
        result = run_many_to_few(grid, cbs, injection_rate=0.03, cycles=400)
        assert result.received == result.sent

    def test_nqueen_variance_lower_than_top(self):
        """The Figure-4 headline: N-Queen balances traffic best."""
        grid = Grid(8)
        top = run_few_to_many(grid, by_name("top", grid, 8).nodes,
                              injection_rate=0.45, cycles=1200, seed=3)
        nq = run_few_to_many(grid, by_name("nqueen", grid, 8).nodes,
                             injection_rate=0.45, cycles=1200, seed=3)
        assert nq.heatmap_variance < top.heatmap_variance
