"""Tests for the text renderers."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.harness import cache
from repro.harness.render import design_map, heatmap_text, placement_map


class TestHeatmap:
    def test_shape_and_marks(self):
        grid = Grid(4)
        heat = np.arange(16, dtype=float)
        text = heatmap_text(heat, grid, marked=[0, 15])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith(" 0.00*")
        assert lines[3].rstrip().endswith("15.00*")

    def test_accepts_2d(self):
        grid = Grid(4)
        heat = np.zeros((4, 4))
        assert heatmap_text(heat, grid).count("\n") == 3

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            heatmap_text(np.zeros(9), Grid(4))


class TestDesignMap:
    def test_letters_match_groups(self):
        design = cache.equinox_design(8, 8, iterations_per_level=20, seed=0)
        text = design_map(design)
        grid_lines = text.splitlines()[:-1]
        assert len(grid_lines) == 8
        flat = "".join(grid_lines).replace(" ", "")
        # Eight CBs -> letters A..H present exactly once each.
        for letter in "ABCDEFGH":
            assert flat.count(letter) == 1
        # Lower-case EIR letters match the group sizes.
        for index, group in enumerate(design.eir_design.groups):
            letter = "ABCDEFGH"[index].lower()
            assert flat.count(letter) == len(group)

    def test_pe_tiles_dotted(self):
        design = cache.equinox_design(8, 8, iterations_per_level=20, seed=0)
        flat = "".join(design_map(design).splitlines()[:-1]).replace(" ", "")
        occupied = 8 + design.num_eirs
        assert flat.count(".") == 64 - occupied


class TestPlacementMap:
    def test_cb_count(self):
        grid = Grid(8)
        placement = cache.placement("diamond", 8).nodes
        text = placement_map(grid, placement)
        assert text.count("C") == 8
        assert text.count(".") == 56
