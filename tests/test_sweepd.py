"""The leased sweep service: workers, crashes, dead letters, the store.

The acceptance test for the whole distributed layer lives here: a
fleet with a worker SIGKILLed mid-cell must converge on a sweep whose
``stats_fingerprint``s are bit-identical to the serial runner's, with
the crash visible only as an extra delivery — never as a consumed
retry or a different seed.
"""

import multiprocessing
import signal
from dataclasses import asdict

import pytest

from repro.harness import runner, service
from repro.harness.bus import (
    DONE,
    REASON_RETRIES,
    BusPolicy,
    MemoryBus,
    SqliteBus,
)
from repro.harness.experiment import ExperimentConfig, config_digest
from repro.harness.runner import expand_grid, retry_seed, run_sweep
from repro.harness.service import (
    WorkerOptions,
    cell_from_payload,
    cell_payload,
    task_id_for,
    worker_loop,
)
from repro.harness.store import MemoryResultStore, make_record

CFG = ExperimentConfig(quota=8, mcts_iterations=10)
SCHEMES = ["SingleBase", "EquiNox"]
BENCHMARKS = ["hotspot"]


def _cells():
    return expand_grid(SCHEMES, BENCHMARKS, CFG)


_MEMO = {}


def _fake_result():
    """A real result to hand back from stubbed executions (memoised)."""
    if "result" not in _MEMO:
        _MEMO["result"] = run_sweep([_cells()[0]]).outcomes[0].result
    return _MEMO["result"]


class TestPayloads:
    def test_cell_roundtrip_preserves_digest(self):
        cell = _cells()[1]
        rebuilt = cell_from_payload(cell_payload(cell))
        assert rebuilt.scheme == cell.scheme
        assert rebuilt.benchmark == cell.benchmark
        assert config_digest(rebuilt.config) == config_digest(cell.config)

    def test_payload_validation(self):
        with pytest.raises(ValueError, match="schema"):
            cell_from_payload({"schema": 99})
        with pytest.raises(ValueError, match="scheme"):
            cell_from_payload({"schema": 1, "benchmark": "hotspot"})
        with pytest.raises(ValueError, match="unknown config"):
            cell_from_payload({
                "schema": 1, "scheme": "EquiNox", "benchmark": "hotspot",
                "config": {"bogus_knob": 1},
            })

    def test_task_ids_stable_and_greppable(self):
        cells = _cells()
        ids = [task_id_for(i, c) for i, c in enumerate(cells)]
        assert ids == [task_id_for(i, c) for i, c in enumerate(cells)]
        assert ids[0].startswith("00000-SingleBase-hotspot-")
        assert len(set(ids)) == len(ids)


class TestSubmitStatus:
    def test_submit_records_manifest_and_policy(self, tmp_path):
        bus = SqliteBus(tmp_path / "bus.sqlite",
                        policy=BusPolicy(retries=2, backoff_s=0.1))
        task_ids = service.submit(bus, _cells())
        assert len(task_ids) == len(_cells())
        # A later worker on another terminal adopts the recorded policy.
        reopened = service.open_submitted_bus(tmp_path / "bus.sqlite")
        assert reopened.policy == BusPolicy(retries=2, backoff_s=0.1)
        pairs = service.manifest_cells(reopened)
        assert [tid for tid, _cell in pairs] == task_ids
        assert [c.scheme for _tid, c in pairs] == SCHEMES
        snap = service.status(bus)
        assert snap["cells"] == len(task_ids)
        assert snap["counts"]["pending"] == len(task_ids)
        assert not snap["complete"]

    def test_manifest_required_for_collection(self):
        with pytest.raises(ValueError, match="manifest"):
            service.manifest_cells(MemoryBus())


class TestWorkerLoop:
    def test_drains_and_reports(self, monkeypatch):
        calls = []

        result = _fake_result()

        def fake(scheme, benchmark, config):
            calls.append((scheme, config.seed))
            return result

        monkeypatch.setattr(runner, "run_experiment", fake)
        bus = MemoryBus()
        service.submit(bus, _cells())
        terminal = []
        stats = worker_loop(bus, on_terminal=terminal.append)
        assert stats.executed == 2 and stats.acked == 2
        assert [r["state"] for r in terminal] == [DONE, DONE]
        assert bus.all_terminal()
        assert [s for s, _seed in calls] == SCHEMES

    def test_poison_cell_dead_letters_with_reseed_sequence(
        self, monkeypatch
    ):
        seeds = []

        result = _fake_result()

        def poisoned(scheme, benchmark, config):
            if scheme == "EquiNox":
                seeds.append(config.seed)
                raise RuntimeError("poison")
            return result

        monkeypatch.setattr(runner, "run_experiment", poisoned)
        bus = MemoryBus(policy=BusPolicy(retries=2, backoff_s=0.0))
        service.submit(bus, _cells())
        stats = worker_loop(bus)
        # Attempts 0..retries ran the serial runner's exact seed
        # schedule before the cell was isolated.
        assert seeds == [CFG.seed, retry_seed(CFG.seed, 1),
                         retry_seed(CFG.seed, 2)]
        assert stats.acked == 1 and stats.dead == 1
        (dead,) = bus.dead_letters()
        assert dead["dead_reason"] == REASON_RETRIES
        assert dead["error_type"] == "RuntimeError"
        assert "poison" in dead["error"]
        dump = service.dead_letter_dump(dead)
        assert "EquiNox x hotspot" in dump and "poison" in dump
        # The healthy cell completed: the poison pill is isolated, not
        # fatal to the sweep.
        assert bus.counts()["done"] == 1

    def test_store_hit_short_circuits_execution(self, monkeypatch):
        cells = _cells()
        real = run_sweep([cells[0]]).outcomes[0].result
        store = MemoryResultStore()
        store.put(make_record(cells[0].scheme, cells[0].benchmark,
                              cells[0].config, real, seed_used=CFG.seed))

        def must_not_run(scheme, benchmark, config):
            raise AssertionError("store hit must skip execution")

        monkeypatch.setattr(runner, "run_experiment", must_not_run)
        bus = MemoryBus()
        service.submit(bus, [cells[0]])
        stats = worker_loop(bus, store=store)
        assert stats.store_hits == 1 and stats.executed == 0
        record = bus.record(task_id_for(0, cells[0]))
        assert record["state"] == DONE
        assert record["result"]["stats_fingerprint"] == \
            real.stats_fingerprint

    def test_fresh_results_are_stored(self):
        store = MemoryResultStore()
        bus = MemoryBus()
        service.submit(bus, [_cells()[0]])
        worker_loop(bus, store=store)
        assert len(store) == 1
        (record,) = store.query(scheme="SingleBase")
        assert record["config_digest"] == config_digest(CFG)

    def test_chaos_env_validation(self, monkeypatch):
        monkeypatch.setenv(service.CHAOS_KILL_ENV, "not-a-number")
        with pytest.raises(ValueError, match=service.CHAOS_KILL_ENV):
            service._maybe_chaos_kill(0, WorkerOptions())


class TestOutcomes:
    def test_outcome_from_record_bit_identical(self):
        cells = _cells()
        serial = run_sweep(cells)
        bus = MemoryBus()
        service.submit(bus, cells)
        worker_loop(bus)
        for index, (cell, oracle) in enumerate(
            zip(cells, serial.outcomes)
        ):
            record = bus.record(task_id_for(index, cell))
            outcome = service.outcome_from_record(cell, record)
            assert outcome.ok
            assert outcome.result == oracle.result
            assert outcome.attempts == 1
            assert outcome.seed_used == oracle.seed_used

    def test_fingerprints_view(self):
        bus = MemoryBus()
        service.submit(bus, [_cells()[0]])
        worker_loop(bus)
        prints = service.fingerprints(bus)
        (value,) = prints.values()
        assert len(value) == 64  # sha256 hex


class TestFleetChaos:
    """Real processes, real SIGKILL, real lease recovery."""

    def test_sigkilled_worker_recovers_bit_identical(self, tmp_path):
        cells = _cells()
        serial = run_sweep(cells)  # oracle (also warms the disk cache)
        oracle = {
            task_id_for(i, c): o.result.stats_fingerprint
            for i, (c, o) in enumerate(zip(cells, serial.outcomes))
        }

        bus_path = str(tmp_path / "bus.sqlite")
        policy = BusPolicy(retries=0, backoff_s=0.0, redelivery_limit=3)
        bus = SqliteBus(bus_path, policy=policy)
        task_ids = service.submit(bus, cells)

        # A worker that SIGKILLs itself right after taking its first
        # lease: the bus sees a leased task and a silent worker.
        chaos_options = WorkerOptions(lease_s=1.0, heartbeat_s=0.2,
                                      chaos_kill_after=1)
        chaos = multiprocessing.Process(
            target=service._worker_process_entry,
            args=(bus_path, asdict(policy), None, "chaos",
                  asdict(chaos_options)),
        )
        chaos.start()
        chaos.join(timeout=60)
        assert chaos.exitcode == -signal.SIGKILL

        # The dead worker holds task 0's lease; a clean worker must
        # wait out the lease, expire it, and re-run the same attempt.
        victim = bus.record(task_ids[0])
        assert victim["state"] == "leased"
        stats = worker_loop(
            bus, worker_id="clean",
            options=WorkerOptions(lease_s=1.0, heartbeat_s=0.2,
                                  poll_s=0.05),
        )
        assert stats.executed == len(cells) and stats.acked == len(cells)
        assert bus.all_terminal() and bus.counts()["done"] == len(cells)

        # The crash consumed a delivery, never a retry: same seed, and
        # the fleet's fingerprints are byte-identical to serial.
        victim = bus.record(task_ids[0])
        assert victim["deliveries"] == 2 and victim["failures"] == 0
        assert victim["seed_used"] == CFG.seed
        assert service.fingerprints(bus) == oracle
        snap = service.status(bus)
        assert snap["complete"] and snap["dead_letters"] == []


class TestRunSweepIntegration:
    def test_run_sweep_uses_store(self, monkeypatch):
        cells = _cells()
        store = MemoryResultStore()
        first = run_sweep(cells, store=store)
        assert len(store) == len(cells)

        def must_not_run(scheme, benchmark, config):
            raise AssertionError("second sweep must come from the store")

        monkeypatch.setattr(runner, "run_experiment", must_not_run)
        second = run_sweep(cells, store=store)
        for before, after in zip(first.outcomes, second.outcomes):
            assert after.ok
            assert after.result == before.result  # bit-identical replay

    def test_fleet_matches_serial(self):
        cells = _cells()
        serial = run_sweep(cells)
        fleet = run_sweep(cells, jobs=2)
        for a, b in zip(serial.outcomes, fleet.outcomes):
            assert b.ok
            assert (a.result.stats_fingerprint
                    == b.result.stats_fingerprint)
