"""End-to-end integration tests: the paper's headline shapes at small scale.

These run the same pipeline as the figure benchmarks but with smaller
quotas so the whole file stays under a couple of minutes.  The full
reproduction lives in benchmarks/.
"""

import pytest

from repro.harness import cache
from repro.harness.experiment import ExperimentConfig, run_experiment

CFG = ExperimentConfig(quota=50, mcts_iterations=40)


@pytest.fixture(scope="module")
def headline():
    """SingleBase / SeparateBase / EquiNox on a memory-bound benchmark."""
    return {
        name: run_experiment(name, "kmeans", CFG)
        for name in ("SingleBase", "SeparateBase", "EquiNox")
    }


class TestHeadline:
    def test_execution_time_ordering(self, headline):
        """EquiNox < SeparateBase < SingleBase on memory-bound work."""
        assert headline["EquiNox"].cycles < headline["SeparateBase"].cycles
        assert headline["SeparateBase"].cycles < headline["SingleBase"].cycles

    def test_equinox_gain_is_substantial(self, headline):
        reduction = 1 - headline["EquiNox"].cycles / headline["SingleBase"].cycles
        assert reduction > 0.20  # paper: 47.7% suite-wide, more on kmeans

    def test_edp_ordering(self, headline):
        assert headline["EquiNox"].edp < headline["SeparateBase"].edp
        assert headline["EquiNox"].edp < headline["SingleBase"].edp

    def test_energy_equinox_below_separate(self, headline):
        assert headline["EquiNox"].energy_nj < headline["SeparateBase"].energy_nj

    def test_reply_bits_near_paper(self, headline):
        """Paper: replies carry 72.7% of NoC bits."""
        for result in headline.values():
            assert 0.6 < result.reply_bits_fraction < 0.9

    def test_request_latency_dominates(self, headline):
        """Backpressure: request latency > reply latency (section 6.4)."""
        lat = headline["SeparateBase"].latency
        assert lat.request_total > lat.reply_total

    def test_equinox_cuts_request_queuing(self, headline):
        assert (
            headline["EquiNox"].latency.request_queuing
            < headline["SingleBase"].latency.request_queuing
        )


class TestComputeBound:
    def test_gaussian_insensitive_to_scheme(self):
        """Compute-bound benchmarks barely react (paper's gaussian)."""
        single = run_experiment("SingleBase", "gaussian", CFG)
        equinox = run_experiment("EquiNox", "gaussian", CFG)
        assert abs(equinox.cycles - single.cycles) / single.cycles < 0.10


class TestDesignArtifacts:
    def test_equinox_design_physical_viability(self):
        design = cache.equinox_design(8, 8, iterations_per_level=40, seed=0)
        assert design.rdl_plan.num_layers <= 2
        # All EIRs within the 3-hop constraint, none at distance < 2.
        for cb, e in design.eir_design.links():
            assert 2 <= design.grid.hops(cb, e) <= 3

    def test_scalability_designs_exist(self):
        """The 12x12 flow completes and yields a valid design."""
        design = cache.equinox_design(12, 8, iterations_per_level=10, seed=0)
        assert len(design.eir_design.groups) == 8
        assert design.num_eirs > 0
