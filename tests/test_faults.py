"""Fault injection: spec validation, quarantine semantics, degradation.

Covers the three layers of the fault subsystem:

* declarative layer — :class:`FaultSpec` / :class:`FaultPlan` JSON
  round-tripping and validation;
* mechanism layer — NI-buffer quarantine (idle / untransmitted /
  mid-wormhole), link fail-stop and transient healing, audited with
  the conservation checker at every step;
* system layer — end-to-end degradation: EquiNox survives losing EIR
  links with monotonically degrading throughput while the dropped-flit
  ledger keeps every audit green, and an armed-but-never-firing plan
  is bit-identical to an unarmed run.
"""

import json

import pytest

from repro.core.eir import EirDesign, make_group
from repro.core.grid import Grid
from repro.harness import cache
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.noc import EquiNoxInterface, Network, Packet, PacketType
from repro.noc.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    eir_link_faults,
    faults_from_env,
    parse_faults_arg,
    random_injection_faults,
)
from repro.noc.validation import assert_healthy

QUICK = ExperimentConfig(quota=10, mcts_iterations=10, validate=64)


# ----------------------------------------------------------------------
# Declarative layer
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gamma_ray")

    def test_unknown_net_rejected(self):
        with pytest.raises(ValueError, match="net role"):
            FaultSpec(kind="ni_buffer", node=0, buffer=0, net="sideband")

    def test_heal_must_follow_fail(self):
        with pytest.raises(ValueError, match="heal_cycle"):
            FaultSpec(kind="ni_buffer", node=0, buffer=0,
                      at_cycle=100, heal_cycle=100)

    def test_required_fields_per_kind(self):
        with pytest.raises(ValueError, match="node and buffer"):
            FaultSpec(kind="ni_buffer", node=3)
        with pytest.raises(ValueError, match="node and peer"):
            FaultSpec(kind="mesh_link", node=3)
        with pytest.raises(ValueError, match="node and port"):
            FaultSpec(kind="router_port", port=1)

    def test_eir_link_wildcard_is_all_or_nothing(self):
        FaultSpec(kind="eir_link")  # full wildcard: fine
        FaultSpec(kind="eir_link", node=1, peer=2)  # explicit: fine
        with pytest.raises(ValueError, match="wildcard"):
            FaultSpec(kind="eir_link", node=1)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"kind": "eir_link", "sector": 7})
        with pytest.raises(ValueError, match="missing 'kind'"):
            FaultSpec.from_dict({"node": 0})


class TestFaultPlan:
    PLAN = FaultPlan((
        FaultSpec(kind="eir_link", node=27, peer=29, at_cycle=100),
        FaultSpec(kind="ni_buffer", node=27, buffer=0,
                  at_cycle=200, heal_cycle=400, net="any"),
        FaultSpec(kind="mesh_link", node=1, peer=2, at_cycle=50),
    ))

    def test_json_round_trip(self):
        assert FaultPlan.from_json(self.PLAN.to_json()) == self.PLAN

    def test_bare_list_accepted(self):
        text = json.dumps([{"kind": "eir_link", "at_cycle": 5}])
        plan = FaultPlan.from_json(text)
        assert plan.faults == (FaultSpec(kind="eir_link", at_cycle=5),)

    def test_file_round_trip(self, tmp_path):
        path = self.PLAN.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == self.PLAN

    def test_load_names_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="broken.json"):
            FaultPlan.load(path)
        with pytest.raises(ValueError, match="missing.json"):
            FaultPlan.load(tmp_path / "missing.json")

    def test_parse_faults_arg_inline_and_path(self, tmp_path):
        inline = parse_faults_arg('[{"kind": "eir_link"}]')
        assert inline == (FaultSpec(kind="eir_link"),)
        path = self.PLAN.save(tmp_path / "plan.json")
        assert parse_faults_arg(str(path)) == self.PLAN.faults
        assert parse_faults_arg("") == ()

    def test_faults_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", '[{"kind": "eir_link"}]')
        assert faults_from_env() == (FaultSpec(kind="eir_link"),)
        monkeypatch.delenv("REPRO_FAULTS")
        assert faults_from_env() == ()


# ----------------------------------------------------------------------
# Mechanism layer: one NI on one network
# ----------------------------------------------------------------------
class _OneNetFabric:
    """Minimal fabric stand-in: one network playing every role."""

    def __init__(self, net):
        self.net = net

    def networks_by_role(self, role):
        return [self.net]


def make_net(width=8, **kwargs):
    kwargs.setdefault("flit_bytes", 16)
    kwargs.setdefault("vc_classes", [(0, 1)])
    return Network("t", Grid(width), **kwargs)


def reply(pid, src, dst, size=5):
    return Packet(pid, PacketType.READ_REPLY, src, dst, size, 0, vc_class=0)


def drain(net, nodes, cycles=2000, injector=None):
    out = []
    for _ in range(cycles):
        if injector is not None:
            injector.on_cycle(net.cycle + 1)
        net.tick()
        assert_healthy(net)
        for n in nodes:
            while True:
                p = net.pop_delivered(n)
                if p is None:
                    break
                out.append(p)
        if net.idle():
            break
    return out


def build_equinox_ni(net):
    grid = net.grid
    cb = grid.node(3, 3)
    groups = (
        make_group(
            cb,
            {
                (1, 0): grid.node(5, 3),
                (-1, 0): grid.node(1, 3),
                (0, 1): grid.node(3, 5),
                (0, -1): grid.node(3, 1),
            },
        ),
    )
    design = EirDesign(grid=grid, placement=(cb,), groups=groups)
    return EquiNoxInterface(net, cb, design), cb


class TestBufferQuarantine:
    def test_idle_buffer_quarantined_and_bypassed(self):
        net = make_net()
        ni, cb = build_equinox_ni(net)
        east_eir = net.grid.node(5, 3)
        injector = FaultInjector(
            _OneNetFabric(net),
            FaultPlan((FaultSpec(kind="eir_link", node=cb, peer=east_eir,
                                 at_cycle=1),)),
        )
        injector.on_cycle(1)
        failed = ni.buffers[ni._eir_buffer[east_eir]]
        assert failed.failed and not failed.available
        assert injector.summary()["applied"] == 1
        # Traffic for the east EIR's quadrant still flows via survivors.
        dst = net.grid.node(7, 3)
        for pid in range(4):
            ni.enqueue(reply(pid + 1, cb, dst))
        received = drain(net, [dst], injector=injector)
        assert len(received) == 4
        assert all(p.inject_router != east_eir for p in received)

    def test_mid_stream_failure_keeps_audits_green(self):
        """Fail a busy EIR buffer: ledger balances, packets survive."""
        net = make_net()
        ni, cb = build_equinox_ni(net)
        east_eir = net.grid.node(5, 3)
        dst = net.grid.node(7, 3)
        for pid in range(6):
            ni.enqueue(reply(pid + 1, cb, dst))
        injector = FaultInjector(
            _OneNetFabric(net),
            FaultPlan((FaultSpec(kind="eir_link", node=cb, peer=east_eir,
                                 at_cycle=4),)),
        )
        received = drain(net, [dst], injector=injector)
        assert len(received) == 6  # every packet still arrives
        # Quarantine is complete: buffer failed, emptied, VC released.
        # (Conservation was asserted after every cycle inside drain.)
        failed = ni.buffers[ni._eir_buffer[east_eir]]
        assert failed.failed
        assert not failed.flits and failed.cur_vc is None

    def test_all_eirs_down_falls_back_to_local(self):
        """With every EIR link failed, the NI is a single-injection NI."""
        net = make_net()
        ni, cb = build_equinox_ni(net)
        specs = tuple(
            FaultSpec(kind="eir_link", node=cb, peer=eir, at_cycle=1)
            for eir in ni._eir_buffer
        )
        injector = FaultInjector(_OneNetFabric(net), FaultPlan(specs))
        injector.on_cycle(1)
        dst = net.grid.node(7, 7)
        for pid in range(5):
            ni.enqueue(reply(pid + 1, cb, dst))
        received = drain(net, [dst], injector=injector)
        assert len(received) == 5
        assert all(p.inject_router == cb for p in received)

    def test_transient_fault_heals(self):
        net = make_net()
        ni, cb = build_equinox_ni(net)
        east_eir = net.grid.node(5, 3)
        idx = ni._eir_buffer[east_eir]
        injector = FaultInjector(
            _OneNetFabric(net),
            FaultPlan((FaultSpec(kind="eir_link", node=cb, peer=east_eir,
                                 at_cycle=1, heal_cycle=5),)),
        )
        injector.on_cycle(1)
        assert ni.buffers[idx].failed
        injector.on_cycle(5)
        assert not ni.buffers[idx].failed
        assert injector.summary()["healed"] == 1
        dst = net.grid.node(7, 3)
        for pid in range(3):
            ni.enqueue(reply(pid + 1, cb, dst))
        received = drain(net, [dst], injector=injector)
        assert len(received) == 3
        # The healed east EIR serves its axis destination again.
        assert any(p.inject_router == east_eir for p in received)

    def test_unmatched_specs_are_recorded_not_fatal(self):
        net = make_net()
        build_equinox_ni(net)
        spec = FaultSpec(kind="ni_buffer", node=62, buffer=0)
        injector = FaultInjector(_OneNetFabric(net), FaultPlan((spec,)))
        assert injector.unmatched == [spec]
        with pytest.raises(ValueError, match="matched nothing"):
            FaultInjector(_OneNetFabric(net), FaultPlan((spec,)),
                          strict=True)


# ----------------------------------------------------------------------
# System layer: end-to-end degradation
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_armed_plan_is_bit_identical(self):
        base = run_experiment("EquiNox", "hotspot", QUICK)
        armed = run_experiment(
            "EquiNox", "hotspot",
            ExperimentConfig(
                quota=QUICK.quota, mcts_iterations=QUICK.mcts_iterations,
                validate=QUICK.validate,
                faults=(FaultSpec(kind="mesh_link", node=0, peer=1,
                                  at_cycle=10 ** 9, net="any"),),
            ),
        )
        assert armed.stats_fingerprint == base.stats_fingerprint
        assert armed.cycles == base.cycles
        assert armed.flits_dropped == 0

    def test_heal_immediately_plan_is_bit_identical(self):
        """Specs that fire at cycle 0 and heal before any traffic moves
        must leave the run bit-identical to having no plan at all."""
        base = run_experiment("EquiNox", "hotspot", QUICK)
        healed = run_experiment(
            "EquiNox", "hotspot",
            ExperimentConfig(
                quota=QUICK.quota, mcts_iterations=QUICK.mcts_iterations,
                validate=QUICK.validate,
                faults=(
                    FaultSpec(kind="mesh_link", node=0, peer=1,
                              at_cycle=0, heal_cycle=1, net="any"),
                    FaultSpec(kind="eir_link", at_cycle=0, heal_cycle=1),
                    FaultSpec(kind="router_port", node=0, port=0,
                              at_cycle=0, heal_cycle=1, net="any"),
                ),
            ),
        )
        assert healed.stats_fingerprint == base.stats_fingerprint
        assert healed.cycles == base.cycles
        assert healed.flits_dropped == 0

    def test_eir_link_degradation_monotonic_never_zero(self):
        """Losing 1..4 EIR links per CB degrades but never kills EquiNox."""
        design = cache.equinox_design(
            8, 8, iterations_per_level=QUICK.mcts_iterations, seed=0
        )
        base = run_experiment("EquiNox", "hotspot", QUICK)
        cycles = [base.cycles]
        for k in (1, 2, 3, 4):
            specs = eir_link_faults(design.eir_design, k, at_cycle=100)
            result = run_experiment(
                "EquiNox", "hotspot",
                ExperimentConfig(
                    quota=QUICK.quota,
                    mcts_iterations=QUICK.mcts_iterations,
                    validate=QUICK.validate, faults=specs,
                ),
            )
            assert result.ipc > 0
            assert result.instructions == base.instructions
            cycles.append(result.cycles)
        # Monotonic degradation (ties allowed: light load may absorb a
        # lost link entirely).
        assert cycles == sorted(cycles)
        assert cycles[-1] > cycles[0]

    def test_mesh_link_fault_routes_around(self):
        result = run_experiment(
            "EquiNox", "hotspot",
            ExperimentConfig(
                quota=QUICK.quota, mcts_iterations=QUICK.mcts_iterations,
                validate=QUICK.validate,
                faults=(
                    FaultSpec(kind="mesh_link", node=27, peer=28,
                              at_cycle=50, net="any"),
                    FaultSpec(kind="router_port", node=35, port=0,
                              at_cycle=50, net="any"),
                ),
            ),
        )
        assert result.ipc > 0

    def test_env_plan_applies(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '[{"kind": "eir_link", "at_cycle": 100},'
            ' {"kind": "eir_link", "at_cycle": 100}]',
        )
        result = run_experiment("EquiNox", "hotspot", QUICK)
        assert result.ipc > 0

    def test_random_fault_schedules_conserve(self):
        """Property-style: seeded random fault schedules, audits on."""
        design = cache.equinox_design(
            8, 8, iterations_per_level=QUICK.mcts_iterations, seed=0
        )
        for seed in (1, 2, 3):
            specs = random_injection_faults(
                seed, design.eir_design, num_faults=4,
                fire_window=(50, 400), heal_after=(50, 200),
            )
            for scheme in ("EquiNox", "SeparateBase"):
                result = run_experiment(
                    scheme, "hotspot",
                    ExperimentConfig(
                        quota=QUICK.quota,
                        mcts_iterations=QUICK.mcts_iterations,
                        validate=32, faults=specs,
                    ),
                )
                # validate=32 audits (incl. the dropped-flit ledger)
                # every 32 cycles; reaching here means all were green.
                assert result.ipc > 0
