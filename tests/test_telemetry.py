"""Tests for the telemetry subsystem and the bench regression gate.

The load-bearing contracts:

* probes are read-only — a telemetry-enabled run keeps the exact same
  ``stats_fingerprint`` as a disabled one (differential);
* exports are deterministic — serial, parallel and cache-warm runs of
  one sweep produce byte-identical JSONL artifacts;
* the disabled path is (near) free — the harness carries ``None`` and
  ``NullTelemetry`` records nothing;
* ``compare_bench`` fails on checksum drift and throughput collapse,
  and only on those.
"""

import json

import pytest

from repro.harness.bench import (
    checksum_divergence,
    compare_bench,
    format_bench,
    load_bench,
    run_scenario,
    write_bench,
)
from repro.harness.experiment import (
    ExperimentConfig,
    config_digest,
    run_experiment,
    run_suite,
)
from repro.telemetry import (
    DEFAULT_INTERVAL,
    NULL_TELEMETRY,
    NullTelemetry,
    SeriesSampler,
    TelemetryRegistry,
    aggregate_sweep,
    dumps_record,
    experiment_filename,
    interval_from_env,
    read_jsonl,
    resolve_interval,
    summarize_record,
    sweep_filename,
    sweep_records,
    write_json,
    write_jsonl,
)

CFG = ExperimentConfig(quota=8, mcts_iterations=10)
CFG_TEL = ExperimentConfig(quota=8, mcts_iterations=10, telemetry=25)


class TestIntervals:
    def test_resolve_interval_convention(self):
        assert resolve_interval(0) == 0
        assert resolve_interval(-3) == 0
        assert resolve_interval(1) == DEFAULT_INTERVAL
        assert resolve_interval(64) == 64

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert interval_from_env() == 0
        monkeypatch.setenv("REPRO_TELEMETRY", "64")
        assert interval_from_env() == 64
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert interval_from_env() == DEFAULT_INTERVAL
        monkeypatch.setenv("REPRO_TELEMETRY", "garbage")
        assert interval_from_env() == 0

    def test_registry_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TelemetryRegistry(interval=0)


class TestRegistry:
    def test_series_windowing_evicts_oldest(self):
        sampler = SeriesSampler("x", lambda: 1.0, window=3)
        for cycle in (10, 20, 30, 40):
            sampler.sample(cycle)
        assert sampler.export()["cycles"] == [20, 30, 40]

    def test_series_samples_callable(self):
        state = {"v": 0}
        reg = TelemetryRegistry(interval=10)
        reg.register_series("v", lambda: state["v"])
        state["v"] = 5
        reg.sample(10)
        state["v"] = 7
        reg.sample(20)
        out = reg.export()["series"]["v"]
        assert out == {"cycles": [10, 20], "values": [5, 7]}

    def test_same_cycle_sample_deduplicated(self):
        reg = TelemetryRegistry(interval=10)
        reg.register_series("one", lambda: 1)
        reg.sample(10)
        reg.sample(10)
        assert reg.samples == 1
        assert reg.export()["series"]["one"]["cycles"] == [10]

    def test_residency_counts_membership(self):
        members = [0, 2]
        reg = TelemetryRegistry(interval=10)
        reg.register_residency("r", 4, lambda: members)
        reg.sample(10)
        members = [2]
        reg.sample(20)
        out = reg.export()["residency"]["r"]
        assert out == {"samples": 2, "counts": [1, 0, 2, 0]}

    def test_finals_evaluated_at_export(self):
        state = {"v": 0}
        reg = TelemetryRegistry(interval=10)
        reg.register_final("total", lambda: state["v"])
        state["v"] = 42
        assert reg.export()["counters"]["total"] == 42

    def test_null_telemetry_records_nothing(self):
        null = NullTelemetry()
        assert not null.enabled
        assert null.register_series("x", lambda: 1) is None
        null.sample(10)
        assert not null.due(10)
        assert null.export()["samples"] == 0
        assert NULL_TELEMETRY.export()["series"] == {}


class TestExperimentIntegration:
    def test_telemetry_off_by_default(self):
        result = run_experiment("SingleBase", "hotspot", CFG)
        assert result.telemetry is None

    def test_fingerprint_identical_with_telemetry(self):
        off = run_experiment("SingleBase", "hotspot", CFG)
        on = run_experiment("SingleBase", "hotspot", CFG_TEL)
        assert on.stats_fingerprint == off.stats_fingerprint
        assert on.cycles == off.cycles
        assert on.instructions == off.instructions
        assert on.telemetry is not None

    def test_record_shape_and_keying(self):
        result = run_experiment("SingleBase", "hotspot", CFG_TEL)
        record = result.telemetry
        assert record["schema"] == 1
        assert record["kind"] == "experiment"
        assert record["scheme"] == "SingleBase"
        assert record["benchmark"] == "hotspot"
        assert record["config_digest"] == config_digest(CFG_TEL)
        assert record["stats_fingerprint"] == result.stats_fingerprint
        assert record["interval"] == 25
        assert record["samples"] > 0
        assert record["counters"]["system.cycles"] == result.cycles
        # every network contributes series + residency probes
        assert any(k.endswith(".in_flight") for k in record["series"])
        assert any(
            k.endswith(".router_active") for k in record["residency"]
        )

    def test_env_var_enables_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "50")
        result = run_experiment("SingleBase", "hotspot", CFG)
        assert result.telemetry is not None
        assert result.telemetry["interval"] == 50

    def test_equinox_exports_per_eir_counters(self):
        result = run_experiment(
            "EquiNox", "hotspot",
            ExperimentConfig(quota=8, mcts_iterations=10, telemetry=25),
        )
        counters = result.telemetry["counters"]
        eir = [k for k in counters
               if k.startswith("eir.") and k.endswith(".flits_sent")]
        assert eir, "EquiNox run exported no per-EIR flit counters"
        assert sum(counters[k] for k in eir) > 0


class TestExportDeterminism:
    def _sweep(self, jobs):
        results = run_suite(
            ["SingleBase", "SeparateBase"], ["hotspot"], CFG_TEL,
            jobs=jobs,
        )
        records = [
            results[key].telemetry for key in sorted(results)
        ]
        return [dumps_record(r) for r in records]

    def test_serial_parallel_cachewarm_byte_identical(self):
        serial = self._sweep(jobs=1)
        parallel = self._sweep(jobs=2)
        warm = self._sweep(jobs=1)  # design cache now warm on disk
        assert serial == parallel == warm

    def test_jsonl_round_trip(self, tmp_path):
        records = [
            {"schema": 1, "kind": "experiment", "value": 0.1},
            {"schema": 1, "kind": "experiment", "value": 3},
        ]
        path = write_jsonl(tmp_path / "t.jsonl", records)
        assert read_jsonl(path) == records
        # canonical form: sorted keys, compact, one line per record
        first = path.read_text().splitlines()[0]
        assert first == dumps_record(records[0])
        assert json.loads(first) == records[0]

    def test_write_json_round_trip(self, tmp_path):
        record = {"b": 2, "a": [1.5, 2.5]}
        path = write_json(tmp_path / "sub" / "r.json", record)
        assert json.loads(path.read_text()) == record

    def test_filenames_carry_digest(self):
        assert experiment_filename("EquiNox", "kmeans", "abc") == (
            "run-EquiNox-kmeans-abc.json"
        )
        assert sweep_filename("abc") == "sweep-abc.jsonl"

    def test_config_digest_sensitive_to_knobs(self):
        assert config_digest(CFG) != config_digest(CFG_TEL)
        assert config_digest(CFG) == config_digest(
            ExperimentConfig(quota=8, mcts_iterations=10)
        )


class TestAggregation:
    def test_summarize_and_aggregate(self):
        result = run_experiment("SingleBase", "hotspot", CFG_TEL)
        row = summarize_record(result.telemetry)
        assert row["scheme"] == "SingleBase"
        assert row["flits_injected"] > 0
        assert row["packets_delivered"] > 0
        summary = aggregate_sweep([result.telemetry], "digest")
        assert summary["kind"] == "sweep_summary"
        assert summary["cells"] == [row]
        assert summary["total_flits_injected"] == row["flits_injected"]

    def test_sweep_records_layout(self):
        cell = {"schema": 1, "kind": "experiment", "counters": {},
                "samples": 0}
        lines = sweep_records([cell], "9.9.9", "d1")
        assert lines[0]["kind"] == "sweep"
        assert lines[0]["version"] == "9.9.9"
        assert lines[0]["cells"] == 1
        assert lines[1] is cell
        assert lines[-1]["kind"] == "sweep_summary"

    def test_sweep_report_telemetry_accessors(self):
        from repro.harness.runner import expand_grid, run_sweep

        report = run_sweep(
            expand_grid(["SingleBase"], ["hotspot"], CFG_TEL), jobs=1
        )
        records = report.telemetry_records()
        assert len(records) == 1
        summary = report.telemetry_summary("d2")
        assert summary["config_digest"] == "d2"
        assert len(summary["cells"]) == 1


def _bench_payload(rate, checksum="aaa", schema=None):
    from repro.harness.bench import BENCH_SCHEMA

    return {
        "schema": BENCH_SCHEMA if schema is None else schema,
        "scenarios": {
            "synthetic": {
                "cycles": 4000,
                "seconds": 4000 / rate,
                "cycles_per_s": rate,
                "checksum": checksum,
                "received": 10,
            },
        },
    }


class TestBenchGate:
    def test_passes_within_tolerance(self):
        base = _bench_payload(1000.0)
        assert compare_bench(_bench_payload(900.0), base, 0.25) == []
        # speedups never fail
        assert compare_bench(_bench_payload(5000.0), base, 0.25) == []

    def test_fails_on_slowdown_past_tolerance(self):
        base = _bench_payload(1000.0)
        violations = compare_bench(_bench_payload(700.0), base, 0.25)
        assert len(violations) == 1
        assert "cycles/s" in violations[0]

    def test_fails_on_checksum_change_regardless_of_speed(self):
        base = _bench_payload(1000.0)
        fast_but_wrong = _bench_payload(5000.0, checksum="bbb")
        violations = compare_bench(fast_but_wrong, base, 0.25)
        assert len(violations) == 1
        assert "checksum" in violations[0]

    def test_calibration_scales_expected_throughput(self):
        # baseline machine: cal 1.0s; current machine 2x slower (cal
        # 2.0s) -> expected throughput halves, so 0.6x absolute passes
        base = dict(_bench_payload(1000.0), calibration_s=1.0)
        slow_box = dict(_bench_payload(600.0), calibration_s=2.0)
        assert compare_bench(slow_box, base, 0.25) == []
        # a real regression on the slow box still fails: expected 500,
        # floor 375, measured 300
        regressed = dict(_bench_payload(300.0), calibration_s=2.0)
        violations = compare_bench(regressed, base, 0.25)
        assert len(violations) == 1
        assert "speed-adjusted" in violations[0]
        # records without calibration fall back to absolute comparison
        assert compare_bench(_bench_payload(600.0), base, 0.25) != []

    def test_fails_on_missing_scenario(self):
        base = _bench_payload(1000.0)
        current = {"schema": 1, "scenarios": {}}
        violations = compare_bench(current, base, 0.25)
        assert violations == ["synthetic: missing from current run"]

    def test_empty_baseline_never_passes_vacuously(self):
        # An empty or malformed baseline compares zero scenarios, which
        # used to return no violations at all — the gate passed while
        # gating nothing.
        from repro.harness.bench import BENCH_SCHEMA

        current = _bench_payload(1000.0)
        for bad in (
            {"schema": BENCH_SCHEMA},                         # no key
            dict(_bench_payload(1000.0), scenarios={}),       # empty
            dict(_bench_payload(1000.0), scenarios="oops"),   # wrong type
        ):
            violations = compare_bench(current, bad, 0.25)
            assert any("vacuously" in v for v in violations), bad

    def test_fails_on_baseline_schema_mismatch(self):
        current = _bench_payload(1000.0)
        stale = _bench_payload(1000.0, schema=1)
        violations = compare_bench(current, stale, 0.25)
        assert any("schema" in v for v in violations)
        # the scenario rows are still compared (no silent skip)
        assert not any("missing" in v for v in violations)

    def test_uncalibrated_comparison_is_explicit(self):
        # calibration_s missing (or zero) on either side: the gate
        # still compares, but the violation text says the comparison
        # ran uncalibrated and names the record at fault.
        base_cal = dict(_bench_payload(1000.0), calibration_s=1.0)
        cur_nocal = _bench_payload(600.0)
        violations = compare_bench(cur_nocal, base_cal, 0.25)
        assert len(violations) == 1
        assert "UNCALIBRATED" in violations[0]
        assert "current" in violations[0]

        base_nocal = dict(_bench_payload(1000.0), calibration_s=0.0)
        cur_cal = dict(_bench_payload(600.0), calibration_s=1.0)
        violations = compare_bench(cur_cal, base_nocal, 0.25)
        assert len(violations) == 1
        assert "UNCALIBRATED" in violations[0]
        assert "baseline" in violations[0]

    def test_engine_checksum_divergence_fails_gate(self):
        from repro.harness.bench import engine_violations

        rows = {
            "synthetic": {"checksum": "aaa", "cycles_per_s": 100.0},
            "synthetic_vector": {"checksum": "aaa",
                                 "cycles_per_s": 400.0},
        }
        assert engine_violations(rows) == []
        rows["synthetic_vector"]["checksum"] = "bbb"
        violations = engine_violations(rows)
        assert len(violations) == 1
        assert "engine-parity" in violations[0]
        # compare_bench surfaces the same divergence
        current = dict(_bench_payload(1000.0), scenarios=rows)
        base = _bench_payload(1000.0, checksum="aaa")
        assert any("engine-parity" in v
                   for v in compare_bench(current, base, 0.25))

    def test_engine_speedup_floor(self):
        from repro.harness.bench import engine_violations

        rows = {
            "synthetic": {"checksum": "aaa", "cycles_per_s": 100.0},
            "synthetic_vector": {"checksum": "aaa",
                                 "cycles_per_s": 250.0},
        }
        violations = engine_violations(rows, min_speedup=3.0)
        assert len(violations) == 1
        assert "below the 3.0x floor" in violations[0]
        assert engine_violations(rows, min_speedup=2.0) == []

    def test_checksum_divergence_helper(self):
        rows = {"dense": {"checksum": "a"}, "active": {"checksum": "a"}}
        assert checksum_divergence(rows) is None
        rows["active"] = {"checksum": "b"}
        assert checksum_divergence(rows) == ("a", "b")
        assert checksum_divergence({"dense": {"checksum": "a"}}) is None

    def test_write_load_format_round_trip(self, tmp_path):
        data = _bench_payload(1000.0)
        path = write_bench(tmp_path / "BENCH.json", data)
        assert load_bench(path) == data
        text = format_bench(data, baseline=data)
        assert "synthetic" in text and "1.00x baseline" in text


class TestBenchScenarios:
    def test_scenario_runs_and_reports(self):
        row = run_scenario("low_load", repeat=1, scheduler="active")
        assert row["cycles"] > 0
        assert row["cycles_per_s"] > 0
        assert len(row["checksum"]) == 10

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_scenario("nope")

    def test_scenario_checksum_scheduler_invariant(self):
        dense = run_scenario("low_load", repeat=1, scheduler="dense")
        active = run_scenario("low_load", repeat=1, scheduler="active")
        assert dense["checksum"] == active["checksum"]
        assert dense["received"] == active["received"]


class TestCli:
    def test_bench_cli_writes_and_gates(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH.json"
        assert main(["bench", "--repeat", "1",
                     "--scenarios", "low_load",
                     "--output", str(out)]) == 0
        data = load_bench(out)
        assert "low_load" in data["scenarios"]
        # gate against itself: passes (identical checksum, same speed)
        assert main(["bench", "--repeat", "1",
                     "--scenarios", "low_load",
                     "--output", str(tmp_path / "B2.json"),
                     "--baseline", str(out)]) == 0
        # poison the baseline checksum: gate must fail
        data["scenarios"]["low_load"]["checksum"] = "0000000000"
        write_bench(out, data)
        assert main(["bench", "--repeat", "1",
                     "--scenarios", "low_load",
                     "--output", str(tmp_path / "B3.json"),
                     "--baseline", str(out)]) == 1
        err = capsys.readouterr().err
        assert "checksum changed" in err

    def test_run_cli_writes_telemetry_artifact(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", "--scheme", "SingleBase",
                     "--benchmark", "hotspot",
                     "--quota", "8", "--iterations", "10",
                     "--telemetry", "25",
                     "--telemetry-out", str(tmp_path)]) == 0
        files = list(tmp_path.glob("run-SingleBase-hotspot-*.json"))
        assert len(files) == 1
        record = json.loads(files[0].read_text())
        assert record["kind"] == "experiment"
        assert record["samples"] > 0

    def test_sweep_cli_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "--schemes", "SingleBase",
                     "--benchmarks", "hotspot",
                     "--quota", "8", "--iterations", "10",
                     "--telemetry", "25",
                     "--telemetry-out", str(tmp_path)]) == 0
        files = list(tmp_path.glob("sweep-*.jsonl"))
        assert len(files) == 1
        lines = read_jsonl(files[0])
        assert lines[0]["kind"] == "sweep"
        assert lines[1]["kind"] == "experiment"
        assert lines[-1]["kind"] == "sweep_summary"
