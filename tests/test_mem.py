"""Unit tests for the HBM stack and memory controller models."""

import pytest

from repro.mem import HbmStack, HbmTiming, MemoryAccess, MemoryController


def access(token, is_read=True, row_hit=True, cycle=0):
    return MemoryAccess(token=token, is_read=is_read, row_hit=row_hit,
                        submit_cycle=cycle)


def run_stack(stack, until=1000):
    done = []
    for cycle in range(until):
        done.extend(stack.tick(cycle))
        if stack.idle() and done:
            break
    return done


class TestTiming:
    def test_transfer_cycles(self):
        timing = HbmTiming()
        assert timing.transfer_cycles == pytest.approx(64 / 28.4)

    def test_peak_bandwidth_matches_hbm2(self):
        """~256 GB/s per stack at the 1.126 GHz core clock."""
        timing = HbmTiming()
        gbps = timing.peak_bytes_per_cycle * 1.126
        assert gbps == pytest.approx(256, rel=0.01)


class TestStack:
    def test_single_access_latency(self):
        stack = HbmStack()
        stack.submit(access("a", row_hit=True))
        done = run_stack(stack)
        assert len(done) == 1
        timing = stack.timing
        expected = timing.t_cas + timing.transfer_cycles
        assert done[0].complete_cycle == pytest.approx(expected, abs=1)

    def test_row_miss_slower(self):
        hit_stack, miss_stack = HbmStack(), HbmStack()
        hit_stack.submit(access("h", row_hit=True))
        miss_stack.submit(access("m", row_hit=False))
        hit_done = run_stack(hit_stack)[0]
        miss_done = run_stack(miss_stack)[0]
        assert miss_done.complete_cycle > hit_done.complete_cycle

    def test_fr_fcfs_prefers_row_hits(self):
        timing = HbmTiming(channels=1)
        stack = HbmStack(timing)
        stack.submit(access("miss", row_hit=False))
        stack.submit(access("hit", row_hit=True))
        done = run_stack(stack)
        order = [a.token for a in sorted(done, key=lambda a: a.complete_cycle)]
        assert order == ["hit", "miss"]

    def test_channel_parallelism(self):
        """N accesses across N channels finish ~together."""
        timing = HbmTiming(channels=4)
        stack = HbmStack(timing)
        for i in range(4):
            stack.submit(access(i))
        done = run_stack(stack)
        finish = [a.complete_cycle for a in done]
        assert max(finish) - min(finish) < 1.0

    def test_single_channel_serialises_bus(self):
        timing = HbmTiming(channels=1)
        stack = HbmStack(timing)
        for i in range(4):
            stack.submit(access(i))
        done = run_stack(stack)
        finish = sorted(a.complete_cycle for a in done)
        for a, b in zip(finish, finish[1:]):
            assert b - a >= timing.transfer_cycles - 1e-9

    def test_bandwidth_bounded(self):
        """Sustained throughput cannot exceed the stack's peak."""
        timing = HbmTiming()
        stack = HbmStack(timing)
        n = 200
        for i in range(n):
            stack.submit(access(i, row_hit=True))
        done = []
        cycle = 0
        while len(done) < n and cycle < 10000:
            done.extend(stack.tick(cycle))
            cycle += 1
        bytes_moved = n * 64
        assert bytes_moved / cycle <= timing.peak_bytes_per_cycle * 1.05

    def test_stats_counters(self):
        stack = HbmStack()
        stack.submit(access("r", is_read=True, row_hit=True))
        stack.submit(access("w", is_read=False, row_hit=False))
        run_stack(stack)
        assert stack.reads == 1
        assert stack.writes == 1
        assert stack.row_hits == 1

    def test_utilization(self):
        stack = HbmStack()
        stack.submit(access("a"))
        run_stack(stack, until=100)
        assert 0 < stack.utilization(100) <= 1


class TestController:
    def test_pipeline_adds_latency(self):
        mc = MemoryController()
        mc.submit("a", is_read=True, row_hit=True, cycle=0)
        done = []
        cycle = 0
        while not done and cycle < 500:
            done = mc.tick(cycle)
            cycle += 1
        stack_latency = (
            mc.stack.timing.t_cas + mc.stack.timing.transfer_cycles
        )
        assert cycle >= stack_latency + 2 * mc.pipeline - 1

    def test_idle_lifecycle(self):
        mc = MemoryController()
        assert mc.idle()
        mc.submit("a", is_read=True, row_hit=True, cycle=0)
        assert not mc.idle()
        cycle = 0
        while not mc.idle() and cycle < 500:
            mc.tick(cycle)
            cycle += 1
        assert mc.idle()

    def test_token_passthrough(self):
        mc = MemoryController()
        marker = object()
        mc.submit(marker, is_read=True, row_hit=True, cycle=0)
        done = []
        for cycle in range(500):
            done.extend(mc.tick(cycle))
            if done:
                break
        assert done[0].token is marker

    def test_many_requests_all_return(self):
        mc = MemoryController()
        n = 50
        for i in range(n):
            mc.submit(i, is_read=(i % 2 == 0), row_hit=(i % 3 == 0), cycle=0)
        done = []
        for cycle in range(5000):
            done.extend(mc.tick(cycle))
            if len(done) == n:
                break
        assert sorted(a.token for a in done) == list(range(n))
