"""Integration-style tests of the network: delivery, credits, ordering."""

import random

import pytest

from repro.core.grid import Grid
from repro.noc import (
    Network,
    NetworkInterface,
    Packet,
    PacketType,
    packet_flits,
)


def make_net(width=4, **kwargs):
    kwargs.setdefault("flit_bytes", 16)
    kwargs.setdefault("vc_classes", [(0,), (1,)])
    net = Network("t", Grid(width), **kwargs)
    nis = {n: NetworkInterface(net, n) for n in net.grid.nodes()}
    return net, nis


def send(net, nis, pid, src, dst, ptype=PacketType.READ_REQUEST, vc_class=0):
    size = packet_flits(ptype, net.flit_bytes)
    packet = Packet(pid, ptype, src, dst, size, 0, vc_class=vc_class)
    nis[src].enqueue(packet)
    return packet


def run_until_idle(net, grid_nodes, max_cycles=5000):
    received = []
    for _ in range(max_cycles):
        net.tick()
        for n in grid_nodes:
            while True:
                p = net.pop_delivered(n)
                if p is None:
                    break
                received.append(p)
        if net.idle():
            break
    return received


class TestDelivery:
    def test_single_packet_delivered(self):
        net, nis = make_net()
        packet = send(net, nis, 1, 0, 15)
        received = run_until_idle(net, list(net.grid.nodes()))
        assert received == [packet]
        assert packet.delivered is not None
        assert packet.injected is not None

    def test_latency_at_zero_load_matches_model(self):
        net, nis = make_net(8)
        src, dst = 0, 63
        packet = send(net, nis, 1, src, dst, PacketType.READ_REPLY, 1)
        run_until_idle(net, [dst])
        hops = net.grid.hops(src, dst)
        # Zero-load: 1 cycle NI-core serialisation + 1 cycle NI link +
        # 1 cycle/hop + eject arbitration + sink + (size-1) serialisation.
        assert packet.latency == hops + packet.size + 2

    def test_all_pairs_delivery(self):
        net, nis = make_net(4)
        pid = 0
        expected = set()
        for src in net.grid.nodes():
            for dst in net.grid.nodes():
                if src == dst:
                    continue
                pid += 1
                send(net, nis, pid, src, dst)
                expected.add(pid)
        received = run_until_idle(net, list(net.grid.nodes()))
        assert {p.pid for p in received} == expected

    def test_packets_arrive_at_correct_node(self):
        net, nis = make_net(4)
        p1 = send(net, nis, 1, 0, 5)
        p2 = send(net, nis, 2, 3, 12)
        for _ in range(200):
            net.tick()
            if net.idle():
                break
        assert net.pop_delivered(5).pid == 1
        assert net.pop_delivered(12).pid == 2
        assert net.pop_delivered(5) is None

    def test_multi_flit_packet_arrives_whole(self):
        net, nis = make_net()
        packet = send(net, nis, 1, 0, 15, PacketType.READ_REPLY, 1)
        assert packet.size == 5
        received = run_until_idle(net, [15])
        assert received[0] is packet


class TestConservation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_loss_under_load(self, seed):
        net, nis = make_net(8)
        rng = random.Random(seed)
        nodes = list(net.grid.nodes())
        sent = 0
        for _ in range(300):
            for src in nodes:
                if rng.random() < 0.1:
                    dst = rng.choice(nodes)
                    if dst == src:
                        continue
                    sent += 1
                    reply = rng.random() < 0.5
                    send(
                        net, nis, sent, src, dst,
                        PacketType.READ_REPLY if reply
                        else PacketType.READ_REQUEST,
                        1 if reply else 0,
                    )
            net.tick()
        received = run_until_idle(net, nodes, max_cycles=20000)
        drained = len(received)
        # Some packets were consumed during the load loop as well.
        assert net.idle()
        assert net.stats.packets_delivered == sent
        assert drained <= sent

    def test_flit_conservation_counters(self):
        net, nis = make_net(4)
        for pid in range(1, 11):
            send(net, nis, pid, pid % 16, (pid * 7) % 16)
        run_until_idle(net, list(net.grid.nodes()))
        assert net.stats.flits_injected == net.stats.flits_ejected


class TestCredits:
    def test_credits_restored_after_drain(self):
        net, nis = make_net()
        send(net, nis, 1, 0, 15, PacketType.READ_REPLY, 1)
        run_until_idle(net, [15])
        for router in net.routers:
            for port, out in router.outputs.items():
                if port < 4 and port in router.neighbors:
                    for vc, credits in enumerate(out.credits):
                        assert credits == net.vc_capacity
                for vc in range(out.num_vcs):
                    assert out.owner[vc] is None

    def test_eject_credits_returned_on_pop(self):
        net, nis = make_net()
        send(net, nis, 1, 0, 15, PacketType.READ_REPLY, 1)
        for _ in range(100):
            net.tick()
            if net.in_flight() == 0:
                break
        router = net.routers[15]
        eject = router.outputs[router.eject_ports[0]]
        before = eject.credits[0]
        assert before < net.eject_capacity  # packet parked in receive queue
        net.pop_delivered(15)
        assert eject.credits[0] == before + 5

    def test_backpressure_blocks_ejection(self):
        """If nobody consumes at the destination, injection stalls."""
        net, nis = make_net(4)
        dst = 15
        for pid in range(1, 30):
            send(net, nis, pid, 0, dst, PacketType.READ_REPLY, 1)
        for _ in range(400):
            net.tick()
        # Without pops, only eject_capacity worth of flits drained.
        assert not net.idle()
        drained = 0
        for _ in range(5000):
            net.tick()
            while net.pop_delivered(dst):
                drained += 1
            if net.idle():
                break
        assert drained == 29
        assert net.idle()

    def test_add_eject_port_defaults_to_constructed_capacity(self):
        """Regression: extra eject ports once defaulted to 2*vc_capacity,
        ignoring an explicit ``eject_capacity`` at construction."""
        net, _ = make_net(eject_capacity=7)
        router = net.routers[3]
        built = router.outputs[router.eject_ports[0]]
        assert built.capacity == 7
        port = net.add_eject_port(3)
        added = router.outputs[port]
        assert added.capacity == 7
        assert added.credits[0] == 7

    def test_add_eject_port_explicit_capacity_still_honoured(self):
        net, _ = make_net(eject_capacity=7)
        port = net.add_eject_port(0, capacity=11)
        assert net.routers[0].outputs[port].capacity == 11


class TestVcClasses:
    def test_classes_stay_separated_without_monopolize(self):
        net, nis = make_net(4)
        send(net, nis, 1, 0, 15, PacketType.READ_REQUEST, 0)
        send(net, nis, 2, 0, 15, PacketType.READ_REPLY, 1)
        seen_violation = []
        for _ in range(200):
            net.tick()
            for router in net.routers:
                for port in router.input_ports:
                    for vc, ivc in enumerate(router.inputs[port]):
                        for flit in ivc.queue:
                            if vc not in net.vc_classes[flit.packet.vc_class]:
                                seen_violation.append((router.node, port, vc))
            if net.idle():
                break
        assert not seen_violation


class TestHeatmap:
    def test_residence_recorded(self):
        net, nis = make_net(8)
        send(net, nis, 1, 0, 63, PacketType.READ_REPLY, 1)
        run_until_idle(net, [63])
        heat = net.stats.heatmap()
        assert heat.shape == (64,)
        assert heat.sum() > 0
