"""Unit tests for the cache-bank model (isolated from the full system)."""

from collections import deque


from repro.gpu.cachebank import CacheBank
from repro.gpu.transaction import Transaction
from repro.noc.types import PacketType
from repro.workloads.profiles import WorkloadProfile


class FakePacket:
    def __init__(self):
        self.injected = None


class FakeFabric:
    """Minimal fabric stub: hand-fed requests, recorded replies."""

    def __init__(self):
        self.requests = deque()
        self.replies = []

    def pop_request(self, node):
        return self.requests.popleft() if self.requests else None

    def send_reply(self, cb, pe, ptype, token):
        packet = FakePacket()
        self.replies.append((cb, pe, ptype, token, packet))
        return packet


def profile(l2_hit_rate=1.0, **kwargs):
    defaults = dict(
        name="unit", suite="t", intensity=0.5, read_fraction=0.8,
        l2_hit_rate=l2_hit_rate, row_hit_rate=0.5, burstiness=0.0,
        dependency=0.0,
    )
    defaults.update(kwargs)
    return WorkloadProfile(**defaults)


def txn(tid, is_read=True, pe=1, cb=0):
    return Transaction(tid=tid, pe=pe, cb=cb, is_read=is_read,
                       row_hit=True, issued=0)


def make_bank(l2_hit_rate=1.0, capacity=4, l2_latency=3):
    fabric = FakeFabric()
    bank = CacheBank(
        node=0, profile=profile(l2_hit_rate), fabric=fabric, seed=0,
        capacity=capacity, l2_latency=l2_latency,
    )
    return bank, fabric


class TestHits:
    def test_read_hit_replies_after_l2_latency(self):
        bank, fabric = make_bank(l2_hit_rate=1.0, l2_latency=3)
        fabric.requests.append(txn(1))
        bank.tick(10)  # accepted at cycle 10
        assert not fabric.replies
        for cycle in range(11, 14):
            bank.tick(cycle)
        assert len(fabric.replies) == 1
        _cb, pe, ptype, token, _pkt = fabric.replies[0]
        assert ptype == PacketType.READ_REPLY
        assert token.tid == 1
        assert token.reply_sent == 13

    def test_write_acked(self):
        bank, fabric = make_bank(l2_hit_rate=1.0)
        fabric.requests.append(txn(2, is_read=False))
        for cycle in range(10, 20):
            bank.tick(cycle)
        assert fabric.replies[0][2] == PacketType.WRITE_REPLY

    def test_hit_counters(self):
        bank, fabric = make_bank(l2_hit_rate=1.0)
        for i in range(3):
            fabric.requests.append(txn(i + 1))
        for cycle in range(1, 30):
            bank.tick(cycle)
        assert bank.l2_hits == 3
        assert bank.l2_misses == 0


class TestMisses:
    def test_read_miss_goes_to_memory(self):
        bank, fabric = make_bank(l2_hit_rate=0.0)
        fabric.requests.append(txn(1))
        bank.tick(1)
        assert bank.l2_misses == 1
        assert not bank.memory.idle()
        cycle = 1
        while not fabric.replies and cycle < 500:
            cycle += 1
            bank.tick(cycle)
        assert fabric.replies
        # A miss takes longer than the L2 pipeline.
        assert fabric.replies[0][3].reply_sent > 1 + bank.l2_latency

    def test_write_miss_posts_writeback_and_acks(self):
        bank, fabric = make_bank(l2_hit_rate=0.0)
        fabric.requests.append(txn(1, is_read=False))
        for cycle in range(1, 10):
            bank.tick(cycle)
        # Ack went out quickly even though the line spilled to memory.
        assert fabric.replies
        assert fabric.replies[0][2] == PacketType.WRITE_REPLY
        # The posted writeback is in flight (or already done) silently.
        for cycle in range(10, 400):
            bank.tick(cycle)
        assert bank.memory.idle()
        assert len(fabric.replies) == 1


class TestCapacity:
    def test_occupancy_never_exceeds_capacity(self):
        bank, fabric = make_bank(capacity=2)
        for i in range(8):
            fabric.requests.append(txn(i + 1))
        for cycle in range(1, 50):
            bank.tick(cycle)
            assert bank.occupancy <= 2

    def test_stalls_counted_when_full(self):
        bank, fabric = make_bank(capacity=1, l2_latency=50)
        for i in range(4):
            fabric.requests.append(txn(i + 1))
        for cycle in range(1, 20):
            bank.tick(cycle)
        assert bank.stall_cycles > 0
        assert len(fabric.requests) > 0  # requests left waiting

    def test_occupancy_freed_when_reply_injects(self):
        bank, fabric = make_bank(capacity=1, l2_latency=1)
        fabric.requests.append(txn(1))
        fabric.requests.append(txn(2))
        for cycle in range(1, 5):
            bank.tick(cycle)
        assert bank.occupancy == 1  # reply emitted but not injecting yet
        # Mark the reply packet as injecting; next tick frees the slot.
        fabric.replies[0][4].injected = 5
        bank.tick(6)
        bank.tick(7)
        assert fabric.replies[-1][3].tid == 2 or bank.occupancy == 1


class TestIdle:
    def test_idle_lifecycle(self):
        bank, fabric = make_bank()
        assert bank.idle()
        fabric.requests.append(txn(1))
        bank.tick(1)
        assert not bank.idle()
        for cycle in range(2, 40):
            bank.tick(cycle)
        fabric.replies[0][4].injected = 40
        bank.tick(41)
        assert bank.idle()
