"""Work-queue bus contract: both backends, same behaviour.

Every test runs against :class:`MemoryBus` and :class:`SqliteBus`
through one parametrized factory with a manual clock, so the two
backends cannot drift apart on lease expiry, retry budgets, crash-loop
guards, duplicate-delivery resolution or payload round-tripping.
"""

import pytest

from repro.harness.bus import (
    DEAD,
    DONE,
    LEASED,
    NACK_DEAD,
    NACK_RETRY,
    NACK_STALE,
    PENDING,
    REASON_CRASH_LOOP,
    REASON_RETRIES,
    BusPolicy,
    MemoryBus,
    SqliteBus,
    open_bus,
)


class ManualClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(params=["memory", "sqlite"])
def make_bus(request, tmp_path):
    """Factory: make_bus(policy) -> (bus, clock) for either backend."""
    counter = [0]

    def factory(policy=None):
        clock = ManualClock()
        if request.param == "memory":
            return MemoryBus(policy=policy, clock=clock), clock
        counter[0] += 1
        path = tmp_path / f"bus-{counter[0]}.sqlite"
        return SqliteBus(path, policy=policy, clock=clock), clock

    return factory


class TestLifecycle:
    def test_put_lease_ack(self, make_bus):
        bus, _clock = make_bus()
        assert bus.put("t1", {"x": 1})
        lease = bus.lease("w1", 10.0, worker_pid=42)
        assert lease.task_id == "t1"
        assert lease.payload == {"x": 1}
        assert lease.failures == 0 and lease.deliveries == 1
        assert bus.ack(lease.token, {"ok": True}, seed_used=7,
                       duration_s=0.5)
        record = bus.record("t1")
        assert record["state"] == DONE
        assert record["result"] == {"ok": True}
        assert record["seed_used"] == 7
        assert record["worker"] == "w1" and record["worker_pid"] == 42
        assert bus.all_terminal()

    def test_duplicate_put_is_noop(self, make_bus):
        bus, _clock = make_bus()
        assert bus.put("t1", {"x": 1})
        assert not bus.put("t1", {"x": 2})
        lease = bus.lease("w1", 10.0)
        assert lease.payload == {"x": 1}  # first write wins

    def test_fifo_order_and_exclusivity(self, make_bus):
        bus, _clock = make_bus()
        bus.put("a", {})
        bus.put("b", {})
        first = bus.lease("w1", 10.0)
        second = bus.lease("w2", 10.0)
        assert (first.task_id, second.task_id) == ("a", "b")
        assert bus.lease("w3", 10.0) is None  # nothing left to lease

    def test_payload_floats_roundtrip_exactly(self, make_bus):
        bus, _clock = make_bus()
        payload = {"f": 0.1 + 0.2, "nested": {"g": 1e-300}}
        bus.put("t1", payload)
        lease = bus.lease("w1", 10.0)
        assert lease.payload["f"] == 0.1 + 0.2
        assert lease.payload["nested"]["g"] == 1e-300
        bus.ack(lease.token, {"v": 3.3000000000000003})
        assert bus.record("t1")["result"]["v"] == 3.3000000000000003

    def test_counts_and_records_filter(self, make_bus):
        bus, _clock = make_bus()
        for name in ("a", "b", "c"):
            bus.put(name, {})
        lease = bus.lease("w1", 10.0)
        bus.ack(lease.token, {})
        counts = bus.counts()
        assert counts == {"pending": 2, "leased": 0, "done": 1, "dead": 0}
        assert [r["task_id"] for r in bus.records()] == ["a", "b", "c"]
        assert [r["task_id"] for r in bus.records([PENDING])] == ["b", "c"]
        assert not bus.all_terminal()

    def test_meta_roundtrip(self, make_bus):
        bus, _clock = make_bus()
        assert bus.get_meta("manifest") is None
        bus.set_meta("manifest", {"cells": 3, "order": ["a", "b"]})
        assert bus.get_meta("manifest") == {"cells": 3, "order": ["a", "b"]}
        bus.set_meta("manifest", {"cells": 4})
        assert bus.get_meta("manifest") == {"cells": 4}


class TestLeaseExpiry:
    def test_expired_lease_redelivers_same_attempt(self, make_bus):
        bus, clock = make_bus()
        bus.put("t1", {"x": 1})
        first = bus.lease("w1", 5.0)
        assert bus.lease("w2", 5.0) is None  # held
        clock.advance(6.0)
        second = bus.lease("w2", 5.0)
        assert second is not None
        # A crash redelivery must NOT consume the retry budget or
        # reseed: failures stays 0, only deliveries grows.
        assert second.failures == 0 and second.deliveries == 2

    def test_stale_token_cannot_complete(self, make_bus):
        bus, clock = make_bus()
        bus.put("t1", {})
        first = bus.lease("w1", 5.0)
        clock.advance(6.0)
        second = bus.lease("w2", 5.0)
        # The limping original worker comes back after its lease was
        # re-leased: its completions must be dropped as stale.
        assert bus.ack(first.token, {"from": "w1"}) is False
        assert bus.nack(first.token, error="late") == NACK_STALE
        assert bus.heartbeat(first.token, 5.0) is False
        assert bus.ack(second.token, {"from": "w2"})
        assert bus.record("t1")["result"] == {"from": "w2"}

    def test_heartbeat_extends_lease(self, make_bus):
        bus, clock = make_bus()
        bus.put("t1", {})
        lease = bus.lease("w1", 5.0)
        clock.advance(4.0)
        assert bus.heartbeat(lease.token, 5.0)
        clock.advance(4.0)  # past the original deadline, inside renewal
        assert bus.lease("w2", 5.0) is None
        assert bus.record("t1")["state"] == LEASED

    def test_explicit_expire_lists_tasks(self, make_bus):
        bus, clock = make_bus()
        bus.put("t1", {})
        bus.put("t2", {})
        bus.lease("w1", 5.0)
        bus.lease("w1", 50.0)
        clock.advance(10.0)
        assert bus.expire() == ["t1"]
        assert bus.record("t1")["state"] == PENDING
        assert bus.record("t2")["state"] == LEASED

    def test_force_expire_releases_immediately(self, make_bus):
        # Sentinel force-expiry (confirmed-dead fleet) must make the
        # work due now, not push not_before out to the sentinel.
        bus, _clock = make_bus()
        bus.put("t1", {})
        bus.lease("w1", 60.0)
        assert bus.expire(float("inf")) == ["t1"]
        assert bus.lease("w2", 5.0) is not None

    def test_crash_loop_dead_letters(self, make_bus):
        policy = BusPolicy(retries=0, redelivery_limit=2)
        bus, clock = make_bus(policy)
        bus.put("t1", {})
        for _ in range(policy.max_deliveries):
            assert bus.lease("w1", 1.0) is not None
            clock.advance(2.0)
        # Budget burnt through lease expiry alone: the next lease call
        # dead-letters instead of delivering a poison pill again.
        assert bus.lease("w1", 1.0) is None
        (record,) = bus.dead_letters()
        assert record["task_id"] == "t1"
        assert record["dead_reason"] == REASON_CRASH_LOOP
        assert record["error_type"] == "LeaseExpired"
        assert "3 deliveries" in record["error"]


class TestRetries:
    def test_nack_reschedules_with_backoff(self, make_bus):
        bus, clock = make_bus(BusPolicy(retries=2, backoff_s=4.0))
        bus.put("t1", {})
        lease = bus.lease("w1", 10.0)
        assert bus.nack(lease.token, error="boom",
                        error_type="RuntimeError") == NACK_RETRY
        record = bus.record("t1")
        assert record["state"] == PENDING and record["failures"] == 1
        assert bus.lease("w1", 10.0) is None  # backoff window
        assert bus.next_due() == pytest.approx(clock.now + 4.0)
        clock.advance(4.5)
        retry = bus.lease("w1", 10.0)
        assert retry.failures == 1  # next attempt: deterministic reseed

    def test_backoff_doubles_per_failure(self):
        policy = BusPolicy(retries=3, backoff_s=0.5)
        assert policy.backoff_for(0) == 0.0
        assert policy.backoff_for(1) == 0.5
        assert policy.backoff_for(2) == 1.0
        assert policy.backoff_for(3) == 2.0

    def test_exhausted_retries_dead_letter(self, make_bus):
        bus, clock = make_bus(BusPolicy(retries=1, backoff_s=0.0))
        bus.put("t1", {"scheme": "X"})
        for verdict in (NACK_RETRY, NACK_DEAD):
            lease = bus.lease("w1", 10.0)
            assert bus.nack(
                lease.token, error="trace...", error_type="StallError",
                stall_dump="stalled at cycle 42", timed_out=False,
            ) == verdict
        (record,) = bus.dead_letters()
        assert record["dead_reason"] == REASON_RETRIES
        assert record["failures"] == 2
        assert record["error"] == "trace..."
        assert record["stall_dump"] == "stalled at cycle 42"
        assert bus.lease("w1", 10.0) is None
        assert bus.all_terminal()

    def test_ack_clears_prior_failure_details(self, make_bus):
        bus, _clock = make_bus(BusPolicy(retries=2, backoff_s=0.0))
        bus.put("t1", {})
        lease = bus.lease("w1", 10.0)
        bus.nack(lease.token, error="boom", error_type="RuntimeError",
                 stall_dump="dump", timed_out=True)
        retry = bus.lease("w1", 10.0)
        assert bus.ack(retry.token, {"ok": 1}, seed_used=99)
        record = bus.record("t1")
        assert record["state"] == DONE
        assert record["error"] is None and record["stall_dump"] is None
        assert record["timed_out"] is False
        assert record["failures"] == 1  # history kept for attempts count

    def test_requeue_resets_budget(self, make_bus):
        bus, _clock = make_bus(BusPolicy(retries=0, backoff_s=0.0))
        bus.put("t1", {})
        bus.put("t2", {})
        for _ in range(2):
            lease = bus.lease("w1", 10.0)
            bus.nack(lease.token, error="boom")
        assert len(bus.dead_letters()) == 2
        assert bus.requeue(["t1"]) == 1
        record = bus.record("t1")
        assert record["state"] == PENDING
        assert record["failures"] == 0 and record["deliveries"] == 0
        assert record["error"] is None and record["dead_reason"] is None
        # A fresh lease restarts the deterministic schedule at attempt 0.
        assert bus.lease("w1", 10.0).failures == 0
        assert bus.requeue() == 1  # no filter: remaining dead letters
        assert bus.dead_letters() == []


class TestSqliteSpecifics:
    def test_open_bus_persists_across_connections(self, tmp_path):
        path = tmp_path / "bus.sqlite"
        first = open_bus(path)
        first.put("t1", {"x": 1})
        first.set_meta("policy", {"retries": 3})
        # A second process opening the same file sees everything.
        second = SqliteBus(path)
        assert [r["task_id"] for r in second.records()] == ["t1"]
        assert second.get_meta("policy") == {"retries": 3}
        lease = second.lease("w1", 10.0)
        assert lease is not None
        assert first.record("t1")["state"] == LEASED

    def test_dead_state_constant_matches_schema(self, tmp_path):
        bus = SqliteBus(tmp_path / "bus.sqlite",
                        policy=BusPolicy(retries=0, backoff_s=0.0))
        bus.put("t1", {})
        lease = bus.lease("w1", 10.0)
        assert bus.nack(lease.token, error="x") == NACK_DEAD
        assert bus.counts()[DEAD] == 1
