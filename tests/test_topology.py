"""Unit tests for the mesh / CMesh topology builders."""

import pytest

from repro.core.grid import Grid
from repro.noc import (
    CmeshEnvelope,
    CmeshMap,
    NetworkInterface,
    Packet,
    PacketType,
    build_cmesh,
    build_mesh,
)


class TestMesh:
    def test_build_mesh(self):
        net = build_mesh("m", 8, 16)
        assert len(net.routers) == 64
        interior = net.routers[net.grid.node(3, 3)]
        assert len(interior.neighbors) == 4
        corner = net.routers[net.grid.node(0, 0)]
        assert len(corner.neighbors) == 2

    def test_mesh_links_bidirectional(self):
        net = build_mesh("m", 4, 16)
        for router in net.routers:
            for port, (nbr, nbr_port) in router.neighbors.items():
                back = net.routers[nbr].neighbors[nbr_port]
                assert back == (router.node, port)


class TestCmeshMap:
    def test_mapping_8x8(self):
        cmap = CmeshMap(Grid(8))
        assert cmap.cgrid.size == 16
        assert cmap.cmesh_node(Grid(8).node(0, 0)) == 0
        assert cmap.cmesh_node(Grid(8).node(7, 7)) == 15

    def test_local_index(self):
        base = Grid(8)
        cmap = CmeshMap(base)
        assert cmap.local_index(base.node(0, 0)) == 0
        assert cmap.local_index(base.node(1, 0)) == 1
        assert cmap.local_index(base.node(0, 1)) == 2
        assert cmap.local_index(base.node(1, 1)) == 3

    def test_tiles_of_roundtrip(self):
        base = Grid(8)
        cmap = CmeshMap(base)
        for cnode in cmap.cgrid.nodes():
            for tile in cmap.tiles_of(cnode):
                assert cmap.cmesh_node(tile) == cnode

    def test_all_tiles_covered(self):
        base = Grid(8)
        cmap = CmeshMap(base)
        covered = set()
        for cnode in cmap.cgrid.nodes():
            covered.update(cmap.tiles_of(cnode))
        assert covered == set(base.nodes())

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            CmeshMap(Grid(7))


class TestCmeshNetwork:
    def test_build(self):
        net, cmap, eject_of = build_cmesh(Grid(8), 32,
                                          vc_classes=[(0,), (1,)])
        assert net.grid.size == 16
        # Four dedicated ejection ports per router.
        for router in net.routers:
            assert len(router.eject_ports) == 4
        assert len(eject_of) == 64
        assert net.interposer_mesh_links

    def test_dedicated_ejection(self):
        base = Grid(8)
        net, cmap, eject_of = build_cmesh(base, 32, vc_classes=[(0,), (1,)])
        nis = {
            tile: NetworkInterface(net, cmap.cmesh_node(tile))
            for tile in base.nodes()
        }
        src_tile = base.node(0, 0)
        dst_tile = base.node(7, 6)  # local index 1 in its block
        envelope = CmeshEnvelope(real_src=src_tile, real_dst=dst_tile)
        packet = Packet(
            1,
            PacketType.READ_REPLY,
            cmap.cmesh_node(src_tile),
            cmap.cmesh_node(dst_tile),
            3,
            0,
            vc_class=1,
            token=envelope,
        )
        nis[src_tile].enqueue(packet)
        cnode = cmap.cmesh_node(dst_tile)
        port = eject_of[(cnode, cmap.local_index(dst_tile))]
        got = None
        for _ in range(200):
            net.tick()
            got = net.pop_delivered(cnode, port=port)
            if got:
                break
        assert got is packet
        # The other tiles' ports stayed empty.
        for other_local in range(4):
            other_port = eject_of[(cnode, other_local)]
            if other_port != port:
                assert net.pop_delivered(cnode, port=other_port) is None

    def test_interposer_link_stats(self):
        base = Grid(8)
        net, cmap, eject_of = build_cmesh(base, 32, vc_classes=[(0,), (1,)])
        ni = NetworkInterface(net, 0)
        envelope = CmeshEnvelope(real_src=0, real_dst=base.node(7, 7))
        packet = Packet(1, PacketType.READ_REPLY, 0, 15, 3, 0, vc_class=1,
                        token=envelope)
        ni.enqueue(packet)
        for _ in range(100):
            net.tick()
            if net.pop_delivered(15, port=eject_of[(15, 3)]):
                break
        assert net.stats.link_hops_interposer > 0
        assert net.stats.link_hops_onchip == 0
