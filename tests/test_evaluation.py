"""Unit tests for the four-metric MCTS evaluation function."""

import pytest

from repro.core import evaluation, eir, placement
from repro.core.grid import Grid


@pytest.fixture
def grid():
    return Grid(8)


@pytest.fixture
def nodes(grid):
    return placement.nqueen_best(grid, 8).nodes


def build_design(grid, nodes, pick=0, require_full=True):
    groups = []
    taken = set()
    for cb in nodes:
        options = eir.enumerate_groups(
            grid, nodes, cb, taken=frozenset(taken), require_full=require_full
        )
        group = options[min(pick, len(options) - 1)]
        groups.append(group)
        taken.update(group.nodes)
    return eir.EirDesign(grid=grid, placement=tuple(nodes),
                         groups=tuple(groups))


class TestInjectionLoads:
    def test_loads_conserve_traffic(self, grid, nodes):
        design = build_design(grid, nodes)
        loads = evaluation.injection_loads(design)
        num_pes = grid.size - len(nodes)
        assert sum(loads.values()) == pytest.approx(num_pes * len(nodes))

    def test_no_eirs_all_on_local(self, grid, nodes):
        design = eir.no_eir_design(grid, nodes)
        loads = evaluation.injection_loads(design)
        num_pes = grid.size - len(nodes)
        for cb in nodes:
            assert loads[cb] == pytest.approx(num_pes)

    def test_eirs_reduce_max_load(self, grid, nodes):
        with_eirs = evaluation.injection_loads(build_design(grid, nodes))
        without = evaluation.injection_loads(eir.no_eir_design(grid, nodes))
        assert max(with_eirs.values()) < max(without.values())


class TestAverageHops:
    def test_eirs_reduce_avg_hops(self, grid, nodes):
        with_eirs = evaluation.average_hops(build_design(grid, nodes))
        without = evaluation.average_hops(eir.no_eir_design(grid, nodes))
        assert with_eirs < without

    def test_positive(self, grid, nodes):
        assert evaluation.average_hops(build_design(grid, nodes)) > 0


class TestEvaluate:
    def test_result_has_all_metrics(self, grid, nodes):
        result = evaluation.evaluate(build_design(grid, nodes))
        assert set(result.raw) == {
            "max_load", "avg_hops", "crossings", "link_length"
        }
        assert set(result.normalized) == set(result.raw)

    def test_normalized_in_unit_range(self, grid, nodes):
        result = evaluation.evaluate(build_design(grid, nodes))
        for name, value in result.normalized.items():
            assert 0.0 <= value <= 1.5, (name, value)

    def test_lower_is_better_no_eirs_scores_high_load(self, grid, nodes):
        empty = evaluation.evaluate(eir.no_eir_design(grid, nodes))
        assert empty.normalized["max_load"] == pytest.approx(1.0)

    def test_weights_change_score(self, grid, nodes):
        design = build_design(grid, nodes)
        default = evaluation.evaluate(design)
        heavy = evaluation.evaluate(
            design,
            weights={"max_load": 10.0, "avg_hops": 1.0, "crossings": 1.0,
                     "link_length": 1.0},
        )
        assert heavy.score > default.score

    def test_score_is_weighted_sum(self, grid, nodes):
        result = evaluation.evaluate(build_design(grid, nodes))
        expected = sum(
            evaluation.DEFAULT_WEIGHTS[k] * v
            for k, v in result.normalized.items()
        )
        assert result.score == pytest.approx(expected)


class TestReward:
    def test_reward_in_unit_interval(self, grid, nodes):
        result = evaluation.evaluate(build_design(grid, nodes))
        r = evaluation.reward(result)
        assert 0.0 < r <= 1.0

    def test_reward_monotone(self, grid, nodes):
        good = evaluation.evaluate(build_design(grid, nodes))
        bad = evaluation.evaluate(eir.no_eir_design(grid, nodes))
        # The empty design has max load 1.0 and baseline hops; the EIR
        # design should be preferred (strictly higher reward).
        assert evaluation.reward(good) > evaluation.reward(bad)
