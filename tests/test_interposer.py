"""Unit tests for RDL planning and µbump accounting."""

import pytest

from repro.core import placement
from repro.core.grid import Grid
from repro.physical import interposer, ubump


class TestRdlPlan:
    def test_no_links_empty_plan(self):
        plan = interposer.plan_links(Grid(8), [])
        assert plan.num_crossings == 0
        assert plan.num_layers == 0
        assert plan.total_length_mm == 0.0

    def test_parallel_links_one_layer(self):
        grid = Grid(8)
        links = [(grid.node(0, 0), grid.node(2, 0)),
                 (grid.node(0, 2), grid.node(2, 2))]
        plan = interposer.plan_links(grid, links)
        assert plan.num_crossings == 0
        assert plan.num_layers == 1

    def test_crossing_links_two_layers(self):
        grid = Grid(8)
        links = [(grid.node(0, 1), grid.node(2, 1)),
                 (grid.node(1, 0), grid.node(1, 2))]
        plan = interposer.plan_links(grid, links)
        assert plan.num_crossings == 1
        assert plan.num_layers == 2
        # Conflicting links are on different layers.
        i, j = plan.crossings[0]
        assert plan.layer_of[i] != plan.layer_of[j]

    def test_layer_assignment_valid(self):
        grid = Grid(8)
        # A bundle of mutually crossing links through the centre.
        links = [
            (grid.node(0, 3), grid.node(7, 4)),
            (grid.node(3, 0), grid.node(4, 7)),
            (grid.node(0, 4), grid.node(7, 3)),
        ]
        plan = interposer.plan_links(grid, links)
        for i, j in plan.crossings:
            assert plan.layer_of[i] != plan.layer_of[j]

    def test_length_in_mm(self):
        grid = Grid(8)
        plan = interposer.plan_links(grid, [(grid.node(0, 0), grid.node(2, 0))])
        assert plan.total_length_mm == pytest.approx(
            2 * interposer.TILE_PITCH_MM
        )

    def test_repeater_threshold(self):
        grid = Grid(8)
        short = interposer.plan_links(grid, [(grid.node(0, 0), grid.node(2, 0))])
        long = interposer.plan_links(grid, [(grid.node(0, 0), grid.node(7, 0))])
        assert not short.needs_repeaters()
        assert long.needs_repeaters()

    def test_plan_for_design(self):
        grid = Grid(8)
        from repro.core.eir import enumerate_groups, EirDesign

        nodes = placement.nqueen_best(grid, 8).nodes
        groups = []
        taken = set()
        for cb in nodes:
            options = enumerate_groups(grid, nodes, cb,
                                       taken=frozenset(taken),
                                       require_full=True)
            groups.append(options[0])
            taken.update(options[0].nodes)
        design = EirDesign(grid=grid, placement=tuple(nodes),
                           groups=tuple(groups))
        plan = interposer.plan_for_design(design)
        assert len(plan.links) == len(design.links())


class TestUbump:
    def test_area_formula(self):
        # 128 wires at 40um pitch: 128 * 0.04mm^2 each side... one bump
        # is (0.04 mm)^2 = 0.0016 mm^2.
        assert ubump.ubump_area_mm2(1) == pytest.approx(0.0016)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ubump.ubump_area_mm2(-1)

    def test_paper_link_area(self):
        """A 128-bit bi-directional link consumes ~0.34 mm^2 less than
        half a percent off the paper's quoted 0.34."""
        assert ubump.link_ubump_area_mm2(128) == pytest.approx(0.41, abs=0.08)

    def test_interposer_cmesh_budget_matches_paper(self):
        budget = ubump.interposer_cmesh_budget()
        assert budget.num_bumps == 32768

    def test_equinox_budget_matches_paper(self):
        budget = ubump.equinox_budget(num_eirs=24)
        assert budget.num_bumps == 6144

    def test_saving_is_81_percent(self):
        cmesh = ubump.interposer_cmesh_budget()
        equinox = ubump.equinox_budget(num_eirs=24)
        saving = 1 - equinox.num_bumps / cmesh.num_bumps
        assert saving == pytest.approx(0.8125)

    def test_budget_for_design(self):
        grid = Grid(8)
        from repro.core.eir import make_group, EirDesign

        nodes = (grid.node(3, 3), grid.node(6, 6))
        groups = (
            make_group(nodes[0], {(1, 0): grid.node(5, 3)}),
            make_group(nodes[1], {(-1, 0): grid.node(4, 6)}),
        )
        design = EirDesign(grid=grid, placement=nodes, groups=groups)
        budget = ubump.budget_for_design(design)
        assert budget.num_links == 2
        assert budget.num_bumps == 2 * 128 * 2
