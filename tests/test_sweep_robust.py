"""Sweep robustness: timeouts, retries, journalling, crash-safe resume."""

import json
import signal
import time

import pytest

from repro.harness import cache, runner
from repro.harness.experiment import ExperimentConfig
from repro.harness.runner import (
    CellTimeout,
    SweepJournal,
    _config_digest,
    _run_cell,
    _wall_clock_limit,
    retry_seed,
    run_sweep,
    sweep,
)

CFG = ExperimentConfig(quota=8, mcts_iterations=10)
GRID = dict(schemes=["EquiNox", "SeparateBase"], benchmarks=["hotspot"])


def _cells():
    return runner.expand_grid(GRID["schemes"], GRID["benchmarks"], CFG)


class TestWallClockLimit:
    def test_fires_on_overrun(self):
        with pytest.raises(CellTimeout):
            with _wall_clock_limit(0.05):
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    pass

    def test_noop_when_disabled(self):
        with _wall_clock_limit(0):
            pass

    def test_timer_cleared_after_body(self):
        with _wall_clock_limit(0.2):
            pass
        time.sleep(0.25)  # the alarm must not fire after the block

    def test_outer_itimer_survives_inner_limit(self):
        # Regression: teardown used to cancel a previously armed itimer
        # along with its own, silently disabling any outer timeout.
        fired = []
        previous = signal.signal(
            signal.SIGALRM, lambda s, f: fired.append(True)
        )
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.5)
            with _wall_clock_limit(0.05):
                pass
            remaining, _interval = signal.getitimer(signal.ITIMER_REAL)
            assert remaining > 0  # outer timer re-armed, not cancelled
            deadline = time.monotonic() + 3
            while not fired and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fired  # ... and it still goes off
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_expired_outer_itimer_fires_on_exit(self):
        # An outer deadline that passes while the inner limit is armed
        # must fire right after teardown instead of being dropped.
        fired = []
        previous = signal.signal(
            signal.SIGALRM, lambda s, f: fired.append(True)
        )
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.05)
            with _wall_clock_limit(5.0):
                deadline = time.monotonic() + 0.15
                while time.monotonic() < deadline:
                    pass
            deadline = time.monotonic() + 3
            while not fired and time.monotonic() < deadline:
                time.sleep(0.02)
            assert fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_nested_limits_outer_still_fires(self):
        with pytest.raises(CellTimeout):
            with _wall_clock_limit(0.2):
                with _wall_clock_limit(0.05):
                    pass  # inner finishes without tripping
                deadline = time.monotonic() + 3
                while time.monotonic() < deadline:
                    pass


class TestRetries:
    def test_retry_seed_is_deterministic_and_distinct(self):
        assert retry_seed(7, 1) == retry_seed(7, 1)
        assert retry_seed(7, 1) != retry_seed(7, 2)
        assert retry_seed(7, 1) != 7

    def test_second_attempt_recovers(self, monkeypatch):
        calls = []

        def flaky(scheme, benchmark, config):
            calls.append(config.seed)
            if len(calls) == 1:
                raise RuntimeError("transient")
            from repro.harness.metrics import ExperimentResult, LatencyNs

            return ExperimentResult(
                scheme=scheme, benchmark=benchmark, width=8, cycles=1,
                instructions=1, energy_nj=0.0, area_mm2=0.0,
                latency=LatencyNs(), reply_bits_fraction=0.0,
            )

        monkeypatch.setattr(runner, "run_experiment", flaky)
        outcome = _run_cell(_cells()[0], retries=2, backoff_s=0.0)
        assert outcome.ok
        assert outcome.attempts == 2
        # The retry ran under a fresh deterministic seed.
        assert calls == [CFG.seed, retry_seed(CFG.seed, 1)]
        assert outcome.seed_used == retry_seed(CFG.seed, 1)

    def test_exhausted_retries_record_failure(self, monkeypatch):
        def always(scheme, benchmark, config):
            raise RuntimeError("permanent")

        monkeypatch.setattr(runner, "run_experiment", always)
        outcome = _run_cell(_cells()[0], retries=1, backoff_s=0.0)
        assert not outcome.ok
        assert outcome.attempts == 2
        assert outcome.error_type == "RuntimeError"
        assert "permanent" in outcome.error

    def test_timeout_recorded(self, monkeypatch):
        def hang(scheme, benchmark, config):
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                pass

        monkeypatch.setattr(runner, "run_experiment", hang)
        start = time.monotonic()
        outcome = _run_cell(_cells()[0], cell_timeout=0.1)
        assert time.monotonic() - start < 5
        assert not outcome.ok
        assert outcome.timed_out
        assert outcome.error_type == "CellTimeout"

    def test_keyboard_interrupt_propagates(self, monkeypatch):
        def interrupted(scheme, benchmark, config):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner, "run_experiment", interrupted)
        with pytest.raises(KeyboardInterrupt):
            _run_cell(_cells()[0], retries=5)

    def test_system_exit_propagates(self, monkeypatch):
        def exiting(scheme, benchmark, config):
            raise SystemExit(3)

        monkeypatch.setattr(runner, "run_experiment", exiting)
        with pytest.raises(SystemExit):
            _run_cell(_cells()[0], retries=5)

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "not-a-number")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            run_sweep([])
        monkeypatch.setenv("REPRO_RETRIES", "2")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "bogus")
        with pytest.raises(ValueError, match="REPRO_CELL_TIMEOUT"):
            run_sweep([])
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "1.5")
        report = run_sweep([])  # empty grid: knobs parsed, nothing run
        assert report.outcomes == []

    @pytest.mark.parametrize("raw", ["nan", "NaN", "inf", "-inf"])
    def test_non_finite_timeout_rejected(self, monkeypatch, raw):
        # Regression: float("nan") defeats the ``seconds <= 0`` guard
        # (nan compares false to everything) and would reach
        # setitimer; inf would arm a timer that never fires.  Both
        # must be loud config errors, not silent misbehaviour.
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", raw)
        with pytest.raises(ValueError, match="REPRO_CELL_TIMEOUT.*finite"):
            run_sweep([])

    def test_negative_timeout_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "-1.5")
        with pytest.raises(ValueError, match="REPRO_CELL_TIMEOUT.*>= 0"):
            run_sweep([])

    def test_negative_retries_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "-3")
        with pytest.raises(ValueError, match="REPRO_RETRIES.*>= 0"):
            run_sweep([])

    def test_env_guard_helpers(self):
        assert runner._env_float("REPRO_NO_SUCH_VAR", 2.5) == 2.5
        assert runner._env_int("REPRO_NO_SUCH_VAR", 4) == 4


class TestJournal:
    def test_config_digest_sensitivity(self):
        a = _config_digest(CFG)
        assert a == _config_digest(ExperimentConfig(quota=8,
                                                    mcts_iterations=10))
        assert a != _config_digest(ExperimentConfig(quota=9,
                                                    mcts_iterations=10))

    def test_records_and_resume_bit_identical(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        full = sweep(**GRID, config=CFG, journal=journal)
        assert all(o.ok and not o.from_journal for o in full.outcomes)
        records = SweepJournal(journal).load()
        assert len(records) == len(full.outcomes)
        resumed = sweep(**GRID, config=CFG, journal=journal, resume=True)
        assert all(o.from_journal for o in resumed.outcomes)
        for before, after in zip(full.outcomes, resumed.outcomes):
            assert after.result == before.result  # bit-identical restore

    def test_partial_journal_resumes_missing_cells(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        full = sweep(**GRID, config=CFG, journal=journal)
        lines = journal.read_text().splitlines()
        # Simulate a kill: header + first record intact, second torn
        # mid-write.
        journal.write_text(
            lines[0] + "\n" + lines[1] + "\n"
            + lines[2][: len(lines[2]) // 2]
        )
        resumed = sweep(**GRID, config=CFG, journal=journal, resume=True)
        from_journal = [o.from_journal for o in resumed.outcomes]
        assert from_journal == [True, False]
        for before, after in zip(full.outcomes, resumed.outcomes):
            assert after.result == before.result
        # The re-run cell was journalled again: resume is idempotent.
        assert len(SweepJournal(journal).load()) == 2

    def test_stale_config_not_reused(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        sweep(**GRID, config=CFG, journal=journal)
        other = ExperimentConfig(quota=9, mcts_iterations=10)
        resumed = sweep(**GRID, config=other, journal=journal, resume=True)
        assert not any(o.from_journal for o in resumed.outcomes)

    def test_failed_cells_rerun_on_resume(self, tmp_path, monkeypatch):
        journal = tmp_path / "sweep.journal"

        def boom(scheme, benchmark, config):
            raise RuntimeError("boom")

        monkeypatch.setattr(runner, "run_experiment", boom)
        failed = run_sweep(_cells(), journal=journal)
        assert not any(o.ok for o in failed.outcomes)
        monkeypatch.undo()
        resumed = run_sweep(_cells(), journal=journal, resume=True)
        assert all(o.ok and not o.from_journal for o in resumed.outcomes)

    def test_header_written_once_and_skipped_by_load(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        sweep(**GRID, config=CFG, journal=journal)
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["schema"] == runner.JOURNAL_SCHEMA
        assert header["cells"] == 2
        # The header is metadata only: load() returns just the cells.
        assert len(SweepJournal(journal).load()) == 2
        # Resuming never writes a second header.
        sweep(**GRID, config=CFG, journal=journal, resume=True)
        kinds = [
            json.loads(line).get("kind")
            for line in journal.read_text().splitlines()
        ]
        assert kinds.count("header") == 1

    def test_empty_journal_resumes_fresh(self, tmp_path):
        # Regression: a sweep killed before the header fsync leaves a
        # zero-byte journal; --resume must start fresh, not error out.
        journal = tmp_path / "sweep.journal"
        journal.write_bytes(b"")
        report = sweep(**GRID, config=CFG, journal=journal, resume=True)
        assert all(o.ok and not o.from_journal for o in report.outcomes)
        # The fresh run journalled normally on top of the empty file.
        assert len(SweepJournal(journal).load()) == 2

    def test_header_only_journal_resumes_fresh(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        SweepJournal(journal).write_header(cells=2)
        report = sweep(**GRID, config=CFG, journal=journal, resume=True)
        assert all(o.ok and not o.from_journal for o in report.outcomes)

    def test_torn_header_resumes_fresh(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        SweepJournal(journal).write_header(cells=2)
        text = journal.read_text()
        journal.write_text(text[: len(text) // 2])  # torn mid-write
        report = sweep(**GRID, config=CFG, journal=journal, resume=True)
        assert all(o.ok and not o.from_journal for o in report.outcomes)

    def test_garbage_lines_skipped(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        journal.write_text(
            "not json at all\n"
            + json.dumps({"schema": 99, "scheme": "X"}) + "\n"
            + json.dumps(["wrong", "shape"]) + "\n"
        )
        assert SweepJournal(journal).load() == {}
        missing = SweepJournal(tmp_path / "nope.journal")
        assert missing.load() == {}


class TestCacheEvictions:
    def test_corrupt_entry_counted_and_removed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        assert cache.corrupt_evictions() == 0
        cache.placement("diamond", 8)
        (entry,) = tmp_path.glob("placement-*.json")
        cache.clear()  # drop tier 1 so the next read hits disk
        entry.write_text("{not json")
        result = cache.placement("diamond", 8)
        assert result.nodes  # recomputed fine
        assert cache.corrupt_evictions() == 1
        # Evicted then rewritten by the recompute.
        assert json.loads(entry.read_text())["nodes"]
        cache.clear()

    def test_semantically_corrupt_design_evicted(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.clear()
        cache.placement("diamond", 8)
        (entry,) = tmp_path.glob("placement-*.json")
        cache.clear()
        entry.write_text(json.dumps({"name": "diamond"}))  # missing keys
        cache.placement("diamond", 8)
        assert cache.corrupt_evictions() == 1
        cache.clear()
        assert cache.corrupt_evictions() == 0
