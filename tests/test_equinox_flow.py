"""Tests for the end-to-end EquiNox design flow."""

import pytest

from repro.core import design_equinox, design_from_groups
from repro.core.eir import make_group, EirDesign
from repro.core.equinox import EquiNoxDesign
from repro.core.grid import Grid
from repro.core.mcts import SearchConfig
from repro.core.placement import nqueen_best


@pytest.fixture(scope="module")
def design():
    return design_equinox(8, 8, SearchConfig(iterations_per_level=25, seed=0))


class TestDesignFlow:
    def test_complete_design(self, design):
        assert isinstance(design, EquiNoxDesign)
        assert design.placement.name == "nqueen"
        assert len(design.eir_design.groups) == 8
        assert design.num_eirs > 8  # more than one EIR per CB on average

    def test_deterministic(self, design):
        again = design_equinox(8, 8,
                               SearchConfig(iterations_per_level=25, seed=0))
        assert again.eir_design == design.eir_design
        assert again.evaluation.score == design.evaluation.score

    def test_summary_contents(self, design):
        text = design.summary()
        assert "EquiNox design on 8x8" in text
        assert "RDL crossings" in text
        assert "CB (" in text

    def test_search_metadata_attached(self, design):
        assert design.search is not None
        assert design.search.designs_evaluated > 0
        assert len(design.search.best_score_trace) == 8

    def test_rdl_plan_consistent(self, design):
        assert len(design.rdl_plan.links) == design.num_eirs
        assert design.rdl_plan.num_layers >= 1

    def test_custom_placement_override(self):
        grid = Grid(8)
        nodes = (2, 13, 23, 40, 52, 61, 38, 9)
        custom = design_equinox(
            8, 8, SearchConfig(iterations_per_level=5, seed=0),
            placement_nodes=nodes,
        )
        assert custom.placement.name == "custom"
        assert set(custom.placement.nodes) == set(nodes)


class TestDesignFromGroups:
    def test_wraps_hand_built_design(self):
        grid = Grid(8)
        placement = nqueen_best(grid, 8)
        cb = placement.nodes[0]
        groups = []
        for node in placement.nodes:
            groups.append(make_group(node, {}))
        eir_design = EirDesign(grid=grid, placement=placement.nodes,
                               groups=tuple(groups))
        wrapped = design_from_groups(grid, placement, eir_design)
        assert wrapped.num_eirs == 0
        assert wrapped.search is None
        assert wrapped.rdl_plan.num_crossings == 0


class TestScaledFlows:
    @pytest.mark.parametrize("width", [12, 16])
    def test_larger_networks(self, width):
        design = design_equinox(
            width, 8, SearchConfig(iterations_per_level=5, seed=0)
        )
        assert design.grid.width == width
        assert len(design.eir_design.groups) == 8
        # Placement still satisfies N-Queen-style non-alignment.
        nodes = design.placement.nodes
        grid = design.grid
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                assert not grid.same_row(a, b)
                assert not grid.same_col(a, b)
                assert not grid.same_diagonal(a, b)
