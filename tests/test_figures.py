"""Tests for the figure generators (small configurations)."""

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.harness.figures import (
    figure4,
    figure5,
    figure7,
    figure9,
    figure10,
    figure11,
    section66,
    table1,
)

SMALL = ExperimentConfig(quota=10, mcts_iterations=20)


class TestTable1:
    def test_rows_render(self):
        result = table1(SMALL)
        text = result.render()
        assert "Separable input first" in text
        assert "FR-FCFS" in text

    def test_hbm_bandwidth_from_model(self):
        result = table1(SMALL)
        values = dict(result.rows)
        assert values["HBM bandwidth"].startswith("256")


class TestFigure4:
    def test_small_run(self):
        result = figure4(width=8, injection_rate=0.3, cycles=300)
        assert set(result.variances) == {
            "top", "side", "diagonal", "diamond", "nqueen"
        }
        for heat in result.heatmaps.values():
            assert heat.shape == (8, 8)
        assert "Residence variance" in result.render()


class TestFigure5:
    def test_92_solutions(self):
        result = figure5(8)
        assert result.num_solutions == 92
        assert len(result.penalties) == 92
        assert result.best_penalty == min(result.penalties)

    def test_smaller_board(self):
        result = figure5(6)
        assert result.num_solutions == 4


class TestFigure7:
    def test_design_properties(self):
        result = figure7(SMALL)
        design = result.design
        assert len(design.eir_design.groups) == 8
        assert design.num_eirs > 0
        assert "EIRs" in result.render()


class TestFigure9And10:
    @pytest.fixture(scope="class")
    def fig9(self):
        return figure9(
            SMALL,
            schemes=["SingleBase", "SeparateBase", "EquiNox"],
            benchmarks=["hotspot", "kmeans"],
        )

    def test_grid_complete(self, fig9):
        assert len(fig9.results) == 6

    def test_normalized_baseline_is_one(self, fig9):
        means = fig9.normalized_means("cycles")
        assert means["SingleBase"] == pytest.approx(1.0)

    def test_per_benchmark_view(self, fig9):
        per = fig9.per_benchmark("cycles")
        assert set(per) == {"hotspot", "kmeans"}
        assert set(per["kmeans"]) == {"SingleBase", "SeparateBase", "EquiNox"}

    def test_render(self, fig9):
        text = fig9.render()
        assert "Execution time" in text
        assert "EDP" in text

    def test_figure10_from_fig9(self, fig9):
        fig10 = figure10(fig9)
        lat = fig10.mean_latency()
        assert set(lat) == set(fig9.schemes)
        assert all(v.total > 0 for v in lat.values())
        assert "ReqQ(ns)" in fig10.render()


class TestFigure11:
    def test_all_schemes_present(self):
        result = figure11(SMALL)
        assert len(result.areas) == 9
        assert all(a > 0 for a in result.areas.values())
        assert "vs SeparateBase" in result.render()


class TestSection66:
    def test_budgets(self):
        result = section66(SMALL)
        assert result.cmesh.num_bumps == 32768
        assert result.equinox.num_bumps < result.cmesh.num_bumps
        assert 50 < result.saving_percent < 95
        assert "µbump" in result.render()
