"""Tests for the network invariant checker, and invariant fuzzing."""

import random

import pytest

from repro.core.grid import Grid
from repro.noc import Network, NetworkInterface, Packet, PacketType
from repro.noc.validation import assert_healthy, check_invariants


def make_net(**kwargs):
    kwargs.setdefault("flit_bytes", 16)
    kwargs.setdefault("vc_classes", [(0,), (1,)])
    net = Network("t", Grid(4), **kwargs)
    nis = {n: NetworkInterface(net, n) for n in net.grid.nodes()}
    return net, nis


class TestChecker:
    def test_fresh_network_healthy(self):
        net, _ = make_net()
        assert check_invariants(net) == []
        assert_healthy(net)

    def test_detects_negative_credits(self):
        net, _ = make_net()
        net.routers[0].outputs[0].credits[0] = -1
        problems = check_invariants(net)
        assert any("negative credits" in p for p in problems)
        with pytest.raises(AssertionError):
            assert_healthy(net)

    def test_detects_credit_overflow(self):
        net, _ = make_net()
        out = net.routers[0].outputs[0]
        out.credits[0] = out.capacity + 3
        assert any("exceed capacity" in p for p in check_invariants(net))

    def test_detects_flit_count_drift(self):
        net, _ = make_net()
        net.routers[5].flit_count = 2
        assert any("flit_count" in p for p in check_invariants(net))

    def test_detects_foreign_vc_flit(self):
        net, _ = make_net()
        router = net.routers[3]
        packet = Packet(1, PacketType.READ_REPLY, 0, 3, 1, 0, vc_class=1)
        flit = packet.make_flits()[0]
        router.accept(0, 0, flit, 1)  # reply flit into the request VC
        assert any("foreign VC" in p for p in check_invariants(net))

    def test_route_without_flits_is_legal(self):
        """Mid-packet: flits forwarded, tail still on the upstream link."""
        net, _ = make_net()
        ivc = net.routers[2].inputs[0][0]
        ivc.out_port = 1
        assert check_invariants(net) == []


class TestInvariantsUnderLoad:
    """The checker holds at every cycle of a random run."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_healthy_throughout(self, seed):
        net, nis = make_net()
        rng = random.Random(seed)
        nodes = list(net.grid.nodes())
        pid = 0
        for cycle in range(250):
            for src in nodes:
                if rng.random() < 0.15:
                    dst = rng.choice(nodes)
                    if dst == src:
                        continue
                    pid += 1
                    reply = rng.random() < 0.5
                    nis[src].enqueue(Packet(
                        pid,
                        PacketType.READ_REPLY if reply
                        else PacketType.READ_REQUEST,
                        src, dst, 5 if reply else 1, 0,
                        vc_class=1 if reply else 0,
                    ))
            net.tick()
            if cycle % 10 == 0:
                assert_healthy(net)
            for n in nodes:
                while net.pop_delivered(n):
                    pass
        assert_healthy(net)
