"""Tests for the network invariant checker, and invariant fuzzing."""

import random

import pytest

from repro.core.grid import Grid
from repro.noc import MultiPortInterface, Network, NetworkInterface, Packet, PacketType
from repro.noc.validation import (
    AuditReport,
    assert_healthy,
    audit_network,
    check_invariants,
)


def make_net(**kwargs):
    kwargs.setdefault("flit_bytes", 16)
    kwargs.setdefault("vc_classes", [(0,), (1,)])
    net = Network("t", Grid(4), **kwargs)
    nis = {n: NetworkInterface(net, n) for n in net.grid.nodes()}
    return net, nis


class TestChecker:
    def test_fresh_network_healthy(self):
        net, _ = make_net()
        assert check_invariants(net) == []
        assert_healthy(net)

    def test_detects_negative_credits(self):
        net, _ = make_net()
        net.routers[0].outputs[0].credits[0] = -1
        problems = check_invariants(net)
        assert any("negative credits" in p for p in problems)
        with pytest.raises(AssertionError):
            assert_healthy(net)

    def test_detects_credit_overflow(self):
        net, _ = make_net()
        out = net.routers[0].outputs[0]
        out.credits[0] = out.capacity + 3
        assert any("exceed capacity" in p for p in check_invariants(net))

    def test_detects_flit_count_drift(self):
        net, _ = make_net()
        net.routers[5].flit_count = 2
        assert any("flit_count" in p for p in check_invariants(net))

    def test_detects_foreign_vc_flit(self):
        net, _ = make_net()
        router = net.routers[3]
        packet = Packet(1, PacketType.READ_REPLY, 0, 3, 1, 0, vc_class=1)
        flit = packet.make_flits()[0]
        router.accept(0, 0, flit, 1)  # reply flit into the request VC
        assert any("foreign VC" in p for p in check_invariants(net))

    def test_route_without_flits_is_legal(self):
        """Mid-packet: flits forwarded, tail still on the upstream link."""
        net, _ = make_net()
        router = net.routers[2]
        ivc = router.inputs[0][0]
        ivc.out_port = 1
        ivc.out_vc = 0
        router.outputs[1].owner[0] = (0, 0)
        assert check_invariants(net) == []


def run_traffic(net, nis, cycles=25):
    """Put a few multi-flit packets in flight and tick part-way."""
    for pid, (src, dst) in enumerate([(0, 15), (5, 10), (12, 3)], start=1):
        nis[src].enqueue(
            Packet(pid, PacketType.READ_REPLY, src, dst, 5, 0, vc_class=1)
        )
    for _ in range(cycles):
        net.tick()


class TestAuditReport:
    def test_healthy_report_carries_counters(self):
        net, nis = make_net()
        run_traffic(net, nis, cycles=200)
        for n in net.grid.nodes():
            while net.pop_delivered(n):
                pass
        report = audit_network(net)
        assert isinstance(report, AuditReport)
        assert report.ok
        assert report.counters["flits_injected"] == 15
        assert report.counters["packets_created"] == 3
        assert report.counters["packets_delivered"] == 3
        assert "healthy" in report.format()

    def test_violating_report_formats_problems(self):
        net, _ = make_net()
        net.routers[0].outputs[0].credits[0] = -1
        report = audit_network(net)
        assert not report.ok
        assert "violation" in report.format()
        assert any("negative credits" in p for p in report.problems)


class TestConservationAudit:
    """Deliberate corruptions each trip the matching audit check."""

    def test_injection_link_negative_credit_detected(self):
        net, nis = make_net()
        nis[0].buffers[0].link.credits[0] = -1
        problems = check_invariants(net)
        assert any(
            "negative credits" in p and "link into router 0" in p
            for p in problems
        )

    def test_injection_link_credit_leak_detected(self):
        net, nis = make_net()
        nis[7].buffers[0].link.credits[0] -= 1  # steal one credit
        problems = check_invariants(net)
        assert any(
            "credit leak" in p and "link into router 7" in p
            for p in problems
        )

    def test_mesh_link_credit_leak_detected(self):
        net, _ = make_net()
        # Pick a router-to-router link from the upstream map (ports 0..3
        # are the mesh directions; higher input ports are NI injection).
        (node, port), link = next(
            item for item in net.upstream.items() if item[0][1] < 4
        )
        link.credits[0] -= 1
        problems = check_invariants(net)
        assert any(
            "credit leak" in p and f"router {node} in(p{port}" in p
            for p in problems
        )

    def test_eject_credit_leak_detected(self):
        net, _ = make_net()
        router = net.routers[9]
        router.outputs[router.eject_ports[0]].credits[0] -= 1
        problems = check_invariants(net)
        assert any(
            "eject" in p and "credit leak" in p and "router 9" in p
            for p in problems
        )

    def test_flit_conservation_detects_drift(self):
        net, nis = make_net()
        run_traffic(net, nis)
        net.stats.flits_injected += 1
        assert any(
            "flit conservation" in p for p in check_invariants(net)
        )

    def test_packet_conservation_detects_lost_packet(self):
        net, nis = make_net()
        run_traffic(net, nis)
        # A packet silently vanishing from an NI source queue (or a
        # counter drift) breaks created == delivered + queued + in flight.
        net.stats.packets_created += 1
        assert any(
            "packet conservation" in p for p in check_invariants(net)
        )

    def test_delivered_count_drift_detected(self):
        net, nis = make_net()
        run_traffic(net, nis, cycles=200)
        # Remove a delivered packet from its receive queue without going
        # through pop_delivered: the per-node counter now disagrees.
        queue = next(q for q in net.receive_queues.values() if q)
        queue.popleft()
        assert any(
            "delivered-count drift" in p for p in check_invariants(net)
        )

    def test_orphan_output_owner_detected(self):
        net, _ = make_net()
        net.routers[4].outputs[1].owner[0] = (0, 0)
        problems = check_invariants(net)
        assert any("owned by in(p0,v0)" in p for p in problems)

    def test_ni_buffer_ownership_detected(self):
        net, nis = make_net()
        nis[3].buffers[0].cur_vc = 0  # claims a VC it never allocated
        problems = check_invariants(net)
        assert any(
            "NI 3" in p and "link owner" in p for p in problems
        )


class TestInvariantsUnderLoad:
    """The checker holds at every cycle of a random run."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_healthy_throughout(self, seed):
        net, nis = make_net()
        rng = random.Random(seed)
        nodes = list(net.grid.nodes())
        pid = 0
        for cycle in range(250):
            for src in nodes:
                if rng.random() < 0.15:
                    dst = rng.choice(nodes)
                    if dst == src:
                        continue
                    pid += 1
                    reply = rng.random() < 0.5
                    nis[src].enqueue(Packet(
                        pid,
                        PacketType.READ_REPLY if reply
                        else PacketType.READ_REQUEST,
                        src, dst, 5 if reply else 1, 0,
                        vc_class=1 if reply else 0,
                    ))
            net.tick()
            if cycle % 10 == 0:
                assert_healthy(net)
            for n in nodes:
                while net.pop_delivered(n):
                    pass
        assert_healthy(net)

    def test_multiport_and_extra_eject_ports_stay_healthy(self):
        """The audit covers k-port NIs and added ejection ports too."""
        net = Network("t", Grid(4), flit_bytes=16, vc_classes=[(0,), (1,)])
        nis = {}
        for n in net.grid.nodes():
            if n % 4 == 0:
                nis[n] = MultiPortInterface(net, n, num_ports=2)
            else:
                nis[n] = NetworkInterface(net, n)
        net.add_eject_port(5)
        rng = random.Random(7)
        nodes = list(net.grid.nodes())
        pid = 0
        for cycle in range(200):
            for src in nodes:
                if rng.random() < 0.2:
                    dst = rng.choice(nodes)
                    if dst == src:
                        continue
                    pid += 1
                    nis[src].enqueue(Packet(
                        pid, PacketType.READ_REPLY, src, dst, 5, 0,
                        vc_class=1,
                    ))
            net.tick()
            if cycle % 10 == 0:
                assert_healthy(net)
            for n in nodes:
                while net.pop_delivered(n):
                    pass
        assert_healthy(net)
