"""Unit tests for the grid coordinate helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.grid import AXIS_DIRECTIONS, Grid, direction_name


class TestAddressing:
    def test_node_coord_roundtrip(self):
        grid = Grid(8)
        for node in grid.nodes():
            x, y = grid.coord(node)
            assert grid.node(x, y) == node

    def test_row_major_order(self):
        grid = Grid(4)
        assert grid.node(0, 0) == 0
        assert grid.node(3, 0) == 3
        assert grid.node(0, 1) == 4
        assert grid.node(3, 3) == 15

    def test_rectangular_grid(self):
        grid = Grid(4, 2)
        assert grid.size == 8
        assert grid.coord(7) == (3, 1)

    def test_square_default(self):
        assert Grid(5).height == 5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Grid(0)
        with pytest.raises(ValueError):
            Grid(4, -1)

    def test_out_of_range_node(self):
        grid = Grid(3)
        with pytest.raises(ValueError):
            grid.coord(9)
        with pytest.raises(ValueError):
            grid.node(3, 0)

    def test_contains(self):
        grid = Grid(3)
        assert grid.contains(2, 2)
        assert not grid.contains(3, 0)
        assert not grid.contains(-1, 0)


class TestDistances:
    def test_hops_manhattan(self):
        grid = Grid(8)
        assert grid.hops(grid.node(0, 0), grid.node(7, 7)) == 14
        assert grid.hops(grid.node(3, 3), grid.node(3, 3)) == 0
        assert grid.hops(grid.node(1, 2), grid.node(4, 0)) == 5

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_hops_symmetric(self, a, b):
        grid = Grid(8)
        assert grid.hops(a, b) == grid.hops(b, a)

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    def test_hops_triangle_inequality(self, a, b, c):
        grid = Grid(8)
        assert grid.hops(a, c) <= grid.hops(a, b) + grid.hops(b, c)

    def test_neighbors_interior(self):
        grid = Grid(8)
        node = grid.node(3, 3)
        assert len(grid.neighbors(node)) == 4
        assert all(grid.hops(node, nb) == 1 for nb in grid.neighbors(node))

    def test_neighbors_corner(self):
        grid = Grid(8)
        assert len(grid.neighbors(grid.node(0, 0))) == 2

    def test_diagonal_neighbors(self):
        grid = Grid(8)
        node = grid.node(3, 3)
        diag = grid.diagonal_neighbors(node)
        assert len(diag) == 4
        assert all(grid.hops(node, d) == 2 for d in diag)

    def test_ring_counts(self):
        grid = Grid(9)
        center = grid.node(4, 4)
        assert len(grid.ring(center, 1)) == 4
        assert len(grid.ring(center, 2)) == 8
        assert len(grid.ring(center, 0)) == 1

    def test_ring_radius_exact(self):
        grid = Grid(9)
        center = grid.node(4, 4)
        for r in (1, 2, 3):
            assert all(grid.hops(center, n) == r for n in grid.ring(center, r))

    def test_ring_clipped_at_boundary(self):
        grid = Grid(8)
        corner = grid.node(0, 0)
        assert len(grid.ring(corner, 2)) == 3  # (2,0), (1,1), (0,2)

    def test_within(self):
        grid = Grid(9)
        center = grid.node(4, 4)
        assert len(grid.within(center, 2)) == 12
        assert center not in grid.within(center, 3)

    def test_ring_negative_radius(self):
        with pytest.raises(ValueError):
            Grid(4).ring(0, -1)


class TestAlignment:
    def test_same_row_col(self):
        grid = Grid(8)
        assert grid.same_row(grid.node(1, 3), grid.node(6, 3))
        assert grid.same_col(grid.node(2, 0), grid.node(2, 7))
        assert not grid.same_row(grid.node(1, 3), grid.node(1, 4))

    def test_same_diagonal(self):
        grid = Grid(8)
        assert grid.same_diagonal(grid.node(0, 0), grid.node(5, 5))
        assert grid.same_diagonal(grid.node(2, 5), grid.node(5, 2))
        assert not grid.same_diagonal(grid.node(0, 0), grid.node(1, 2))

    def test_same_diagonal_excludes_self(self):
        grid = Grid(8)
        assert not grid.same_diagonal(7, 7)

    def test_direction_signs(self):
        grid = Grid(8)
        a, b = grid.node(3, 3), grid.node(6, 1)
        assert grid.direction(a, b) == (1, -1)
        assert grid.direction(b, a) == (-1, 1)
        assert grid.direction(a, a) == (0, 0)


class TestDirections:
    def test_axis_direction_names(self):
        names = {direction_name(d) for d in AXIS_DIRECTIONS}
        assert names == {"x+", "x-", "y+", "y-"}

    def test_direction_name_invalid(self):
        with pytest.raises(ValueError):
            direction_name((1, 1))
