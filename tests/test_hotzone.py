"""Unit tests for hot zones and the placement scoring policy."""

import pytest
from hypothesis import given, strategies as st

from repro.core import hotzone
from repro.core.grid import Grid


class TestZones:
    def test_daz_interior(self):
        grid = Grid(8)
        cb = grid.node(4, 4)
        daz = hotzone.daz(grid, cb)
        assert daz == {
            grid.node(3, 4), grid.node(5, 4), grid.node(4, 3), grid.node(4, 5)
        }

    def test_caz_interior(self):
        grid = Grid(8)
        cb = grid.node(4, 4)
        caz = hotzone.caz(grid, cb)
        assert caz == {
            grid.node(3, 3), grid.node(5, 3), grid.node(3, 5), grid.node(5, 5)
        }

    def test_hot_zone_is_eight_tiles_interior(self):
        grid = Grid(8)
        assert len(hotzone.hot_zone(grid, grid.node(3, 3))) == 8

    def test_hot_zone_clipped_at_corner(self):
        grid = Grid(8)
        assert len(hotzone.hot_zone(grid, grid.node(0, 0))) == 3

    def test_daz_caz_disjoint(self):
        grid = Grid(8)
        cb = grid.node(2, 5)
        assert not hotzone.daz(grid, cb) & hotzone.caz(grid, cb)


class TestOverlaps:
    def test_far_apart_no_overlap(self):
        grid = Grid(8)
        placement = (grid.node(0, 0), grid.node(7, 7))
        assert hotzone.overlap_tiles(grid, placement) == set()

    def test_adjacent_diagonal_cbs_overlap(self):
        grid = Grid(8)
        placement = (grid.node(3, 3), grid.node(4, 4))
        overlaps = hotzone.overlap_tiles(grid, placement)
        assert overlaps  # hot zones share tiles
        assert grid.node(4, 3) in overlaps
        assert grid.node(3, 4) in overlaps

    def test_knight_move_daz_caz_overlap(self):
        grid = Grid(8)
        # A knight's move apart: DAZ of one meets CAZ of the other.
        placement = (grid.node(2, 2), grid.node(3, 4))
        kinds = hotzone.overlap_kinds(grid, placement)
        assert any("caz-daz" in k for k in kinds.values())

    def test_single_cb_no_overlap(self):
        grid = Grid(8)
        assert hotzone.overlap_tiles(grid, (grid.node(4, 4),)) == set()

    def test_nqueen_has_no_dazdaz_cazcaz_overlaps(self):
        """Paper: N-Queen placements only produce DAZ-CAZ overlaps."""
        from repro.core.nqueen import solve_all, solution_to_nodes

        grid = Grid(8)
        for cols in solve_all(8)[:20]:
            placement = solution_to_nodes(grid, cols)
            kinds = hotzone.overlap_kinds(grid, placement)
            for tile_kinds in kinds.values():
                assert tile_kinds <= {"caz-daz"}, tile_kinds


class TestPenalty:
    def test_node_penalty_triangle_numbers(self):
        assert hotzone.node_penalty(0) == 0
        assert hotzone.node_penalty(1) == 1
        assert hotzone.node_penalty(2) == 3
        assert hotzone.node_penalty(3) == 6
        assert hotzone.node_penalty(4) == 10

    def test_node_penalty_negative(self):
        with pytest.raises(ValueError):
            hotzone.node_penalty(-1)

    def test_no_overlap_zero_penalty(self):
        grid = Grid(8)
        placement = (grid.node(0, 0), grid.node(7, 7))
        assert hotzone.placement_penalty(grid, placement) == 0

    def test_clustered_worse_than_spread(self):
        grid = Grid(8)
        clustered = tuple(grid.node(x, 0) for x in range(4))
        spread = (
            grid.node(0, 0), grid.node(7, 0), grid.node(0, 7), grid.node(7, 7)
        )
        assert hotzone.placement_penalty(grid, clustered) > (
            hotzone.placement_penalty(grid, spread)
        )

    def test_penalty_map_matches_total(self):
        grid = Grid(8)
        placement = tuple(grid.node(x, 0) for x in range(0, 8, 2))
        pmap = hotzone.penalty_map(grid, placement)
        assert sum(pmap.values()) == hotzone.placement_penalty(grid, placement)

    @given(st.sets(st.integers(0, 63), min_size=2, max_size=8))
    def test_penalty_non_negative(self, nodes):
        grid = Grid(8)
        assert hotzone.placement_penalty(grid, tuple(nodes)) >= 0

    def test_penalty_permutation_invariant(self):
        grid = Grid(8)
        placement = (5, 18, 33, 60)
        shuffled = (33, 60, 5, 18)
        assert hotzone.placement_penalty(grid, placement) == (
            hotzone.placement_penalty(grid, shuffled)
        )


class TestRanking:
    def test_rank_sorted_ascending(self):
        grid = Grid(8)
        placements = [
            tuple(grid.node(x, 0) for x in range(4)),
            (grid.node(0, 0), grid.node(7, 0), grid.node(0, 7), grid.node(7, 7)),
        ]
        ranked = hotzone.rank_placements(grid, placements)
        assert ranked[0][0] <= ranked[1][0]

    def test_rank_deterministic_ties(self):
        grid = Grid(8)
        a = (grid.node(0, 0), grid.node(7, 7))
        b = (grid.node(7, 0), grid.node(0, 7))
        first = hotzone.rank_placements(grid, [a, b])
        second = hotzone.rank_placements(grid, [b, a])
        assert first == second
