"""Unit tests for network interfaces, including the EquiNox NI."""


from repro.core.eir import EirDesign, make_group
from repro.core.grid import Grid
from repro.noc import (
    EquiNoxInterface,
    MultiPortInterface,
    Network,
    NetworkInterface,
    Packet,
    PacketType,
)
from repro.noc.interface import SerializationCore


def make_net(width=8, **kwargs):
    kwargs.setdefault("flit_bytes", 16)
    kwargs.setdefault("vc_classes", [(0, 1)])
    return Network("t", Grid(width), **kwargs)


def reply(pid, src, dst, size=5):
    return Packet(pid, PacketType.READ_REPLY, src, dst, size, 0, vc_class=0)


def drain(net, nodes, cycles=2000):
    out = []
    for _ in range(cycles):
        net.tick()
        for n in nodes:
            while True:
                p = net.pop_delivered(n)
                if p is None:
                    break
                out.append(p)
        if net.idle():
            break
    return out


class TestBaseNI:
    def test_single_buffer(self):
        net = make_net()
        ni = NetworkInterface(net, 0)
        assert len(ni.buffers) == 1
        assert ni.buffers[0].target_node == 0

    def test_backlog_counts_source_queue(self):
        net = make_net()
        ni = NetworkInterface(net, 0)
        for pid in range(4):
            ni.enqueue(reply(pid + 1, 0, 63))
        assert ni.backlog() == 4
        net.tick()
        assert ni.backlog() == 3  # one packet moved into the buffer

    def test_idle_after_drain(self):
        net = make_net()
        ni = NetworkInterface(net, 0)
        ni.enqueue(reply(1, 0, 63))
        drain(net, [63])
        assert ni.idle()


class TestSerializationCore:
    def test_reserve_serial(self):
        core = SerializationCore()
        first = core.reserve(10, 5, 1.0)
        second = core.reserve(10, 5, 1.0)
        assert first == 10
        assert second == 15

    def test_rate_scales_duration(self):
        core = SerializationCore()
        core.reserve(0, 8, 2.0)
        assert core.free_at == 4

    def test_core_limits_aggregate_injection(self):
        """A multi-buffer NI cannot exceed its core's bandwidth."""
        net = make_net(8)
        ni = MultiPortInterface(net, 0, num_ports=4)
        n_packets = 20
        for pid in range(n_packets):
            ni.enqueue(reply(pid + 1, 0, 63 - (pid % 3)))
        received = drain(net, list(net.grid.nodes()), cycles=5000)
        assert len(received) == n_packets
        # 20 data packets x 5 flits at 2 flits/cycle core = >= 50 cycles.
        assert net.cycle >= 50

    def test_shared_core_across_nis(self):
        netA = make_net(4)
        core = SerializationCore()
        a = NetworkInterface(netA, 0, core=core)
        b = NetworkInterface(netA, 5, core=core)
        a.enqueue(reply(1, 0, 15))
        b.enqueue(reply(2, 5, 15))
        drain(netA, [15])
        # Both packets went through one core: total reserve time stacked.
        assert core.free_at >= 5


class TestMultiPortNI:
    def test_four_ports_on_same_router(self):
        net = make_net()
        ni = MultiPortInterface(net, 9, num_ports=4)
        assert len(ni.buffers) == 4
        assert all(b.target_node == 9 for b in ni.buffers)
        # Four distinct injection ports were added to the router.
        ports = {b.target_port for b in ni.buffers}
        assert len(ports) == 4

    def test_parallel_delivery(self):
        net = make_net()
        ni = MultiPortInterface(net, 0, num_ports=4)
        for pid in range(8):
            ni.enqueue(reply(pid + 1, 0, 56 + pid % 8))
        received = drain(net, list(net.grid.nodes()))
        assert len(received) == 8


def build_equinox_ni(net, cb=None):
    grid = net.grid
    cb = cb if cb is not None else grid.node(3, 3)
    groups = (
        make_group(
            cb,
            {
                (1, 0): grid.node(5, 3),
                (-1, 0): grid.node(1, 3),
                (0, 1): grid.node(3, 5),
                (0, -1): grid.node(3, 1),
            },
        ),
    )
    design = EirDesign(grid=grid, placement=(cb,), groups=groups)
    return EquiNoxInterface(net, cb, design), design, cb


class TestEquiNoxNI:
    def test_five_buffers(self):
        net = make_net()
        ni, _design, cb = build_equinox_ni(net)
        assert len(ni.buffers) == 5
        assert ni.buffers[0].target_node == cb
        assert ni.num_idle_buffers == 0

    def test_eir_buffers_use_interposer(self):
        net = make_net()
        ni, _design, _cb = build_equinox_ni(net)
        assert not ni.buffers[0].interposer
        assert all(b.interposer for b in ni.buffers[1:])
        assert all(b.length == 2.0 for b in ni.buffers[1:])

    def test_axis_destination_single_eir(self):
        """Axis destinations have exactly one shortest-path EIR."""
        net = make_net()
        ni, _design, cb = build_equinox_ni(net)
        grid = net.grid
        dst = grid.node(7, 3)  # due east
        choices = ni._choices[dst]
        assert len(choices) == 1
        assert ni.buffers[choices[0]].target_node == grid.node(5, 3)

    def test_quadrant_destination_two_eirs(self):
        net = make_net()
        ni, _design, cb = build_equinox_ni(net)
        grid = net.grid
        dst = grid.node(6, 6)  # south-east quadrant
        choices = ni._choices[dst]
        assert len(choices) == 2
        targets = {ni.buffers[i].target_node for i in choices}
        assert targets == {grid.node(5, 3), grid.node(3, 5)}

    def test_injection_spreads_over_eirs(self):
        net = make_net()
        ni, _design, cb = build_equinox_ni(net)
        grid = net.grid
        for pid in range(12):
            ni.enqueue(reply(pid + 1, cb, grid.node(7, 7)))
        received = drain(net, list(net.grid.nodes()))
        assert len(received) == 12
        inject_routers = {p.inject_router for p in received}
        # Quadrant traffic round-robins over the two shortest-path EIRs
        # (and may fall back to the local router under pressure).
        assert grid.node(5, 3) in inject_routers or grid.node(3, 5) in inject_routers
        assert len(inject_routers) >= 2

    def test_no_detour_injection(self):
        """Packets only inject at routers on a minimal path."""
        net = make_net()
        ni, _design, cb = build_equinox_ni(net)
        grid = net.grid
        dsts = [grid.node(7, 7), grid.node(0, 0), grid.node(7, 3),
                grid.node(3, 0)]
        packets = []
        for pid, dst in enumerate(dsts):
            p = reply(pid + 1, cb, dst)
            packets.append(p)
            ni.enqueue(p)
        drain(net, list(net.grid.nodes()))
        for p in packets:
            inj = p.inject_router
            assert (
                grid.hops(cb, inj) + grid.hops(inj, p.dst)
                == grid.hops(cb, p.dst)
            )

    def test_partial_group_padding(self):
        """Boundary CBs with fewer EIRs keep the 5-buffer layout count."""
        net = make_net()
        grid = net.grid
        cb = grid.node(0, 0)
        groups = (make_group(cb, {(1, 0): grid.node(2, 0)}),)
        design = EirDesign(grid=grid, placement=(cb,), groups=groups)
        ni = EquiNoxInterface(net, cb, design)
        assert len(ni.buffers) == 2
        assert ni.num_idle_buffers == 3

    def test_head_of_line_retry(self):
        """Buffer Selection 1: if no eligible buffer, retry (no bypass)."""
        net = make_net()
        ni, _design, cb = build_equinox_ni(net)
        grid = net.grid
        east = grid.node(7, 3)
        # Fill the east EIR buffer and the local buffer.
        ni.enqueue(reply(1, cb, east))
        ni.enqueue(reply(2, cb, east))
        ni.enqueue(reply(3, cb, east))
        net.tick()
        net.tick()
        # Packet 3 must wait for a buffer rather than skip ahead.
        assert ni.backlog() >= 1
        received = drain(net, list(net.grid.nodes()))
        assert [p.pid for p in received] == [1, 2, 3]
