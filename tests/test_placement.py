"""Unit tests for the CB placement strategies."""

import pytest

from repro.core import placement
from repro.core.grid import Grid


@pytest.fixture
def grid():
    return Grid(8)


class TestTopSide:
    def test_top_on_first_row(self, grid):
        result = placement.top(grid, 8)
        assert all(grid.coord(n)[1] == 0 for n in result.nodes)
        assert len(set(result.nodes)) == 8

    def test_side_on_left_column(self, grid):
        result = placement.side(grid, 8)
        cols = {grid.coord(n)[0] for n in result.nodes}
        assert cols == {0}
        assert len(set(result.nodes)) == 8

    def test_top_fewer_cbs(self, grid):
        result = placement.top(grid, 4)
        assert len(result) == 4


class TestDiagonalDiamond:
    def test_diagonal_on_main_diagonal(self, grid):
        result = placement.diagonal(grid, 8)
        assert all(x == y for x, y in map(grid.coord, result.nodes))

    def test_diamond_distinct_rows_and_columns(self, grid):
        """The paper relies on Diamond having no shared rows/columns."""
        result = placement.diamond(grid, 8)
        coords = [grid.coord(n) for n in result.nodes]
        assert len({x for x, _ in coords}) == 8
        assert len({y for _, y in coords}) == 8

    def test_diamond_has_diagonal_neighbors(self, grid):
        """The weakness the paper calls out: adjacent diagonal CBs."""
        result = placement.diamond(grid, 8)
        found = any(
            grid.same_diagonal(a, b) and grid.hops(a, b) == 2
            for a in result.nodes
            for b in result.nodes
            if a != b
        )
        assert found

    def test_diagonal_requires_square(self):
        with pytest.raises(ValueError):
            placement.diagonal(Grid(8, 4), 4)


class TestNQueen:
    def test_nqueen_no_alignment(self, grid):
        result = placement.nqueen_best(grid, 8)
        nodes = result.nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                assert not grid.same_row(a, b)
                assert not grid.same_col(a, b)
                assert not grid.same_diagonal(a, b)

    def test_nqueen_best_is_minimal_penalty(self, grid):
        """The chosen solution must beat (or tie) every other solution."""
        from repro.core.hotzone import placement_penalty
        from repro.core.nqueen import solve_all, solution_to_nodes

        best = placement.nqueen_best(grid, 8)
        for cols in solve_all(8):
            nodes = solution_to_nodes(grid, cols)
            assert placement_penalty(grid, nodes) >= best.penalty

    def test_nqueen_beats_figure4_placements(self, grid):
        """N-Queen's penalty is the lowest among the compared placements."""
        best = placement.nqueen_best(grid, 8)
        for name in ("top", "side", "diagonal", "diamond"):
            other = placement.by_name(name, grid, 8)
            assert best.penalty <= other.penalty

    def test_nqueen_pruned_for_fewer_cbs(self, grid):
        result = placement.nqueen_best(grid, 6)
        assert len(result) == 6
        coords = [grid.coord(n) for n in result.nodes]
        assert len({x for x, _ in coords}) == 6
        assert len({y for _, y in coords}) == 6

    def test_nqueen_large_grid_sampled(self):
        grid = Grid(12)
        result = placement.nqueen_best(grid, 8, max_solutions=8)
        assert len(result) == 8

    def test_nqueen_too_many_cbs(self, grid):
        with pytest.raises(ValueError):
            placement.nqueen_best(grid, 9)


class TestKnightMove:
    def test_knight_move_many_cbs(self, grid):
        result = placement.knight_move(grid, 12)
        assert len(result) == 12
        assert len(set(result.nodes)) == 12

    def test_knight_move_spacing(self, grid):
        """Consecutive knight-placed CBs are a knight's move apart."""
        result = placement.knight_move(grid, 8)
        a, b = result.nodes[0], result.nodes[1]
        ax, ay = grid.coord(a)
        bx, by = grid.coord(b)
        assert (abs(ax - bx), abs(ay - by)) in {(1, 2), (2, 1)}

    def test_knight_move_fills_whole_grid(self):
        grid = Grid(4)
        result = placement.knight_move(grid, 16)
        assert sorted(result.nodes) == list(grid.nodes())

    def test_knight_move_invalid(self, grid):
        with pytest.raises(ValueError):
            placement.knight_move(grid, 0)
        with pytest.raises(ValueError):
            placement.knight_move(grid, 65)


class TestByName:
    def test_all_strategies_available(self, grid):
        for name in placement.STRATEGIES:
            result = placement.by_name(name, grid, 8)
            assert len(result) == 8
            assert result.name == name

    def test_unknown_name(self, grid):
        with pytest.raises(ValueError, match="unknown placement"):
            placement.by_name("spiral", grid, 8)

    def test_penalty_recorded(self, grid):
        result = placement.by_name("top", grid, 8)
        from repro.core.hotzone import placement_penalty

        assert result.penalty == placement_penalty(grid, result.nodes)
