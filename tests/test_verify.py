"""The property-verification harness: cases, strategies, artifacts, replay.

The fuzzing campaigns themselves ride tier-1 through
``TestFastProfile`` (the ISSUE-mandated >=200 deterministic configs);
everything else here pins the harness machinery with plain,
non-hypothesis tests so a harness regression is distinguishable from a
simulator regression.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.gpu.system import SimulationStall
from repro.harness.experiment import config_digest
from repro.noc.faults import FaultInjector, FaultPlan, FaultSpec
from repro.noc.validation import NetworkAuditError
from repro.verify import (
    PROPERTY_DIFFERENTIAL,
    PROPERTY_ENGINE_PARITY,
    PROPERTY_INVARIANTS,
    VerifyCase,
    VerifyFailure,
    VerifyProfile,
    artifact_bytes,
    base_case,
    build_artifact,
    check_differential_case,
    check_engine_parity_case,
    check_invariants_case,
    differential_variants,
    engine_counterpart,
    hermetic_env,
    load_artifact,
    replay,
    run_case,
    run_profile,
    sanitize_error,
    write_failure,
)
from repro.verify.harness import _drive
from repro.verify.strategies import cases

QUICK = dict(scheme="SingleBase", benchmark="backprop", width=4,
             num_cbs=3, quota=3, seed=7)

GEN = settings(
    deadline=None,
    max_examples=25,
    derandomize=True,
    database=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVerifyCase:
    def test_round_trip_and_digest_stable(self):
        case = VerifyCase(
            faults=(FaultSpec(kind="mesh_link", node=0, peer=1,
                              at_cycle=5, heal_cycle=9),),
            **QUICK,
        )
        again = VerifyCase.from_dict(case.to_dict())
        assert again == case
        assert again.digest() == case.digest()
        assert len(case.digest()) == 16

    def test_digest_sensitive_to_every_knob(self):
        case = VerifyCase(**QUICK)
        for variant in (
            case.with_variant(seed=8),
            case.with_variant(scheduler="dense"),
            case.with_variant(engine="vector"),
            case.with_variant(telemetry=2),
            case.with_variant(quota=4),
        ):
            assert variant.digest() != case.digest()

    def test_invalid_cases_rejected(self):
        with pytest.raises(ValueError):
            VerifyCase(scheme="NoSuchScheme", benchmark="backprop",
                       width=4, num_cbs=3, quota=3, seed=0)
        with pytest.raises(ValueError):
            VerifyCase(scheme="SingleBase", benchmark="nope",
                       width=4, num_cbs=3, quota=3, seed=0)
        with pytest.raises(ValueError):  # num_cbs > width
            VerifyCase(scheme="SingleBase", benchmark="backprop",
                       width=4, num_cbs=5, quota=3, seed=0)
        with pytest.raises(ValueError):  # odd width for CMesh
            VerifyCase(scheme="Interposer-CMesh", benchmark="backprop",
                       width=5, num_cbs=3, quota=3, seed=0)
        with pytest.raises(ValueError):
            VerifyCase.from_dict({**QUICK, "bogus_knob": 1})

    def test_from_dict_names_missing_fields(self):
        # A truncated/hand-edited artifact must fail with the same
        # ValueError story as every other validation — not a raw
        # TypeError from the dataclass constructor.
        partial = {k: v for k, v in QUICK.items() if k != "quota"}
        with pytest.raises(ValueError, match=r"missing.*quota"):
            VerifyCase.from_dict(partial)
        with pytest.raises(ValueError, match="missing"):
            VerifyCase.from_dict({})

    def test_experiment_config_bridge(self):
        case = VerifyCase(**QUICK)
        cfg = case.experiment_config()
        assert (cfg.width, cfg.num_cbs, cfg.quota, cfg.seed) == (
            case.width, case.num_cbs, case.quota, case.seed
        )
        assert config_digest(cfg) == config_digest(case.experiment_config())

    def test_armed_faults_never_fire_but_always_bind(self):
        case = VerifyCase(**QUICK)
        armed = case.armed_faults()
        assert armed  # never vacuously empty
        assert all(s.at_cycle > case.max_cycles for s in armed)
        fabric_case = case.with_variant(faults=armed)
        with hermetic_env():
            from repro.harness.experiment import build_fabric

            fabric = build_fabric(case.scheme, case.experiment_config())
        injector = FaultInjector(fabric, FaultPlan(fabric_case.faults))
        # The mesh_link(0, 1) anchor always binds, so the armed plan is
        # never vacuously empty even on schemes with no EIR links.
        assert injector.summary()["events"] >= 1
        assert injector.applied == 0


class TestStrategies:
    @GEN
    @given(case=cases())
    def test_generated_cases_are_valid_and_serializable(self, case):
        # Construction already enforces validity; pin the round trip
        # and that fault plans pass FaultSpec validation end to end.
        assert VerifyCase.from_dict(
            json.loads(json.dumps(case.to_dict()))
        ) == case
        for spec in case.faults:
            assert spec.heal_cycle is None or spec.heal_cycle > spec.at_cycle

    def test_generation_is_deterministic(self):
        def collect():
            digests = []

            @settings(
                deadline=None, max_examples=15, derandomize=True,
                database=None,
                suppress_health_check=[HealthCheck.too_slow],
            )
            @given(case=cases())
            def sample(case):
                digests.append(case.digest())

            sample()
            return digests

        first, second = collect(), collect()
        assert first == second
        assert len(set(first)) > 1  # actually exploring the space

    def test_widths_without_even_entry_rejected_up_front(self):
        # Interposer-CMesh needs an even width; a custom odd-only pool
        # must fail at strategy construction with a clear message, not
        # with sampled_from([]) mid-campaign.
        with pytest.raises(ValueError, match="even"):
            cases(widths=(5, 7))
        with pytest.raises(ValueError, match="empty"):
            cases(widths=())


class TestDrivers:
    def test_invariants_pass_on_known_good_case(self):
        run = check_invariants_case(VerifyCase(**QUICK))
        assert run.transactions_completed == run.transactions_total
        assert run.result.cycles < run.case.max_cycles

    def test_liveness_violation_raises(self):
        # max_cycles far below what the workload needs: the bounded
        # liveness check must trip, not silently accept a partial run.
        case = VerifyCase(**{**QUICK, "quota": 10}).with_variant(
            max_cycles=100, watchdog_cycles=5000
        )
        with pytest.raises(VerifyFailure, match="liveness"):
            check_invariants_case(case)

    def test_differential_variants_cover_the_cross_product(self):
        case = VerifyCase(**QUICK)
        variants = differential_variants(case)
        assert set(variants) == {
            "scheduler", "telemetry", "armed-faults", "all"
        }
        assert variants["scheduler"].scheduler == "dense"
        assert variants["telemetry"].telemetry > 0
        assert variants["armed-faults"].faults
        assert base_case(case).faults == ()

    def test_differential_passes_on_known_good_case(self):
        fp = check_differential_case(VerifyCase(**QUICK))
        assert len(fp) == 64

    def test_engine_parity_keeps_firing_faults(self):
        # Unlike the differential baseline, the parity check runs the
        # case verbatim: a firing fault plan must survive into both
        # engine runs and the fingerprints must still agree.
        case = VerifyCase(
            faults=(FaultSpec(kind="mesh_link", node=0, peer=1,
                              at_cycle=40, heal_cycle=90),),
            **QUICK,
        )
        assert case.faulted
        twin = engine_counterpart(case)
        assert twin.engine == "vector"
        assert twin.faults == case.faults
        assert engine_counterpart(twin).engine == "object"
        fp = check_engine_parity_case(case)
        assert len(fp) == 64

    def test_engine_parity_detects_divergence(self, monkeypatch):
        # Force the twin run to report a different fingerprint: the
        # property must raise a shrinkable DifferentialFailure naming
        # the engine, not pass silently.
        from repro.verify import differential as diff_mod
        from repro.verify.differential import DifferentialFailure

        real = diff_mod.run_case

        def skewed(case, validate_every=0):
            run = real(case, validate_every=validate_every)
            if case.engine == "vector":
                object.__setattr__(run, "stats_fingerprint", "f" * 64)
            return run

        monkeypatch.setattr(diff_mod, "run_case", skewed)
        with pytest.raises(DifferentialFailure, match="engine=vector"):
            check_engine_parity_case(VerifyCase(**QUICK))

    def test_hermetic_env_blocks_leaking_knobs(self, monkeypatch):
        case = VerifyCase(**QUICK)
        baseline = run_case(case, validate_every=0).stats_fingerprint
        monkeypatch.setenv("REPRO_SCHEDULER", "dense")
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '[{"kind": "mesh_link", "node": 0, "peer": 1, "at_cycle": 3,'
            ' "heal_cycle": 8}]',
        )
        assert run_case(case, validate_every=0).stats_fingerprint == baseline


class TestArtifacts:
    def test_bytes_identical_across_builds(self, tmp_path):
        case = VerifyCase(**QUICK)
        error = "VerifyFailure: buffer <Buffer at 0x7f0012abcdef> stuck"
        first = artifact_bytes(PROPERTY_INVARIANTS, case, error)
        second = artifact_bytes(PROPERTY_INVARIANTS, case, error)
        assert first == second
        path = write_failure(tmp_path, PROPERTY_INVARIANTS, case, error)
        assert path.read_bytes() == first
        # Addresses are scrubbed, so two processes produce equal bytes.
        assert b"0x7f0012abcdef" not in first
        assert sanitize_error(error) == sanitize_error(
            error.replace("0x7f0012abcdef", "0x55aa55aa55aa")
        )

    def test_load_rejects_corruption(self, tmp_path):
        case = VerifyCase(**QUICK)
        path = write_failure(tmp_path, PROPERTY_INVARIANTS, case, "err")
        record = load_artifact(path)
        assert record["case"] == case
        tampered = json.loads(path.read_text())
        tampered["case"]["quota"] = 9  # digest no longer matches
        bad = tmp_path / "tampered.json"
        bad.write_text(json.dumps(tampered))
        with pytest.raises(ValueError, match="case_digest"):
            load_artifact(bad)
        with pytest.raises(ValueError, match="kind"):
            other = tmp_path / "other.json"
            other.write_text(json.dumps({"kind": "telemetry"}))
            load_artifact(other)
        with pytest.raises(ValueError, match="property"):
            record = build_artifact(PROPERTY_DIFFERENTIAL, case, "err")
            record["property"] = "bogus"
            broken = tmp_path / "broken.json"
            broken.write_text(json.dumps(record))
            load_artifact(broken)

    def test_replay_round_trip(self, tmp_path):
        # A failing case (impossible cycle bound) still reproduces on
        # replay; a passing case reports fixed.
        failing = VerifyCase(**{**QUICK, "quota": 10}).with_variant(
            max_cycles=100, watchdog_cycles=5000
        )
        fail_path = write_failure(
            tmp_path, PROPERTY_INVARIANTS, failing, "liveness"
        )
        assert replay(fail_path) is True
        ok_path = write_failure(
            tmp_path, PROPERTY_INVARIANTS, VerifyCase(**QUICK), "fixed"
        )
        assert replay(ok_path) is False

    def test_replay_counts_runtime_failures_as_reproduced(
        self, tmp_path, monkeypatch
    ):
        # A bug that manifests as NetworkAuditError or SimulationStall
        # (RuntimeError subclasses) must count as "still reproduces",
        # not crash the one-command repro with a raw traceback.
        case = VerifyCase(**QUICK)
        path = write_failure(tmp_path, PROPERTY_INVARIANTS, case, "audit")
        for exc in (NetworkAuditError([]), SimulationStall("stuck")):
            def raising(_case, exc=exc):
                raise exc

            monkeypatch.setattr(
                "repro.verify.invariants.check_invariants_case", raising
            )
            assert replay(path) is True


class TestHarnessDriver:
    def test_drive_shrinks_to_minimal_failure(self):
        # A synthetic property that rejects any quota >= 4: the driver
        # must report the *shrunk* counterexample, deterministically.
        def check(case):
            assert case.quota < 4, f"quota {case.quota} too big"

        outcome = _drive(
            "invariants", check, cases(widths=(4,)), 30, lambda _m: None
        )
        assert outcome.failure is not None
        assert outcome.failure.quota == 4  # the boundary, not a random hit
        assert "too big" in outcome.error
        again = _drive(
            "invariants", check, cases(widths=(4,)), 30, lambda _m: None
        )
        assert again.failure == outcome.failure
        assert artifact_bytes(
            "invariants", again.failure, again.error
        ) == artifact_bytes("invariants", outcome.failure, outcome.error)

    def test_drive_records_simulator_runtime_failures(self):
        # NetworkAuditError and SimulationStall subclass RuntimeError,
        # not AssertionError; the driver must still record and shrink
        # them into a replayable failure instead of crashing the
        # campaign with a raw traceback.
        def audit_check(case):
            if case.quota >= 4:
                raise NetworkAuditError([])  # "audit failed"

        outcome = _drive(
            "invariants", audit_check, cases(widths=(4,)), 30,
            lambda _m: None,
        )
        assert outcome.failure is not None
        assert outcome.failure.quota == 4  # shrunk to the boundary
        assert "NetworkAuditError" in outcome.error

        def stall_check(case):
            if case.quota >= 4:
                raise SimulationStall("watchdog: no progress")

        outcome = _drive(
            "invariants", stall_check, cases(widths=(4,)), 30,
            lambda _m: None,
        )
        assert outcome.failure is not None
        assert "SimulationStall" in outcome.error

    def test_drive_propagates_harness_crashes(self):
        # An exception outside the failure set is a harness bug, not a
        # property failure — it must propagate, not vanish.
        def broken_check(case):
            raise TypeError("harness bug")

        with pytest.raises(Exception) as excinfo:
            _drive(
                "invariants", broken_check, cases(widths=(4,)), 5,
                lambda _m: None,
            )
        assert "harness bug" in str(excinfo.value) or "TypeError" in str(
            excinfo.value
        )

    def test_examples_count_excludes_shrink_reruns(self):
        # Shrinking re-executes the property many times; the reported
        # case count must only cover generated examples.
        def check(case):
            assert case.quota < 4

        outcome = _drive(
            "invariants", check, cases(widths=(4,)), 30, lambda _m: None
        )
        assert outcome.failure is not None
        assert 1 <= outcome.examples <= 30

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown verify profile"):
            run_profile("warp-speed")


class TestFastProfile:
    def test_fast_profile_clean_and_deterministic(self, tmp_path):
        """Tier-1 campaign: >=200 generated configs, zero failures."""
        report = run_profile("fast", artifact_dir=tmp_path, seed=0)
        assert report.cases_run >= 200
        assert report.ok, report.summary()
        assert list(tmp_path.iterdir()) == []  # no artifacts on success


class TestCli:
    def test_verify_replay_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        ok_path = write_failure(
            tmp_path, PROPERTY_INVARIANTS, VerifyCase(**QUICK), "x"
        )
        assert main(["verify", "--replay", str(ok_path)]) == 0
        failing = VerifyCase(**{**QUICK, "quota": 10}).with_variant(
            max_cycles=100, watchdog_cycles=5000
        )
        fail_path = write_failure(
            tmp_path, PROPERTY_INVARIANTS, failing, "liveness"
        )
        assert main(["verify", "--replay", str(fail_path)]) == 1
        out = capsys.readouterr().out
        assert "no longer reproduces" in out
        assert "still reproduces" in out

    def test_verify_replay_invalid_artifact_is_usage_error(
        self, tmp_path, capsys
    ):
        # Truncated/corrupt artifacts exit 2 with the validation
        # message, not a raw traceback (and not exit 1, which means
        # "bug still reproduces").
        from repro.cli import main

        truncated = json.loads(
            write_failure(
                tmp_path, PROPERTY_INVARIANTS, VerifyCase(**QUICK), "x"
            ).read_text()
        )
        del truncated["case"]["quota"]
        del truncated["case_digest"]
        bad = tmp_path / "truncated.json"
        bad.write_text(json.dumps(truncated))
        assert main(["verify", "--replay", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "missing required fields" in out
        assert main(["verify", "--replay", str(tmp_path / "nope.json")]) == 2

    def test_mini_profile_summary(self, tmp_path, capsys, monkeypatch):
        # Exercise the campaign path end-to-end with a tiny budget.
        from repro.verify import harness as harness_mod

        mini = VerifyProfile(
            name="fast", invariant_examples=3,
            differential_examples=2, engine_examples=2, widths=(4,),
        )
        monkeypatch.setitem(harness_mod.PROFILES, "fast", mini)
        from repro.cli import main

        code = main([
            "verify", "--profile", "fast",
            "--artifact-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all passed" in out
