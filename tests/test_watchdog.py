"""End-to-end tests for the stall watchdog and validation mode.

Covers the acceptance criterion: a deliberate credit leak deadlocks a
small run, and the watchdog reports it within the configured window,
naming the stuck router/port in the diagnostic dump.  Also pins the
read-only contract of validation mode (bit-identical fingerprints) and
the zero-clamp property of the latency model across smoke runs.
"""

import pytest

from repro.gpu.system import SimulationStall, System, SystemConfig
from repro.harness.experiment import (
    ExperimentConfig,
    build_fabric,
    run_experiment,
    run_with_fabric,
)
from repro.noc import Network, NetworkAuditError, NetworkInterface, Validator
from repro.core.grid import Grid
from repro.noc.diagnostics import (
    DEFAULT_AUDIT_INTERVAL,
    resolve_validate_interval,
    validate_interval_from_env,
    watchdog_cycles_from_env,
)
from repro.workloads import profiles

CFG = ExperimentConfig(quota=10, mcts_iterations=10)


def make_system(scheme="SeparateBase", bench="kmeans", **kw):
    fabric = build_fabric(scheme, CFG)
    system = System(
        fabric, profiles.get(bench), SystemConfig(quota=CFG.quota, **kw)
    )
    return fabric, system


class TestWatchdog:
    def test_eject_credit_leak_trips_watchdog_with_located_dump(self):
        fabric, system = make_system(watchdog_cycles=800, max_cycles=100000)
        # Leak every ejection credit of the reply network: replies can
        # never commit to their sinks, so every PE eventually starves.
        for router in fabric.reply_net.routers:
            for eject in router.eject_ports:
                router.outputs[eject].credits[0] = 0
        with pytest.raises(SimulationStall) as exc_info:
            system.run()
        err = exc_info.value
        assert "watchdog window 800" in str(err)
        assert system.cycle < 100000  # fired long before the timeout
        # The dump names the leaking router/port and locates the oldest
        # stuck packet.
        assert "eject(" in err.dump
        assert "credit leak" in err.dump
        assert "oldest stuck packet" in err.dump
        assert "router" in err.dump

    def test_audit_catches_leak_before_watchdog(self):
        fabric, system = make_system(
            validate_interval=50, max_cycles=100000
        )
        router = fabric.reply_net.routers[0]
        router.outputs[router.eject_ports[0]].credits[0] -= 1
        with pytest.raises(NetworkAuditError) as exc_info:
            system.run()
        err = exc_info.value
        assert system.cycle <= 50  # first periodic audit
        assert "credit leak" in str(err)
        assert err.dump  # carries the full diagnostic dump
        assert any(not r.ok for r in err.reports)

    def test_healthy_run_passes_with_validation_enabled(self):
        _fabric, system = make_system(validate_interval=32)
        result = system.run()
        assert result.cycles > 0


class TestValidator:
    def make_net(self):
        net = Network("t", Grid(4), flit_bytes=16, vc_classes=[(0,), (1,)])
        for n in net.grid.nodes():
            NetworkInterface(net, n)
        return net

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            Validator([self.make_net()], interval=0)

    def test_on_cycle_audits_on_interval_only(self):
        v = Validator([self.make_net()], interval=10, trace=False)
        for cycle in range(1, 10):
            v.on_cycle(cycle)
        assert v.audits == 0
        v.on_cycle(10)
        assert v.audits == 1

    def test_audit_raises_with_reports_and_dump(self):
        net = self.make_net()
        v = Validator([net], interval=10)
        net.routers[2].outputs[0].credits[0] = -1
        with pytest.raises(NetworkAuditError) as exc_info:
            v.audit()
        err = exc_info.value
        assert len(err.reports) == 1
        assert "negative credits" in str(err)
        assert "audit[" in err.dump


class TestEnvKnobs:
    def test_validate_interval_semantics(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert validate_interval_from_env() == 0
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert validate_interval_from_env() == DEFAULT_AUDIT_INTERVAL
        monkeypatch.setenv("REPRO_VALIDATE", "128")
        assert validate_interval_from_env() == 128
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        assert validate_interval_from_env() == 0
        monkeypatch.setenv("REPRO_VALIDATE", "junk")
        assert validate_interval_from_env() == 0

    def test_resolve_validate_interval(self):
        assert resolve_validate_interval(-3) == 0
        assert resolve_validate_interval(0) == 0
        assert resolve_validate_interval(1) == DEFAULT_AUDIT_INTERVAL
        assert resolve_validate_interval(64) == 64

    def test_watchdog_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG_CYCLES", raising=False)
        assert watchdog_cycles_from_env(999) == 999
        monkeypatch.setenv("REPRO_WATCHDOG_CYCLES", "1234")
        assert watchdog_cycles_from_env(999) == 1234
        monkeypatch.setenv("REPRO_WATCHDOG_CYCLES", "-5")
        assert watchdog_cycles_from_env(999) == 999


class TestValidationDeterminism:
    def test_validate_env_leaves_fingerprint_identical(self, monkeypatch):
        """Audits are read-only: REPRO_VALIDATE must not perturb runs."""
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        base = run_experiment("SeparateBase", "kmeans", CFG)
        monkeypatch.setenv("REPRO_VALIDATE", "64")
        validated = run_experiment("SeparateBase", "kmeans", CFG)
        assert validated.stats_fingerprint == base.stats_fingerprint
        assert validated.cycles == base.cycles

    @pytest.mark.parametrize("scheme", ["SingleBase", "MultiPort", "EquiNox"])
    def test_validated_smoke_runs_stay_clean(self, scheme):
        """No scheme trips a (false-positive) audit under real traffic."""
        cfg = ExperimentConfig(quota=10, mcts_iterations=10, validate=32)
        result = run_experiment(scheme, "hotspot", cfg)
        assert result.cycles > 0


class TestClampedSmoke:
    @pytest.mark.parametrize(
        "scheme", ["SingleBase", "SeparateBase", "MultiPort", "EquiNox"]
    )
    @pytest.mark.parametrize("bench", ["kmeans", "hotspot"])
    def test_no_latency_sample_clamped(self, scheme, bench):
        """The zero-load model never overestimates a measured latency."""
        fabric = build_fabric(scheme, CFG)
        run_with_fabric(fabric, bench, CFG)
        for net, _ratio, _role in fabric.networks:
            for ptype, acc in net.stats.latency.items():
                assert acc.clamped == 0, (scheme, bench, ptype)
