"""Unit tests for RDL segment geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.physical import geometry
from repro.physical.geometry import Segment


def seg(ax, ay, bx, by):
    return Segment((float(ax), float(ay)), (float(bx), float(by)))


class TestIntersection:
    def test_plus_cross(self):
        assert geometry.segments_intersect(seg(0, 1, 2, 1), seg(1, 0, 1, 2))

    def test_parallel_no_cross(self):
        assert not geometry.segments_intersect(seg(0, 0, 2, 0), seg(0, 1, 2, 1))

    def test_collinear_disjoint(self):
        assert not geometry.segments_intersect(seg(0, 0, 1, 0), seg(2, 0, 3, 0))

    def test_collinear_overlap(self):
        assert geometry.segments_intersect(seg(0, 0, 2, 0), seg(1, 0, 3, 0))

    def test_touching_endpoint(self):
        assert geometry.segments_intersect(seg(0, 0, 1, 1), seg(1, 1, 2, 0))

    def test_t_junction(self):
        assert geometry.segments_intersect(seg(0, 0, 2, 0), seg(1, 0, 1, 2))

    def test_diagonal_cross(self):
        assert geometry.segments_intersect(seg(0, 0, 2, 2), seg(0, 2, 2, 0))

    def test_near_miss(self):
        assert not geometry.segments_intersect(
            seg(0, 0, 1, 0), seg(1.1, 0.1, 2, 1)
        )


class TestConflicts:
    def test_shared_endpoint_fanout_ok(self):
        """Wires fanning out of the same CB bump may share that point."""
        assert not geometry.segments_cross(seg(0, 0, 2, 0), seg(0, 0, 0, 2))

    def test_shared_endpoint_overlap_conflicts(self):
        assert geometry.segments_cross(seg(0, 0, 2, 0), seg(0, 0, 3, 0))

    def test_proper_cross_conflicts(self):
        assert geometry.segments_cross(seg(0, 1, 2, 1), seg(1, 0, 1, 2))

    def test_count_crossings(self):
        segments = [
            seg(0, 1, 2, 1),
            seg(1, 0, 1, 2),   # crosses the first
            seg(5, 5, 6, 6),   # isolated
        ]
        assert geometry.count_crossings(segments) == 1
        assert geometry.crossing_pairs(segments) == [(0, 1)]

    def test_opposite_fanout_no_conflict(self):
        """Collinear but pointing away from the shared point."""
        assert not geometry.segments_cross(seg(1, 1, 0, 1), seg(1, 1, 2, 1))


class TestCrossingPoint:
    def test_exact_point(self):
        point = geometry.crossing_point(seg(0, 1, 2, 1), seg(1, 0, 1, 2))
        assert point == pytest.approx((1.0, 1.0))

    def test_parallel_none(self):
        assert geometry.crossing_point(seg(0, 0, 1, 0), seg(0, 1, 1, 1)) is None

    def test_non_overlapping_none(self):
        assert geometry.crossing_point(seg(0, 0, 1, 0), seg(3, -1, 3, 1)) is None


class TestLength:
    def test_unit_length(self):
        assert seg(0, 0, 1, 0).length == 1.0

    def test_diagonal_length(self):
        assert seg(0, 0, 3, 4).length == pytest.approx(5.0)

    @given(st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5),
           st.integers(-5, 5))
    def test_length_symmetric(self, ax, ay, bx, by):
        assert seg(ax, ay, bx, by).length == pytest.approx(
            seg(bx, by, ax, ay).length
        )


class TestCrossSymmetry:
    @given(
        st.tuples(st.integers(0, 7), st.integers(0, 7),
                  st.integers(0, 7), st.integers(0, 7)),
        st.tuples(st.integers(0, 7), st.integers(0, 7),
                  st.integers(0, 7), st.integers(0, 7)),
    )
    def test_symmetric(self, s1, s2):
        a = seg(*s1)
        b = seg(*s2)
        assert geometry.segments_cross(a, b) == geometry.segments_cross(b, a)
