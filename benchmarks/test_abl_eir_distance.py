"""Ablation: EIR distance from the CB (paper section 4.3).

Builds designs with all EIRs pinned to 1, 2 or 3 hops on the axes.  In
this simulator the NI core caps a CB's aggregate injection, so the
DAZ routers stay below saturation and raw performance is nearly flat
across distances (within a few percent).  What separates the choices is
physical viability — exactly the paper's tie-breaker: 3-hop wires
exceed the single-cycle length budget (repeaters, active interposer),
and 1-hop EIRs sit inside the hot zone that the placement policy
penalises.  Two hops is the only distance that is both wire-clean and
hot-zone-free, which is what MCTS converges to.
"""

from conftest import publish, quick_config

from repro.core.eir import EirDesign, make_group
from repro.core.equinox import design_from_groups
from repro.core.grid import AXIS_DIRECTIONS, Grid
from repro.harness import cache
from repro.harness.experiment import run_with_fabric
from repro.harness.metrics import format_table
from repro.schemes import Fabric, get_config

BENCH = "scan"


def _axis_design(grid, placement, distance):
    cb_set = set(placement)
    taken = set()
    groups = []
    for cb in placement:
        x, y = grid.coord(cb)
        eirs = {}
        for dx, dy in AXIS_DIRECTIONS:
            cx, cy = x + dx * distance, y + dy * distance
            if not grid.contains(cx, cy):
                continue
            node = grid.node(cx, cy)
            if node in cb_set or node in taken:
                continue
            eirs[(dx, dy)] = node
            taken.add(node)
        groups.append(make_group(cb, eirs))
    return EirDesign(grid=grid, placement=tuple(placement),
                     groups=tuple(groups))


def test_eir_distance_ablation(benchmark):
    config = quick_config()
    placement = cache.placement("nqueen", config.width, config.num_cbs)
    grid = Grid(config.width)

    def run_sweep():
        results = {}
        for distance in (1, 2, 3):
            eir_design = _axis_design(grid, placement.nodes, distance)
            design = design_from_groups(grid, placement, eir_design)
            fabric = Fabric(
                get_config("EquiNox"), grid, placement.nodes,
                equinox_design=design,
            )
            results[distance] = run_with_fabric(
                fabric, BENCH, config, f"EquiNox-d{distance}"
            )
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    from repro.physical.interposer import plan_links
    from repro.core.hotzone import daz

    plans = {
        d: plan_links(grid, _axis_design(grid, placement.nodes, d).links())
        for d in (1, 2, 3)
    }
    rows = [
        (d, results[d].cycles, plans[d].needs_repeaters())
        for d in (1, 2, 3)
    ]
    publish(
        "ablation_eir_distance",
        "Ablation: EIR distance from CB (scan)\n"
        + format_table(("Distance (hops)", "Cycles", "Needs repeaters"),
                       rows),
    )

    # Performance is flat within a band: distance alone is not the
    # lever; the count ablation shows the big effect.
    cycles = [results[d].cycles for d in (1, 2, 3)]
    assert max(cycles) <= 1.12 * min(cycles)

    # Physical viability separates the distances.
    assert not plans[2].needs_repeaters()
    assert plans[3].needs_repeaters()
    hot = set()
    for cb in placement.nodes:
        hot |= daz(grid, cb)
    d1_eirs = {e for _cb, e in _axis_design(grid, placement.nodes, 1).links()}
    assert d1_eirs <= hot  # 1-hop EIRs all sit inside DAZ hot zones
