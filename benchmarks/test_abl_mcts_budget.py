"""Ablation: MCTS search budget vs design quality vs random search.

The paper reports MCTS stabilising after assessing only 0.047% of the
8x8 solution space.  Here: the evaluation score of the committed design
should improve (or hold) with budget, and MCTS should match or beat
pure random sampling at an equal number of design evaluations.
"""

from conftest import publish, quick_config

from repro.core.grid import Grid
from repro.core.mcts import EirSearch, SearchConfig, random_search
from repro.harness import cache
from repro.harness.metrics import format_table


def test_mcts_budget_ablation(benchmark):
    config = quick_config()
    placement = cache.placement("nqueen", config.width, config.num_cbs)
    grid = Grid(config.width)

    def run_sweep():
        rows = []
        for iterations in (2, 10, 50, 150):
            search = EirSearch(
                grid, placement.nodes,
                SearchConfig(iterations_per_level=iterations, seed=0),
            )
            result = search.run()
            rand = random_search(
                grid, placement.nodes,
                samples=max(result.designs_evaluated, 1),
                config=SearchConfig(seed=0),
            )
            rows.append(
                (iterations, result.designs_evaluated,
                 result.evaluation.score, rand.evaluation.score)
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "ablation_mcts_budget",
        "Ablation: MCTS budget vs random search\n"
        + format_table(
            ("Iter/level", "Designs evaluated", "MCTS score",
             "Random score"), rows
        ),
    )

    scores = [row[2] for row in rows]
    # Bigger budgets do not make the committed design worse.
    assert scores[-1] <= scores[0] * 1.02
    # At the largest budget, MCTS matches or beats random sampling.
    assert rows[-1][2] <= rows[-1][3] * 1.05
