"""Ablation: delivered performance vs failed EIR links (availability).

EquiNox's redundancy argument is that any of a CB's Equivalent
Injection Routers can carry its replies, so losing injectors degrades
throughput instead of halting it.  This sweep fails ``k`` RDL links per
CB group mid-run (k = 0..4) and records execution time plus the
dropped/recovered ledger; the single-injection baseline
(SeparateBase) is run with its one local injection path failed, which
stalls outright — the availability cliff EquiNox avoids.
"""

from dataclasses import replace

import pytest

from conftest import publish, quick_config

from repro.gpu import SimulationStall
from repro.harness import cache
from repro.harness.experiment import run_experiment
from repro.harness.metrics import format_table
from repro.noc.faults import FaultSpec, eir_link_faults
from repro.schemes import get_config

BENCH = "fastWalshTransform"
FAIL_AT = 400


def _separate_base_cliff(config):
    """Fail the single injection buffer at every SeparateBase CB."""
    scheme = get_config("SeparateBase")
    placement = cache.placement(
        scheme.placement_name, config.width, config.num_cbs
    )
    return tuple(
        FaultSpec(kind="ni_buffer", node=cb, buffer=0, at_cycle=FAIL_AT)
        for cb in placement.nodes
    )


def test_fault_degradation_ablation(benchmark):
    config = replace(quick_config(), validate=64)
    design = cache.equinox_design(
        config.width, config.num_cbs,
        iterations_per_level=config.mcts_iterations, seed=config.seed,
    )

    def run_sweep():
        results = {}
        for k in (0, 1, 2, 3, 4):
            specs = eir_link_faults(design.eir_design, k, at_cycle=FAIL_AT)
            results[k] = run_experiment(
                "EquiNox", BENCH, replace(config, faults=specs)
            )
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (k, r.cycles, f"{r.ipc:.3f}", r.flits_dropped, r.packets_recovered)
        for k, r in results.items()
    ]

    # The single-injection baseline has no redundancy to fall back on:
    # the same class of fault (its one local injection path) stalls the
    # run instead of degrading it.
    cliff = replace(
        config,
        faults=_separate_base_cliff(config),
        watchdog_cycles=3000,
    )
    with pytest.raises(SimulationStall):
        run_experiment("SeparateBase", BENCH, cliff)
    rows.append(("base", "STALL", "0.000", "-", "-"))

    publish(
        "ablation_fault_degradation",
        "Ablation: failed EIR links per CB group (fastWalshTransform)\n"
        + format_table(
            ("Failed links/CB", "Cycles", "IPC", "Dropped", "Recovered"),
            rows,
        )
        + "\n['base' = SeparateBase with its single injection path "
        "failed]",
    )

    # Every EquiNox configuration completes the full workload.
    fault_free = results[0]
    for k, result in results.items():
        assert result.ipc > 0
        assert result.instructions == fault_free.instructions
    # Losing links never speeds things up, and losing every EIR link
    # costs something.  (Degradation need not be strictly monotone in
    # k: re-selection reshapes congestion between adjacent k values.)
    cycles = [results[k].cycles for k in (0, 1, 2, 3, 4)]
    assert all(c >= cycles[0] for c in cycles[1:])
    assert cycles[-1] > cycles[0]
    # Quarantining live injectors actually exercised the drop ledger.
    assert results[4].flits_dropped >= results[1].flits_dropped
