"""Ablation: the topological-equivalence spectrum (paper section 3.2.1).

Sweeps the number of EIRs per group from 0 (the existing architecture)
to the full MCTS selection.  More EIRs should monotonically-ish reduce
execution time, with diminishing returns — the paper's argument for an
optimal group size rather than EIRs-everywhere.
"""

from conftest import publish, quick_config

from repro.core.eir import EirDesign, EirGroup
from repro.core.equinox import design_from_groups
from repro.harness import cache
from repro.harness.experiment import run_with_fabric
from repro.harness.metrics import format_table
from repro.schemes import Fabric, get_config

BENCH = "fastWalshTransform"


def _truncated_design(full, k):
    groups = tuple(
        EirGroup(cb=g.cb, eirs=g.eirs[:k]) for g in full.eir_design.groups
    )
    return EirDesign(
        grid=full.grid,
        placement=full.eir_design.placement,
        groups=groups,
    )


def test_eir_count_ablation(benchmark):
    config = quick_config()
    full = cache.equinox_design(
        config.width, config.num_cbs,
        iterations_per_level=config.mcts_iterations, seed=config.seed,
    )

    def run_sweep():
        results = {}
        for k in (0, 1, 2, 4):
            eir_design = _truncated_design(full, k)
            design = design_from_groups(full.grid, full.placement, eir_design)
            fabric = Fabric(
                get_config("EquiNox"),
                full.grid,
                full.placement.nodes,
                equinox_design=design,
            )
            results[k] = run_with_fabric(fabric, BENCH, config,
                                         f"EquiNox-k{k}")
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (k, r.cycles, sum(len(g) for g in _truncated_design(full, k).groups))
        for k, r in results.items()
    ]
    publish(
        "ablation_eir_count",
        "Ablation: EIRs per group (fastWalshTransform)\n"
        + format_table(("Max EIRs/group", "Cycles", "Total EIRs"), rows),
    )

    # No EIRs is the slowest configuration; the full group the fastest.
    assert results[0].cycles >= max(r.cycles for k, r in results.items()
                                    if k > 0)
    assert results[4].cycles <= results[1].cycles
