"""Shared fixtures for the figure-regeneration benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Every benchmark writes its rendered table to ``results/<name>.txt`` (and
prints it), so the paper-vs-measured record in EXPERIMENTS.md can be
refreshed from one run.  The Figure-9 grid (7 schemes x 29 benchmarks)
is computed once and shared by the Figure-10 benchmark.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.experiment import ExperimentConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_FIG9_CACHE = {}


def bench_config() -> ExperimentConfig:
    """The configuration all figure benchmarks share.

    ``REPRO_BENCH_QUOTA`` scales run length (default 100 memory
    instructions per PE) for quick smoke runs of the suite.
    """
    quota = int(os.environ.get("REPRO_BENCH_QUOTA", "100"))
    return ExperimentConfig(quota=quota, mcts_iterations=150)


def bench_jobs() -> int:
    """Worker processes for grid-shaped benchmarks.

    ``REPRO_BENCH_JOBS`` (default 1 = serial) fans the Figure-9 grid out
    through the parallel sweep runner; results are identical either way.
    """
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def quick_config() -> ExperimentConfig:
    """A small configuration for the ablation benchmarks."""
    quota = int(os.environ.get("REPRO_ABL_QUOTA", "60"))
    return ExperimentConfig(quota=quota, mcts_iterations=60)


def shared_figure9():
    """Compute (once) the full scheme x benchmark grid."""
    key = "fig9"
    if key not in _FIG9_CACHE:
        from repro.harness.figures import figure9

        _FIG9_CACHE[key] = figure9(
            bench_config(), progress=True, jobs=bench_jobs()
        )
    return _FIG9_CACHE[key]


def publish(name: str, text: str) -> None:
    """Print a rendered figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def config():
    return bench_config()
