"""Figure 4: heat maps of per-router residence under five CB placements.

Paper shape: Top and Side suffer severe, localised congestion; Diagonal
and Diamond are far more balanced; the scored N-Queen placement has the
lowest variance of the row/column-free placements (paper: 0.54, which
is 35.7% below Diamond and 96.7% below Top).
"""

from conftest import publish

from repro.core.grid import Grid
from repro.harness.figures import figure4
from repro.harness.render import heatmap_text


def test_figure4(benchmark):
    result = benchmark.pedantic(figure4, rounds=1, iterations=1)
    grid = Grid(result.width)
    text = [result.render(), ""]
    for name, heat in result.heatmaps.items():
        text.append(f"--- {name} (CBs marked *) ---")
        text.append(heatmap_text(heat, grid, marked=result.placements[name]))
    publish("figure4", "\n".join(text))

    v = result.variances
    # Shape assertions from the paper's Figure 4.
    assert v["top"] > v["diamond"]
    assert v["side"] > v["diamond"]
    assert v["nqueen"] < v["diamond"]
    assert v["top"] > 1.5 * v["nqueen"]
