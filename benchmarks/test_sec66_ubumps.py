"""Section 6.6: µbump budgets of Interposer-CMesh vs EquiNox.

Paper numbers: Interposer-CMesh needs 128 x 256-bit uni-directional
links = 32,768 µbumps; EquiNox needs 24 x 128-bit links with two bumps
per wire = 6,144 µbumps — an 81.25% saving.  Our MCTS design's link
count varies slightly with the search outcome, so the saving is
asserted as a band around the paper's figure.
"""

from conftest import bench_config, publish

from repro.harness.figures import section66
from repro.physical.ubump import equinox_budget, interposer_cmesh_budget


def test_section66(benchmark):
    result = benchmark.pedantic(
        lambda: section66(bench_config()), rounds=1, iterations=1
    )
    publish("section66", result.render())

    assert result.cmesh.num_bumps == 32768
    assert 70.0 < result.saving_percent < 92.0

    # The paper's exact accounting, with its stated 24 links:
    assert equinox_budget(num_eirs=24).num_bumps == 6144
    saving = 1 - 6144 / interposer_cmesh_budget().num_bumps
    assert abs(saving - 0.8125) < 1e-9
