"""Figure 10: packet latency, broken into request/reply and
queuing/non-queuing parts (in nanoseconds, like the paper, so DA2Mesh's
2.5x clock domain is compared fairly).

Paper shape: request latency exceeds reply latency (the reply-injection
backpressure propagates into the request network — the parking-lot
effect); DA2Mesh shows the highest serialisation-driven latency;
EquiNox has the lowest reply latency and sharply reduced request
queuing.
"""

from conftest import publish, shared_figure9

from repro.harness.figures import figure10


def test_figure10(benchmark):
    fig9 = shared_figure9()
    fig10 = benchmark.pedantic(
        lambda: figure10(fig9), rounds=1, iterations=1
    )
    publish("figure10", fig10.render())

    lat = fig10.mean_latency()

    # Backpressure: request latency > reply latency for the baselines.
    for scheme in ("SingleBase", "SeparateBase"):
        assert lat[scheme].request_total > lat[scheme].reply_total

    # EquiNox reduces total packet latency vs both baselines.
    assert lat["EquiNox"].total < lat["SingleBase"].total
    assert lat["EquiNox"].total < lat["SeparateBase"].total

    # EquiNox's request queuing collapses relative to SingleBase.
    assert lat["EquiNox"].request_queuing < 0.7 * lat["SingleBase"].request_queuing

    # DA2Mesh pays extra reply (serialisation) latency vs SeparateBase.
    assert (
        lat["DA2Mesh"].reply_non_queuing
        > lat["SeparateBase"].reply_non_queuing
    )
