"""Table 1: the simulation configuration."""

from conftest import bench_config, publish

from repro.harness.figures import table1


def test_table1(benchmark):
    result = benchmark.pedantic(
        lambda: table1(bench_config()), rounds=1, iterations=1
    )
    publish("table1", result.render())
    labels = dict(result.rows)
    assert labels["Virtual channel"] == "2/port, 1 pkt/VC"
    assert labels["Allocator"] == "Separable input first"
    assert "1126" in labels["PE frequency"]
    assert labels["# of LLC banks"] == "8"
