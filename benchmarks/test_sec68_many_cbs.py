"""Section 6.8: more cache banks than N (knight-move placement).

The paper states (without evaluation) that when the number of CBs
exceeds N in an N x N layout, a knight-move placement minimises
row/column/diagonal sharing, and the rest of the flow applies
unchanged.  This benchmark actually runs that case: 12 CBs on an 8x8
mesh, knight-move placed, EIRs selected by the same MCTS, compared
against a separate-network baseline with the same placement.

Finding (beyond the paper): the flow *works* — a valid low-crossing
design comes out — but the EIR benefit largely evaporates.  Twelve CBs
already provide 1.5x the injection points, and their dense hot zones
leave room for only ~1 EIR per group, so EquiNox lands within a few
percent of the baseline instead of ahead.  The paper's §3.2.1 argument
cuts both ways: once injection points are plentiful, adding more stops
paying.
"""

from conftest import publish, quick_config

from repro.core.equinox import design_equinox
from repro.core.grid import Grid
from repro.core.mcts import SearchConfig
from repro.core.placement import knight_move
from repro.harness.experiment import run_with_fabric
from repro.harness.metrics import format_table
from repro.schemes import Fabric, get_config

NUM_CBS = 12
BENCH = "kmeans"


def test_many_cbs(benchmark):
    config = quick_config()
    grid = Grid(config.width)
    placement = knight_move(grid, NUM_CBS)

    def run_pair():
        design = design_equinox(
            config.width,
            NUM_CBS,
            SearchConfig(iterations_per_level=config.mcts_iterations,
                         seed=config.seed),
            placement_nodes=placement.nodes,
        )
        base_fabric = Fabric(get_config("SeparateBase"), grid, placement.nodes)
        eq_fabric = Fabric(
            get_config("EquiNox"), grid, placement.nodes,
            equinox_design=design,
        )
        import dataclasses

        cfg = dataclasses.replace(config, num_cbs=NUM_CBS)
        return {
            "SeparateBase": run_with_fabric(base_fabric, BENCH, cfg),
            "EquiNox": run_with_fabric(eq_fabric, BENCH, cfg),
            "design": design,
        }

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    design = results["design"]
    rows = [
        (name, results[name].cycles, results[name].edp)
        for name in ("SeparateBase", "EquiNox")
    ]
    publish(
        "section68",
        f"Section 6.8: {NUM_CBS} CBs on 8x8 (knight-move placement)\n"
        + format_table(("Scheme", "Cycles", "EDP"), rows)
        + f"\nEIRs: {design.num_eirs}, RDL layers: "
        f"{design.rdl_plan.num_layers}",
    )

    # The flow still works with CBs > row count: every CB got a group,
    # the wire plan stays cheap, and performance stays in the
    # baseline's neighbourhood (the benefit, not the machinery, is what
    # shrinks at 12 injection points).
    assert len(design.eir_design.groups) == NUM_CBS
    assert design.rdl_plan.num_layers <= 2
    assert results["EquiNox"].cycles <= 1.10 * results["SeparateBase"].cycles