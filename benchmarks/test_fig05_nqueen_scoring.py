"""Figure 5: the N-Queen placement scoring policy.

Paper facts: an 8x8 network has 92 N-Queen placements; the hot-zone
penalty ranks them and the lowest-scoring one is chosen; N-Queen
placements can only exhibit DAZ-CAZ overlaps.
"""

from conftest import publish

from repro.core.grid import Grid
from repro.core.hotzone import overlap_kinds
from repro.harness.figures import figure5


def test_figure5(benchmark):
    result = benchmark.pedantic(figure5, rounds=1, iterations=1)
    publish("figure5", result.render())

    assert result.num_solutions == 92
    assert result.best_penalty == min(result.penalties)
    assert result.best_penalty < sum(result.penalties) / len(result.penalties)

    grid = Grid(result.width)
    kinds = overlap_kinds(grid, result.best_nodes)
    for tile_kinds in kinds.values():
        assert tile_kinds <= {"caz-daz"}
