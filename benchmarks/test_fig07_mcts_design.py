"""Figure 7: the MCTS-selected EIR design for an 8x8 network.

Paper attributes of the found design: EIRs sit about two hops from
their CB (bypassing the DAZ/CAZ hot zones), interposer-link crossings
are avoided entirely (one RDL suffices), and the links are short enough
for single-cycle traversal without repeaters.
"""

from conftest import bench_config, publish

from repro.harness.figures import figure7


def test_figure7(benchmark):
    result = benchmark.pedantic(
        lambda: figure7(bench_config()), rounds=1, iterations=1
    )
    design = result.design
    from repro.harness.render import design_map

    publish("figure7", result.render() + "\n\n" + design_map(design))

    # Every CB got a group; most have several EIRs.
    assert len(design.eir_design.groups) == 8
    assert design.num_eirs >= 16

    grid = design.grid
    distances = [
        grid.hops(cb, e) for cb, e in design.eir_design.links()
    ]
    assert all(2 <= d <= 3 for d in distances)
    two_hop = sum(1 for d in distances if d == 2)
    assert two_hop / len(distances) >= 0.5  # mostly 2-hop, as in the paper

    # Physical viability: few crossings, few RDL layers.
    assert design.rdl_plan.num_crossings <= 2
    assert design.rdl_plan.num_layers <= 2
