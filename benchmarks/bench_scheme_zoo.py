#!/usr/bin/env python
"""Cross-scheme latency/throughput comparison at large mesh sizes.

The paper evaluates its schemes on an 8x8 interposer mesh; this
benchmark produces the Figure-4-style comparison the paper never ran —
every scheme in the zoo (the EquiNox ablation ladder *plus* the
independent ring-router and routerless baselines) on the same large
mesh, reported as mean packet latency, delivered throughput and the
per-EIR injection balance from the telemetry probes:

    PYTHONPATH=src python benchmarks/bench_scheme_zoo.py
        [--width 32] [--schemes ...] [--tier mesh32 | --benchmarks ...]
        [--quota N] [--output results/scheme_zoo.json]

Schemes whose config rejects the requested geometry (e.g. the
concentrated mesh on an odd width) are reported as skipped rather than
failing the whole comparison.  Results land in a plain-JSON artifact so
nightly CI can upload them.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import format_table
from repro.schemes import SCHEME_ORDER
from repro.workloads import tier as workload_tier


def run_cell(
    scheme: str, benchmark: str, args: argparse.Namespace
) -> dict:
    """One (scheme, benchmark) cell at the requested mesh size."""
    config = ExperimentConfig(
        width=args.width,
        num_cbs=args.cbs,
        quota=args.quota,
        seed=args.seed,
        mcts_iterations=args.iterations,
        telemetry=args.telemetry,
    )
    start = time.time()
    result = run_experiment(scheme, benchmark, config)
    wall = time.time() - start
    counters = (result.telemetry or {}).get("counters", {})
    injected = sum(
        value for name, value in counters.items()
        if name.startswith("net.") and name.endswith(".flits_injected")
    )
    row = {
        "scheme": scheme,
        "benchmark": benchmark,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "latency_ns": result.latency.total,
        "request_latency_ns": result.latency.request_total,
        "reply_latency_ns": result.latency.reply_total,
        "throughput_flits_per_cycle": (
            injected / result.cycles if result.cycles else 0.0
        ),
        "energy_nj": result.energy_nj,
        "area_mm2": result.area_mm2,
        "stats_fingerprint": result.stats_fingerprint,
        "wall_seconds": round(wall, 3),
    }
    if result.telemetry is not None:
        from repro.telemetry.export import summarize_record

        summary = summarize_record(result.telemetry)
        if "eir_balance" in summary:
            row["eir_balance"] = summary["eir_balance"]
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=32,
                        help="mesh dimension (default 32)")
    parser.add_argument("--cbs", type=int, default=0,
                        help="cache banks (default: same as width)")
    parser.add_argument("--schemes", nargs="*", choices=SCHEME_ORDER,
                        default=None,
                        help="schemes to compare (default: all 9)")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="explicit benchmark names (overrides --tier)")
    parser.add_argument("--tier", default="mesh32",
                        help="workload tier when --benchmarks is absent "
                             "(default mesh32)")
    parser.add_argument("--quota", type=int, default=4,
                        help="memory-instruction quota per PE (default 4; "
                             "a 32x32 mesh has ~16x the PEs of the paper's "
                             "8x8, so small quotas already saturate)")
    parser.add_argument("--iterations", type=int, default=10,
                        help="MCTS budget for the EquiNox design step")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--telemetry", type=int, default=4,
                        help="telemetry sampling interval in base cycles "
                             "(0 disables the per-EIR balance column)")
    parser.add_argument("--output", default="results/scheme_zoo.json",
                        help="JSON artifact path (default "
                             "results/scheme_zoo.json)")
    args = parser.parse_args()
    if not args.cbs:
        args.cbs = args.width

    schemes = args.schemes or list(SCHEME_ORDER)
    benchmarks = args.benchmarks or workload_tier(args.tier)
    rows, skipped = [], []
    for benchmark in benchmarks:
        for scheme in schemes:
            try:
                row = run_cell(scheme, benchmark, args)
            except ValueError as exc:
                # A scheme may reject the geometry (e.g. CMesh needs an
                # even width); record it instead of aborting the zoo.
                skipped.append(
                    {"scheme": scheme, "benchmark": benchmark,
                     "reason": str(exc)}
                )
                continue
            rows.append(row)
            print(
                f"{scheme:<18} {benchmark:<14} {row['cycles']:>8} cycles  "
                f"{row['latency_ns']:>8.2f} ns  "
                f"{row['throughput_flits_per_cycle']:>6.3f} flits/cyc  "
                f"{row['wall_seconds']:>7.1f} s",
                flush=True,
            )

    for benchmark in benchmarks:
        cells = [r for r in rows if r["benchmark"] == benchmark]
        if not cells:
            continue
        table = [
            (
                r["scheme"],
                float(r["cycles"]),
                r["latency_ns"],
                r["throughput_flits_per_cycle"],
                r.get("eir_balance", float("nan")),
            )
            for r in cells
        ]
        print(f"\n{benchmark} ({args.width}x{args.width}, "
              f"quota {args.quota})")
        print(format_table(
            ("Scheme", "Cycles", "Latency(ns)", "Flits/cyc", "EIRbal"),
            table,
        ))
    for entry in skipped:
        print(f"skipped {entry['scheme']} x {entry['benchmark']}: "
              f"{entry['reason']}")

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(
        {
            "width": args.width,
            "num_cbs": args.cbs,
            "quota": args.quota,
            "seed": args.seed,
            "rows": rows,
            "skipped": skipped,
        },
        indent=2,
        sort_keys=True,
    ) + "\n")
    print(f"\nwrote {output}")
    return 0 if rows else 1


if __name__ == "__main__":
    sys.exit(main())
