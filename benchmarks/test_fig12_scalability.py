"""Figure 12: scalability of EquiNox to 12x12 and 16x16 networks.

Paper numbers: EquiNox's IPC gain over the separate-network baseline is
1.23x at 8x8, 1.31x at 12x12 and 1.30x at 16x16 — the benefit holds or
grows with network size because larger networks have a more serious
injection bottleneck.
"""

import os

from conftest import publish

from repro.harness.experiment import ExperimentConfig
from repro.harness.figures import figure12


def test_figure12(benchmark):
    quota = int(os.environ.get("REPRO_BENCH_QUOTA", "100"))
    config = ExperimentConfig(quota=quota, mcts_iterations=60)
    result = benchmark.pedantic(
        lambda: figure12(config, widths=(8, 12, 16), num_benchmarks=5,
                         progress=True),
        rounds=1,
        iterations=1,
    )
    publish("figure12", result.render())

    # EquiNox wins at every size...
    for width in result.widths:
        assert result.speedups[width] > 1.0
    # ...and the gain does not collapse as the network grows.
    assert result.speedups[16] > 0.85 * result.speedups[8]
