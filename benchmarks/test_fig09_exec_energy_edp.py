"""Figure 9: execution time, NoC energy and EDP for the seven schemes
across the 29-benchmark suite, normalised to SingleBase.

Paper headline numbers (shape targets, not absolutes):

* EquiNox cuts execution time 47.7% vs SingleBase and 23.5% vs
  SeparateBase — the largest reduction of all schemes.
* EquiNox cuts EDP 55.0% vs SingleBase and 32.8% vs SeparateBase.
* EquiNox uses 18.9% less NoC energy than SeparateBase.
* VC-Mono trims ~3.6% off SingleBase; Interposer-CMesh is the best
  single-network scheme; DA2Mesh and MultiPort average out near
  SeparateBase.
"""

from conftest import publish, shared_figure9

from repro.harness.analysis import (
    classify,
    crossover_benchmarks,
    summarize_scheme,
)
from repro.harness.metrics import format_table, reduction_percent


def test_figure9(benchmark):
    fig9 = benchmark.pedantic(shared_figure9, rounds=1, iterations=1)

    exec_norm = fig9.normalized_means("cycles")
    energy_norm = fig9.normalized_means("energy_nj")
    edp_norm = fig9.normalized_means("edp")

    rows = [
        (s, exec_norm[s], energy_norm[s], edp_norm[s])
        for s in fig9.schemes
    ]
    summary = format_table(
        ("Scheme", "Exec time", "Energy", "EDP"), rows
    )
    detail_rows = []
    for bench in fig9.benchmarks:
        values = {
            s: fig9.results[(s, bench)].cycles for s in fig9.schemes
        }
        base = values["SingleBase"]
        detail_rows.append(
            tuple([bench] + [values[s] / base for s in fig9.schemes])
        )
    detail = format_table(tuple(["Benchmark"] + fig9.schemes), detail_rows)

    # Narrative analysis: EquiNox summary, sensitivity classes, and the
    # DA2Mesh-vs-SeparateBase crossover the paper's prose describes.
    eq = summarize_scheme("EquiNox", fig9.results, fig9.benchmarks)
    classes = classify(
        {b: fig9.results[("SingleBase", b)] for b in fig9.benchmarks},
        {b: fig9.results[("EquiNox", b)] for b in fig9.benchmarks},
    )
    class_counts = {}
    for c in classes:
        class_counts[c.label] = class_counts.get(c.label, 0) + 1
    da2_wins, sep_wins = crossover_benchmarks(
        "DA2Mesh", "SeparateBase", fig9.results, fig9.benchmarks
    )
    analysis = (
        f"EquiNox: mean exec reduction {100 * eq.mean_reduction:.1f}% "
        f"(best {eq.best_benchmark} {100 * eq.best_reduction:.1f}%, "
        f"worst {eq.worst_benchmark} {100 * eq.worst_reduction:.1f}%), "
        f"wins {eq.wins}/{eq.total}\n"
        f"sensitivity classes: {class_counts}\n"
        f"DA2Mesh beats SeparateBase on {len(da2_wins)} benchmarks, "
        f"loses on {len(sep_wins)}"
    )
    publish(
        "figure9",
        "Figure 9 (normalised to SingleBase, mean over 29 benchmarks)\n"
        + summary + "\n\nPer-benchmark execution time:\n" + detail
        + "\n\n" + analysis,
    )

    # ---- shape assertions -------------------------------------------
    # EquiNox is the fastest scheme and has the lowest EDP.
    assert exec_norm["EquiNox"] == min(exec_norm.values())
    assert edp_norm["EquiNox"] == min(edp_norm.values())

    # Large EquiNox gains vs both baselines.
    exec_vs_single = reduction_percent(1.0, exec_norm["EquiNox"])
    exec_vs_separate = reduction_percent(
        exec_norm["SeparateBase"], exec_norm["EquiNox"]
    )
    assert exec_vs_single > 15.0
    assert exec_vs_separate > 8.0

    edp_vs_separate = reduction_percent(
        edp_norm["SeparateBase"], edp_norm["EquiNox"]
    )
    assert edp_vs_separate > 15.0

    # EquiNox beats SeparateBase on energy.
    assert energy_norm["EquiNox"] < energy_norm["SeparateBase"]

    # VC-Mono helps SingleBase a little.
    assert exec_norm["VC-Mono"] <= 1.01

    # Separate-network baseline beats single-network baseline.
    assert exec_norm["SeparateBase"] < 1.0

    # DA2Mesh and MultiPort land in SeparateBase's neighbourhood.
    assert abs(exec_norm["DA2Mesh"] - exec_norm["SeparateBase"]) < 0.15
    assert abs(exec_norm["MultiPort"] - exec_norm["SeparateBase"]) < 0.15
