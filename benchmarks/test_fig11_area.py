"""Figure 11: NoC area of the seven schemes.

Paper shape: single-network schemes are cheapest except Interposer-
CMesh (whose 16 double-ported overlay routers push it up); DA2Mesh's
narrow routers keep it below the other separate-network schemes;
MultiPort and EquiNox pay extra ports over SeparateBase — EquiNox about
4.6% more die area than SeparateBase.
"""

import pytest
from conftest import bench_config, publish

from repro.harness.figures import figure11


def test_figure11(benchmark):
    result = benchmark.pedantic(
        lambda: figure11(bench_config()), rounds=1, iterations=1
    )
    publish("figure11", result.render())
    areas = result.areas

    assert areas["SingleBase"] < areas["SeparateBase"]
    assert areas["VC-Mono"] == pytest.approx(areas["SingleBase"], rel=0.02)
    assert areas["Interposer-CMesh"] > areas["SingleBase"]
    assert areas["DA2Mesh"] < areas["MultiPort"]
    assert areas["MultiPort"] > areas["SeparateBase"]

    overhead = areas["EquiNox"] / areas["SeparateBase"] - 1.0
    assert 0.01 < overhead < 0.12  # paper: 4.6%
