#!/usr/bin/env python
"""Micro-benchmark of the simulator's tick hot path.

Thin wrapper over :mod:`repro.harness.bench`, which owns the scenario
definitions (``synthetic``, ``low_load``, ``system``) and the
``BENCH.json`` regression gate that CI runs via ``repro bench``.  This
script keeps the historical developer workflow:

    PYTHONPATH=src python benchmarks/perf_tick.py [--repeat N]
        [--scheduler dense|active|both]

and compare the cycles/second figures across commits.  The checksum is
a digest of the network statistics, so a perf change that alters
simulated behaviour is visible immediately.  With ``--scheduler both``
(the default) every workload runs under the dense oracle and the
active-set scheduler and the benchmark *fails* (exit 1) if their
checksums diverge — the same differential guard CI runs.

Reference numbers are recorded in ``results/perf_tick.txt`` (written on
every run) and quoted in CHANGES.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.harness.bench import SCENARIOS, checksum_divergence, run_scenario


def slots_note() -> str:
    """Per-instance size of the hot allocation classes (all slotted).

    ``__slots__`` removes the per-instance ``__dict__`` (~104 bytes on
    CPython 3.11) from the classes the tick loop allocates or touches
    millions of times.
    """
    import sys as _sys

    from repro.mem.hbm import MemoryAccess
    from repro.noc.stats import LatencyAccumulator
    from repro.noc.types import Flit, Packet, PacketType
    from repro.workloads.generator import GeneratedRequest

    packet = Packet(1, PacketType.READ_REQUEST, 0, 1, 1, 0)
    samples = [
        ("Packet", packet),
        ("Flit", Flit(packet, 0, True, True)),
        ("GeneratedRequest", GeneratedRequest(True, 0, True)),
        ("MemoryAccess", MemoryAccess(None, True, True, 0)),
        ("LatencyAccumulator", LatencyAccumulator()),
    ]
    parts = []
    for name, obj in samples:
        assert not hasattr(obj, "__dict__"), f"{name} grew a __dict__"
        parts.append(f"{name} {_sys.getsizeof(obj)} B")
    return "slotted hot classes (no per-instance __dict__): " + ", ".join(
        parts
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=3,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--scheduler", default="both",
                        choices=["dense", "active", "both"],
                        help="tick discipline to benchmark; 'both' also "
                             "cross-checks the checksums (default)")
    args = parser.parse_args()

    schedulers = (
        ["dense", "active"] if args.scheduler == "both" else [args.scheduler]
    )
    lines = ["perf_tick — simulator hot-path micro-benchmark"]
    diverged = False
    for name in SCENARIOS:
        rows = {}
        for scheduler in schedulers:
            row = run_scenario(name, args.repeat, scheduler)
            rows[scheduler] = row
            line = (
                f"{name:<10} {scheduler:<7} {row['cycles']:>8} cycles  "
                f"{row['seconds']:.3f} s  "
                f"{row['cycles_per_s']:>10.0f} cycles/s  "
                f"checksum {row['checksum']}"
            )
            print(line, flush=True)
            lines.append(line)
        divergence = checksum_divergence(rows)
        if divergence is not None:
            line = (f"{name:<10} CHECKSUM DIVERGENCE: "
                    f"dense {divergence[0]} != active {divergence[1]}")
            diverged = True
            print(line, flush=True)
            lines.append(line)
        elif len(rows) == 2:
            speedup = (rows["active"]["cycles_per_s"]
                       / rows["dense"]["cycles_per_s"])
            line = (f"{name:<10} active/dense speedup "
                    f"{speedup:.2f}x (checksums match)")
            print(line, flush=True)
            lines.append(line)

    line = slots_note()
    print(line, flush=True)
    lines.append(line)

    results_dir = Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "perf_tick.txt").write_text("\n".join(lines) + "\n")
    return 1 if diverged else 0


if __name__ == "__main__":
    sys.exit(main())
