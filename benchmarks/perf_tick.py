#!/usr/bin/env python
"""Micro-benchmark of the simulator's tick hot path.

Three workloads bracket the inner loop:

* ``synthetic`` — uniform random traffic on a bare 8x8 network at a
  moderate rate, which spends nearly all its time in ``Network.tick`` /
  ``Router.tick`` / NI ``tick`` (the loop the hot-path optimisations
  target);
* ``low_load`` — uniform traffic on a 16x16 network at a 0.2% injection
  rate, where most routers and NIs are idle most cycles — the regime
  the active-set scheduler exists for;
* ``system`` — one full (scheme, benchmark) cell through the GPU model,
  the shape every harness sweep repeats hundreds of times.

Run::

    PYTHONPATH=src python benchmarks/perf_tick.py [--repeat N]
        [--scheduler dense|active|both]

and compare the cycles/second figures across commits.  The checksum is
a digest of the network statistics, so a perf change that alters
simulated behaviour is visible immediately.  With ``--scheduler both``
(the default) every workload runs under the dense oracle and the
active-set scheduler and the benchmark *fails* (exit 1) if their
checksums diverge — the same differential guard CI runs.

Reference numbers are recorded in ``results/perf_tick.txt`` (written on
every run) and quoted in CHANGES.md.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

from repro.core.grid import Grid
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.workloads.synthetic import run_uniform


def _time_best(repeat: int, fn):
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_synthetic(repeat: int, scheduler: str) -> dict:
    """Uniform random traffic: the bare network tick loop."""
    best, result = _time_best(repeat, lambda: run_uniform(
        Grid(8), injection_rate=0.08, cycles=4000, seed=1,
        scheduler=scheduler,
    ))
    checksum = hashlib.sha256(
        json.dumps(result.network.stats.snapshot(), sort_keys=True).encode()
    ).hexdigest()[:10]
    return {
        "name": "synthetic",
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": checksum,
        "received": result.received,
    }


def bench_low_load(repeat: int, scheduler: str) -> dict:
    """Sparse traffic on a big mesh: mostly-idle routers and NIs."""
    best, result = _time_best(repeat, lambda: run_uniform(
        Grid(16), injection_rate=0.002, cycles=3000, seed=1,
        scheduler=scheduler,
    ))
    checksum = hashlib.sha256(
        json.dumps(result.network.stats.snapshot(), sort_keys=True).encode()
    ).hexdigest()[:10]
    return {
        "name": "low_load",
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": checksum,
        "received": result.received,
    }


def bench_system(repeat: int, scheduler: str) -> dict:
    """One full-system experiment cell (SeparateBase x kmeans)."""
    config = ExperimentConfig(quota=40, mcts_iterations=40,
                              scheduler=scheduler)
    best, result = _time_best(
        repeat, lambda: run_experiment("SeparateBase", "kmeans", config)
    )
    return {
        "name": "system",
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": f"{result.cycles}/{result.instructions}/"
                    f"{result.stats_fingerprint[:10]}",
        "received": result.instructions,
    }


BENCHES = (bench_synthetic, bench_low_load, bench_system)


def slots_note() -> str:
    """Per-instance size of the hot allocation classes (all slotted).

    ``__slots__`` removes the per-instance ``__dict__`` (~104 bytes on
    CPython 3.11) from the classes the tick loop allocates or touches
    millions of times.
    """
    import sys as _sys

    from repro.mem.hbm import MemoryAccess
    from repro.noc.stats import LatencyAccumulator
    from repro.noc.types import Flit, Packet, PacketType
    from repro.workloads.generator import GeneratedRequest

    packet = Packet(1, PacketType.READ_REQUEST, 0, 1, 1, 0)
    samples = [
        ("Packet", packet),
        ("Flit", Flit(packet, 0, True, True)),
        ("GeneratedRequest", GeneratedRequest(True, 0, True)),
        ("MemoryAccess", MemoryAccess(None, True, True, 0)),
        ("LatencyAccumulator", LatencyAccumulator()),
    ]
    parts = []
    for name, obj in samples:
        assert not hasattr(obj, "__dict__"), f"{name} grew a __dict__"
        parts.append(f"{name} {_sys.getsizeof(obj)} B")
    return "slotted hot classes (no per-instance __dict__): " + ", ".join(
        parts
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=3,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--scheduler", default="both",
                        choices=["dense", "active", "both"],
                        help="tick discipline to benchmark; 'both' also "
                             "cross-checks the checksums (default)")
    args = parser.parse_args()

    schedulers = (
        ["dense", "active"] if args.scheduler == "both" else [args.scheduler]
    )
    lines = ["perf_tick — simulator hot-path micro-benchmark"]
    diverged = False
    for bench in BENCHES:
        rows = {}
        for scheduler in schedulers:
            row = bench(args.repeat, scheduler)
            rows[scheduler] = row
            line = (
                f"{row['name']:<10} {scheduler:<7} {row['cycles']:>8} cycles  "
                f"{row['seconds']:.3f} s  "
                f"{row['cycles_per_s']:>10.0f} cycles/s  "
                f"checksum {row['checksum']}"
            )
            print(line, flush=True)
            lines.append(line)
        if len(rows) == 2:
            dense, active = rows["dense"], rows["active"]
            if dense["checksum"] != active["checksum"]:
                line = (f"{dense['name']:<10} CHECKSUM DIVERGENCE: "
                        f"dense {dense['checksum']} != "
                        f"active {active['checksum']}")
                diverged = True
            else:
                speedup = active["cycles_per_s"] / dense["cycles_per_s"]
                line = (f"{dense['name']:<10} active/dense speedup "
                        f"{speedup:.2f}x (checksums match)")
            print(line, flush=True)
            lines.append(line)

    line = slots_note()
    print(line, flush=True)
    lines.append(line)

    results_dir = Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "perf_tick.txt").write_text("\n".join(lines) + "\n")
    return 1 if diverged else 0


if __name__ == "__main__":
    sys.exit(main())
