#!/usr/bin/env python
"""Micro-benchmark of the simulator's tick hot path.

Two workloads bracket the inner loop:

* ``synthetic`` — uniform random traffic on a bare 8x8 network, which
  spends nearly all its time in ``Network.tick`` / ``Router.tick`` /
  NI ``tick`` (the loop the hot-path optimisations target);
* ``system`` — one full (scheme, benchmark) cell through the GPU model,
  the shape every harness sweep repeats hundreds of times.

Run::

    PYTHONPATH=src python benchmarks/perf_tick.py [--repeat N]

and compare the cycles/second figures across commits.  The checksum is
a digest of the network statistics, so a perf change that alters
simulated behaviour is visible immediately.

Reference numbers are recorded in ``results/perf_tick.txt`` (written on
every run) and quoted in CHANGES.md.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from pathlib import Path

from repro.core.grid import Grid
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.workloads.synthetic import run_uniform


def bench_synthetic(repeat: int) -> dict:
    """Uniform random traffic: the bare network tick loop."""
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = run_uniform(Grid(8), injection_rate=0.08, cycles=4000, seed=1)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    snap = result.network.stats.snapshot() if hasattr(
        result.network.stats, "snapshot") else {"received": result.received}
    checksum = hashlib.sha256(
        json.dumps(snap, sort_keys=True).encode()
    ).hexdigest()[:10]
    return {
        "name": "synthetic",
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": checksum,
        "received": result.received,
    }


def bench_system(repeat: int) -> dict:
    """One full-system experiment cell (SeparateBase x kmeans)."""
    config = ExperimentConfig(quota=40, mcts_iterations=40)
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = run_experiment("SeparateBase", "kmeans", config)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return {
        "name": "system",
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": f"{result.cycles}/{result.instructions}",
        "received": result.instructions,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=3,
                        help="take the best of N runs (default 3)")
    args = parser.parse_args()

    lines = ["perf_tick — simulator hot-path micro-benchmark"]
    for bench in (bench_synthetic, bench_system):
        row = bench(args.repeat)
        line = (
            f"{row['name']:<10} {row['cycles']:>8} cycles  "
            f"{row['seconds']:.3f} s  "
            f"{row['cycles_per_s']:>10.0f} cycles/s  "
            f"checksum {row['checksum']}"
        )
        print(line, flush=True)
        lines.append(line)

    results_dir = Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "perf_tick.txt").write_text("\n".join(lines) + "\n")


if __name__ == "__main__":
    main()
