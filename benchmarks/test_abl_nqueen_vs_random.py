"""Ablation: does the scored N-Queen placement actually matter?

Compares EquiNox built on (a) the best-scored N-Queen placement, (b)
the worst-scoring N-Queen solution, and (c) a clustered placement, all
with MCTS-selected EIRs, on a memory-bound benchmark.  The scoring
policy should never lose to the worst solution, and clustered CBs
should be clearly worse.
"""

from conftest import publish, quick_config

from repro.core.equinox import design_equinox
from repro.core.grid import Grid
from repro.core.hotzone import placement_penalty
from repro.core.mcts import SearchConfig
from repro.core.nqueen import solution_to_nodes, solve_all
from repro.harness.experiment import run_with_fabric
from repro.harness.metrics import format_table
from repro.schemes import Fabric, get_config

BENCH = "kmeans"


def _run(placement_nodes, config):
    design = design_equinox(
        config.width,
        config.num_cbs,
        SearchConfig(iterations_per_level=config.mcts_iterations,
                     seed=config.seed),
        placement_nodes=placement_nodes,
    )
    fabric = Fabric(
        get_config("EquiNox"),
        Grid(config.width),
        design.placement.nodes,
        equinox_design=design,
    )
    return run_with_fabric(fabric, BENCH, config, "EquiNox-custom")


def test_placement_ablation(benchmark):
    config = quick_config()
    grid = Grid(config.width)

    scored = sorted(
        (placement_penalty(grid, solution_to_nodes(grid, cols)),
         solution_to_nodes(grid, cols))
        for cols in solve_all(config.width)
    )
    best_nodes = scored[0][1]
    worst_nodes = scored[-1][1]
    clustered = tuple(
        grid.node(x, y) for y in (0, 1) for x in (0, 1, 2, 3)
    )

    def run_all():
        return {
            "nqueen-best": _run(None, config),
            "nqueen-worst": _run(worst_nodes, config),
            "clustered": _run(clustered, config),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (name, r.cycles, r.edp) for name, r in results.items()
    ]
    publish(
        "ablation_placement",
        "Ablation: CB placement under EquiNox (kmeans)\n"
        + format_table(("Placement", "Cycles", "EDP"), rows)
        + f"\n(best penalty {scored[0][0]}, worst {scored[-1][0]})",
    )

    assert results["nqueen-best"].cycles <= 1.10 * results["nqueen-worst"].cycles
    assert results["nqueen-best"].cycles < results["clustered"].cycles
