"""Ablation: the injection bottleneck itself (the paper's §3.1 premise).

Open-loop latency-throughput sweep of the few-to-many reply pattern on
the reply network alone: a plain mesh saturates when each CB's single
injection port fills (a 5-flit packet on a 1 flit/cycle port caps
accepted throughput at ~0.2 packets/CB/cycle), while the same mesh with
EquiNox's EIR buffers keeps accepting traffic well past that point —
the many-to-many transformation at work, isolated from the rest of the
system.
"""

from conftest import publish, quick_config

from repro.core.grid import Grid
from repro.core.mcts import SearchConfig
from repro.core.mcts.search import EirSearch
from repro.core.placement import nqueen_best
from repro.harness.metrics import format_table
from repro.noc import EquiNoxInterface, Network, NetworkInterface
from repro.workloads import saturation_throughput, sweep_few_to_many

RATES = (0.1, 0.2, 0.3, 0.4)


def test_injection_saturation(benchmark):
    config = quick_config()
    grid = Grid(config.width)
    placement = nqueen_best(grid, config.num_cbs)
    cbs = list(placement.nodes)

    def plain_factory(g):
        net = Network("plain", g, flit_bytes=16, vc_classes=[(0, 1)])
        return net, {cb: NetworkInterface(net, cb) for cb in cbs}

    design = EirSearch(
        grid, placement.nodes,
        SearchConfig(iterations_per_level=config.mcts_iterations,
                     seed=config.seed),
    ).run().design

    def eir_factory(g):
        net = Network("eir", g, flit_bytes=16, vc_classes=[(0, 1)])
        return net, {
            cb: EquiNoxInterface(net, cb, design) for cb in cbs
        }

    def run_sweeps():
        plain = sweep_few_to_many(grid, cbs, RATES, cycles=1000,
                                  network_factory=plain_factory)
        eir = sweep_few_to_many(grid, cbs, RATES, cycles=1000,
                                network_factory=eir_factory)
        return plain, eir

    plain, eir = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    rows = [
        (p.offered, p.throughput, p.mean_latency, e.throughput,
         e.mean_latency)
        for p, e in zip(plain, eir)
    ]
    gain = saturation_throughput(eir) / saturation_throughput(plain)
    publish(
        "ablation_saturation",
        "Ablation: reply-injection saturation (few-to-many pattern)\n"
        + format_table(
            ("Offered", "Plain tput", "Plain lat", "EIR tput", "EIR lat"),
            rows,
        )
        + f"\nsaturation gain: {gain:.2f}x",
    )

    # The plain mesh saturates near 1 flit/cycle/CB; EIRs move the wall.
    assert saturation_throughput(plain) < 0.23
    assert gain > 1.2
    # Below saturation the designs are equivalent (accepted ~= offered).
    assert abs(plain[0].throughput - eir[0].throughput) < 0.01
