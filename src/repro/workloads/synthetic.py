"""Synthetic traffic drivers for network-only studies.

These bypass the GPU/memory layers and drive a single network directly:

* :func:`run_uniform` — uniform random all-to-all traffic (sanity and
  latency-throughput studies),
* :func:`run_few_to_many` — the reply-side injection pattern (each CB
  sprays data packets at random PEs), used to draw the Figure-4 heat
  maps under different CB placements,
* :func:`run_many_to_few` — the request-side pattern.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.grid import Grid
from ..noc.interface import NetworkInterface
from ..noc.network import Network, network_class
from ..noc.types import Packet, PacketType, packet_flits


@dataclass
class SyntheticResult:
    """Outcome of a synthetic run."""

    network: Network
    sent: int
    received: int
    cycles: int

    @property
    def mean_latency(self) -> float:
        return self.network.stats.mean_latency()

    @property
    def heatmap_variance(self) -> float:
        return self.network.stats.heatmap_variance()


def _drain(network: Network, nodes: Sequence[int], received: List[int]) -> None:
    # Driver-side fast path: at low load most cycles deliver nothing,
    # and a per-node pop scan would dominate the runtime the active
    # scheduler saves inside the network.
    if not network._delivered_total:
        return
    delivered = network._delivered
    for node in nodes:
        if not delivered.get(node):
            continue
        while network.pop_delivered(node) is not None:
            received[0] += 1


def _run(
    network: Network,
    nis: Dict[int, NetworkInterface],
    make_packets,
    cycles: int,
    drain_limit: int = 20000,
) -> SyntheticResult:
    sent = 0
    received = [0]
    nodes = list(network.grid.nodes())
    pid = 0
    for _ in range(cycles):
        for packet_args in make_packets():
            src, dst, ptype, vc_class = packet_args
            pid += 1
            size = packet_flits(ptype, network.flit_bytes)
            packet = Packet(pid, ptype, src, dst, size, 0, vc_class=vc_class)
            nis[src].enqueue(packet)
            sent += 1
        network.tick()
        _drain(network, nodes, received)
    for _ in range(drain_limit):
        if network.idle():
            break
        network.tick()
        _drain(network, nodes, received)
    return SyntheticResult(
        network=network, sent=sent, received=received[0], cycles=network.cycle
    )


def _fresh_network(grid: Grid, **kwargs) -> Dict:
    kwargs.setdefault("flit_bytes", 16)
    kwargs.setdefault("vc_classes", [(0,), (1,)])
    cls = network_class(kwargs.pop("engine", None))
    network = cls("synthetic", grid, **kwargs)
    nis = {node: NetworkInterface(network, node) for node in grid.nodes()}
    return {"network": network, "nis": nis}


def run_uniform(
    grid: Grid,
    injection_rate: float,
    cycles: int = 2000,
    seed: int = 0,
    **net_kwargs,
) -> SyntheticResult:
    """Uniform random traffic at ``injection_rate`` packets/node/cycle."""
    env = _fresh_network(grid, **net_kwargs)
    rng = random.Random(seed)
    nodes = list(grid.nodes())

    def make_packets():
        out = []
        for src in nodes:
            if rng.random() < injection_rate:
                dst = rng.choice(nodes)
                if dst == src:
                    continue
                ptype = (
                    PacketType.READ_REPLY
                    if rng.random() < 0.5
                    else PacketType.READ_REQUEST
                )
                out.append((src, dst, ptype, 1 if ptype.is_reply else 0))
        return out

    return _run(env["network"], env["nis"], make_packets, cycles)


def run_few_to_many(
    grid: Grid,
    cbs: Sequence[int],
    injection_rate: float = 0.5,
    cycles: int = 2000,
    seed: int = 0,
    **net_kwargs,
) -> SyntheticResult:
    """Reply-pattern traffic: CBs send data packets to random PEs.

    ``injection_rate`` is packets per CB per cycle *offered*; the
    network accepts what the injection points can absorb, which is
    exactly the bottleneck under study.
    """
    env = _fresh_network(grid, **net_kwargs)
    rng = random.Random(seed)
    pes = [n for n in grid.nodes() if n not in set(cbs)]

    def make_packets():
        out = []
        for cb in cbs:
            if rng.random() < injection_rate:
                dst = rng.choice(pes)
                out.append((cb, dst, PacketType.READ_REPLY, 1))
        return out

    return _run(env["network"], env["nis"], make_packets, cycles)


@dataclass
class SweepPoint:
    """One offered-rate point of a latency-throughput sweep."""

    offered: float
    throughput: float  # accepted packets per CB per cycle
    mean_latency: float


def sweep_few_to_many(
    grid: Grid,
    cbs: Sequence[int],
    rates: Sequence[float],
    cycles: int = 1200,
    seed: int = 0,
    network_factory=None,
    **net_kwargs,
) -> List[SweepPoint]:
    """Latency-throughput sweep of the few-to-many reply pattern.

    Runs an independent network per offered rate (classic open-loop
    methodology: latency at a point is meaningless once the previous
    point's backlog leaks in).  ``network_factory(grid) -> (network,
    nis)`` lets callers attach custom NIs (e.g. EquiNox's) to measure
    how a design moves the saturation point.
    """
    points = []
    for rate in rates:
        if network_factory is not None:
            network, nis = network_factory(grid)
        else:
            env = _fresh_network(grid, **net_kwargs)
            network, nis = env["network"], env["nis"]
        rng = random.Random(seed)
        pes = [n for n in grid.nodes() if n not in set(cbs)]
        vc_class = min(1, len(network.vc_classes) - 1)
        pid = 0
        received = 0
        for _ in range(cycles):
            for cb in cbs:
                if rng.random() < rate:
                    pid += 1
                    size = packet_flits(PacketType.READ_REPLY,
                                        network.flit_bytes)
                    nis[cb].enqueue(
                        Packet(pid, PacketType.READ_REPLY, cb,
                               rng.choice(pes), size, 0, vc_class=vc_class)
                    )
            network.tick()
            for pe in pes:
                while network.pop_delivered(pe):
                    received += 1
        points.append(
            SweepPoint(
                offered=rate,
                throughput=received / cycles / len(cbs),
                mean_latency=network.stats.mean_latency(),
            )
        )
    return points


def saturation_throughput(points: Sequence[SweepPoint]) -> float:
    """The highest accepted throughput across a sweep."""
    return max(p.throughput for p in points) if points else 0.0


def run_many_to_few(
    grid: Grid,
    cbs: Sequence[int],
    injection_rate: float = 0.05,
    cycles: int = 2000,
    seed: int = 0,
    **net_kwargs,
) -> SyntheticResult:
    """Request-pattern traffic: every PE sends short packets to CBs."""
    env = _fresh_network(grid, **net_kwargs)
    rng = random.Random(seed)
    cbs = list(cbs)
    pes = [n for n in grid.nodes() if n not in set(cbs)]

    def make_packets():
        out = []
        for pe in pes:
            if rng.random() < injection_rate:
                out.append((pe, rng.choice(cbs), PacketType.READ_REQUEST, 0))
        return out

    return _run(env["network"], env["nis"], make_packets, cycles)
