"""Deterministic per-PE request stream generation.

Each PE owns a :class:`RequestGenerator` seeded from the global seed and
its node id, so a run is bit-reproducible regardless of PE iteration
order.  Burstiness is modelled as a two-state (active/idle) Markov
process whose duty cycle keeps the *mean* issue probability equal to
the profile's intensity.
"""

from __future__ import annotations

import random
from typing import Optional

from .profiles import WorkloadProfile

BURST_PERIOD = 64
"""Mean cycles between activity-phase switches."""


class GeneratedRequest:
    """One memory instruction a PE wants to issue.

    ``dependent`` marks instructions that must wait for the previously
    issued instruction's reply.
    """

    __slots__ = ("is_read", "cb_index", "row_hit", "dependent")

    def __init__(
        self,
        is_read: bool,
        cb_index: int,
        row_hit: bool,
        dependent: bool = False,
    ) -> None:
        self.is_read = is_read
        self.cb_index = cb_index
        self.row_hit = row_hit
        self.dependent = dependent


class RequestGenerator:
    """Per-PE stochastic request source driven by a workload profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        num_cbs: int,
        seed: int,
        pe_index: int,
    ) -> None:
        self.profile = profile
        self.num_cbs = num_cbs
        self._rng = random.Random((seed << 20) ^ (pe_index * 2654435761 % 2**31))
        self._active = True
        # With burstiness b the active-phase issue rate is boosted and
        # the duty cycle reduced so the long-run mean stays `intensity`.
        b = profile.burstiness
        self._duty = 1.0 - 0.7 * b
        boosted = profile.intensity / self._duty
        self._active_rate = min(1.0, boosted)
        self._cb_rr = self._rng.randrange(num_cbs)

    def maybe_issue(self) -> Optional[GeneratedRequest]:
        """Roll the dice for this cycle; return a request or ``None``."""
        rng = self._rng
        if rng.random() < 1.0 / BURST_PERIOD:  # phase switch
            self._active = rng.random() < self._duty
        if not self._active or rng.random() >= self._active_rate:
            return None
        profile = self.profile
        is_read = rng.random() < profile.read_fraction
        # Fine-grained address interleaving spreads lines uniformly
        # across cache banks; a rotating pointer models the stream.
        self._cb_rr = (self._cb_rr + 1 + rng.randrange(2)) % self.num_cbs
        row_hit = rng.random() < profile.row_hit_rate
        dependent = rng.random() < profile.dependency
        return GeneratedRequest(
            is_read=is_read,
            cb_index=self._cb_rr,
            row_hit=row_hit,
            dependent=dependent,
        )

    def roll_hit(self) -> bool:
        """Whether a request hits in the L2 bank (evaluated at the CB)."""
        return self._rng.random() < self.profile.l2_hit_rate
