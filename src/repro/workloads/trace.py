"""Trace recording and replay for memory-request streams.

The stochastic generators make runs reproducible given a seed, but
cross-implementation comparisons (and debugging) want the *same
requests* replayed exactly.  A :class:`TraceRecorder` captures every
request a generator produces; :class:`TraceSource` replays a recorded
trace cycle-accurately (same cycle, same CB, same read/write mix).
Traces serialise to a compact JSON-lines format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .generator import GeneratedRequest, RequestGenerator
from .profiles import WorkloadProfile


@dataclass(frozen=True)
class TraceEntry:
    """One issued request: which cycle it was *offered* by the core."""

    cycle: int
    is_read: bool
    cb_index: int
    row_hit: bool
    dependent: bool

    def to_line(self) -> str:
        return json.dumps(
            [self.cycle, int(self.is_read), self.cb_index,
             int(self.row_hit), int(self.dependent)]
        )

    @staticmethod
    def from_line(line: str, context: str = "") -> "TraceEntry":
        """Parse one trace line, naming the source in every error.

        ``context`` (e.g. ``" (trace.jsonl:7)"``) is appended to the
        message, so a truncated or hand-edited trace fails pointing at
        the exact file and line instead of a bare json traceback.
        """
        try:
            fields = json.loads(line)
        except ValueError:
            raise ValueError(
                f"trace line is not valid JSON{context}: {line[:80]!r}"
            ) from None
        if not isinstance(fields, list) or len(fields) != 5:
            raise ValueError(
                "trace line must be a JSON list of 5 fields "
                f"[cycle, is_read, cb, row_hit, dependent]{context}: "
                f"{line[:80]!r}"
            )
        cycle, is_read, cb_index, row_hit, dependent = fields
        if not isinstance(cycle, int) or isinstance(cycle, bool) or cycle < 1:
            raise ValueError(
                f"trace cycle must be a positive integer{context}: "
                f"{cycle!r}"
            )
        if (
            not isinstance(cb_index, int)
            or isinstance(cb_index, bool)
            or cb_index < 0
        ):
            raise ValueError(
                f"trace cb index must be a non-negative integer{context}: "
                f"{cb_index!r}"
            )
        return TraceEntry(
            cycle=cycle,
            is_read=bool(is_read),
            cb_index=cb_index,
            row_hit=bool(row_hit),
            dependent=bool(dependent),
        )


class TraceRecorder:
    """Wraps a :class:`RequestGenerator`, recording what it produces.

    Drop-in replacement: exposes ``maybe_issue`` with identical
    behaviour, counting cycles internally.
    """

    def __init__(self, generator: RequestGenerator) -> None:
        self.generator = generator
        self.entries: List[TraceEntry] = []
        self._cycle = 0

    def maybe_issue(self) -> Optional[GeneratedRequest]:
        self._cycle += 1
        request = self.generator.maybe_issue()
        if request is not None:
            self.entries.append(
                TraceEntry(
                    cycle=self._cycle,
                    is_read=request.is_read,
                    cb_index=request.cb_index,
                    row_hit=request.row_hit,
                    dependent=request.dependent,
                )
            )
        return request

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for entry in self.entries:
                handle.write(entry.to_line() + "\n")
        return path


class TraceSource:
    """Replays a recorded trace as a ``maybe_issue`` source.

    On cycle ``c`` it returns the request recorded at cycle ``c`` (or
    ``None``), so a replayed run offers requests at exactly the
    recorded times.  When the trace is exhausted it returns ``None``
    forever (``exhausted`` flips to True).
    """

    def __init__(self, entries: List[TraceEntry]) -> None:
        self._by_cycle: Dict[int, TraceEntry] = {}
        for entry in entries:
            if entry.cycle in self._by_cycle:
                raise ValueError(
                    f"duplicate trace entry for cycle {entry.cycle}"
                )
            self._by_cycle[entry.cycle] = entry
        self._cycle = 0
        self._last_cycle = max(self._by_cycle, default=0)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceSource":
        """Load a JSON-lines trace; errors name the file and line."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ValueError(f"cannot read trace file {path}: {exc}") from None
        entries = [
            TraceEntry.from_line(line, context=f" ({path}:{lineno})")
            for lineno, line in enumerate(text.splitlines(), start=1)
            if line.strip()
        ]
        if not entries:
            raise ValueError(f"trace file {path} contains no entries")
        return cls(entries)

    @property
    def exhausted(self) -> bool:
        return self._cycle >= self._last_cycle

    def maybe_issue(self) -> Optional[GeneratedRequest]:
        self._cycle += 1
        entry = self._by_cycle.get(self._cycle)
        if entry is None:
            return None
        return GeneratedRequest(
            is_read=entry.is_read,
            cb_index=entry.cb_index,
            row_hit=entry.row_hit,
            dependent=entry.dependent,
        )


def record_trace(
    profile: WorkloadProfile,
    num_cbs: int,
    cycles: int,
    seed: int = 0,
    pe_index: int = 0,
) -> List[TraceEntry]:
    """Generate and record ``cycles`` worth of one PE's request stream."""
    recorder = TraceRecorder(
        RequestGenerator(profile, num_cbs, seed=seed, pe_index=pe_index)
    )
    for _ in range(cycles):
        recorder.maybe_issue()
    return recorder.entries
