"""Workload substrate: 29 benchmark profiles and traffic generators."""

from .generator import GeneratedRequest, RequestGenerator
from .profiles import (
    BENCHMARKS,
    BY_NAME,
    TIERS,
    WorkloadProfile,
    get,
    names,
    subset,
    tier,
)
from .trace import TraceEntry, TraceRecorder, TraceSource, record_trace
from .synthetic import (
    SweepPoint,
    SyntheticResult,
    run_few_to_many,
    run_many_to_few,
    run_uniform,
    saturation_throughput,
    sweep_few_to_many,
)

__all__ = [
    "GeneratedRequest",
    "RequestGenerator",
    "BENCHMARKS",
    "BY_NAME",
    "WorkloadProfile",
    "get",
    "names",
    "subset",
    "TIERS",
    "tier",
    "TraceEntry",
    "TraceRecorder",
    "TraceSource",
    "record_trace",
    "SweepPoint",
    "SyntheticResult",
    "run_few_to_many",
    "run_many_to_few",
    "run_uniform",
    "saturation_throughput",
    "sweep_few_to_many",
]
