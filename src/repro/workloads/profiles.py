"""The 29 benchmark profiles standing in for Rodinia + CUDA SDK traces.

The paper drives its simulator with 29 benchmarks from Rodinia and the
Nvidia CUDA SDK.  GPU binaries cannot run here, so each benchmark is
replaced by the traffic signature the NoC actually observes, described
by five parameters:

* ``intensity`` — probability a PE issues a memory instruction in a
  cycle when it is in an active phase (the workload's memory demand),
* ``read_fraction`` — reads vs writes (the suite-wide mix is tuned so
  reply traffic carries ~73% of NoC bits, matching the paper's 72.7%),
* ``l2_hit_rate`` — fraction of requests served from the cache bank,
* ``row_hit_rate`` — DRAM row-buffer locality of L2 misses,
* ``burstiness`` — 0 for smooth issue, towards 1 for phased bursts.

Intensity classes follow the paper's qualitative observations, e.g.
``gaussian`` and ``myocyte`` are latency- rather than bandwidth-bound
(their Figure-10 latency is mostly non-queuing), while ``kmeans``,
``fastWalshTransform``, ``scan`` and ``sortingNetworks`` respond
strongly to injection bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """The NoC-visible traffic signature of one GPU benchmark."""

    name: str
    suite: str
    intensity: float
    read_fraction: float
    l2_hit_rate: float
    row_hit_rate: float
    burstiness: float
    dependency: float = 0.15
    """Fraction of memory instructions that depend on the previous
    reply (pointer chasing / reductions): these serialise on round-trip
    latency, making the benchmark latency- rather than bandwidth-bound."""

    def __post_init__(self) -> None:
        for field_name in ("intensity", "read_fraction", "l2_hit_rate",
                           "row_hit_rate", "burstiness", "dependency"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name}={value} outside [0, 1]")

    def scaled(self, intensity_scale: float) -> "WorkloadProfile":
        """A copy with scaled memory intensity (used by sweeps)."""
        return replace(
            self, intensity=min(1.0, self.intensity * intensity_scale)
        )


def _p(
    name: str,
    suite: str,
    intensity: float,
    read_fraction: float = 0.8,
    l2_hit_rate: float = 0.5,
    row_hit_rate: float = 0.6,
    burstiness: float = 0.2,
    dependency: float = 0.15,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite=suite,
        intensity=intensity,
        read_fraction=read_fraction,
        l2_hit_rate=l2_hit_rate,
        row_hit_rate=row_hit_rate,
        burstiness=burstiness,
        dependency=dependency,
    )


#: The evaluation suite: 16 Rodinia + 13 CUDA SDK benchmarks = 29.
#:
#: Intensity calibration: on 8x8 with 56 PEs and a 1 flit/cycle/CB
#: reply-injection budget (~1.6 data replies/cycle chip-wide for a
#: separate network), demand saturates the baseline around intensity
#: 0.04.  The suite spans well below (compute-bound: gaussian, myocyte,
#: leukocyte) to several times above (memory-bound: kmeans, scan,
#: fastWalshTransform), matching the paper's qualitative spread.
BENCHMARKS: Tuple[WorkloadProfile, ...] = (
    # ---- Rodinia ----------------------------------------------------
    _p("backprop", "rodinia", 0.100, 0.75, 0.45, 0.70, 0.3, 0.20),
    _p("bfs", "rodinia", 0.160, 0.90, 0.30, 0.30, 0.5, 0.55),
    _p("b+tree", "rodinia", 0.120, 0.90, 0.40, 0.35, 0.3, 0.50),
    _p("cfd", "rodinia", 0.140, 0.80, 0.35, 0.55, 0.2, 0.15),
    _p("dwt2d", "rodinia", 0.100, 0.70, 0.50, 0.70, 0.2, 0.20),
    _p("gaussian", "rodinia", 0.020, 0.80, 0.60, 0.75, 0.1, 0.70),
    _p("heartwall", "rodinia", 0.130, 0.85, 0.40, 0.55, 0.4, 0.10),
    _p("hotspot", "rodinia", 0.080, 0.75, 0.55, 0.70, 0.2, 0.25),
    _p("kmeans", "rodinia", 0.200, 0.90, 0.30, 0.60, 0.3, 0.05),
    _p("lavaMD", "rodinia", 0.040, 0.80, 0.65, 0.70, 0.1, 0.45),
    _p("leukocyte", "rodinia", 0.030, 0.80, 0.70, 0.75, 0.1, 0.55),
    _p("lud", "rodinia", 0.070, 0.75, 0.55, 0.65, 0.2, 0.40),
    _p("myocyte", "rodinia", 0.018, 0.70, 0.65, 0.70, 0.1, 0.80),
    _p("nw", "rodinia", 0.090, 0.80, 0.45, 0.55, 0.3, 0.45),
    _p("particlefilter", "rodinia", 0.150, 0.85, 0.35, 0.50, 0.4, 0.10),
    _p("srad", "rodinia", 0.120, 0.75, 0.45, 0.65, 0.2, 0.15),
    # ---- CUDA SDK ---------------------------------------------------
    _p("BlackScholes", "cuda-sdk", 0.060, 0.65, 0.50, 0.80, 0.1, 0.20),
    _p("convolutionSeparable", "cuda-sdk", 0.100, 0.80, 0.55, 0.75, 0.2, 0.15),
    _p("fastWalshTransform", "cuda-sdk", 0.180, 0.85, 0.25, 0.55, 0.3, 0.05),
    _p("histogram", "cuda-sdk", 0.120, 0.85, 0.40, 0.40, 0.3, 0.30),
    _p("matrixMul", "cuda-sdk", 0.045, 0.80, 0.70, 0.80, 0.1, 0.30),
    _p("mergeSort", "cuda-sdk", 0.130, 0.80, 0.40, 0.50, 0.3, 0.35),
    _p("monteCarlo", "cuda-sdk", 0.140, 0.88, 0.35, 0.60, 0.4, 0.10),
    _p("reduction", "cuda-sdk", 0.160, 0.90, 0.35, 0.65, 0.2, 0.25),
    _p("scalarProd", "cuda-sdk", 0.110, 0.85, 0.45, 0.70, 0.2, 0.20),
    _p("scan", "cuda-sdk", 0.180, 0.85, 0.30, 0.60, 0.3, 0.10),
    _p("sortingNetworks", "cuda-sdk", 0.170, 0.85, 0.30, 0.50, 0.3, 0.10),
    _p("transpose", "cuda-sdk", 0.150, 0.80, 0.35, 0.35, 0.2, 0.05),
    _p("vectorAdd", "cuda-sdk", 0.140, 0.70, 0.30, 0.85, 0.1, 0.05),
)

BY_NAME: Dict[str, WorkloadProfile] = {b.name: b for b in BENCHMARKS}


def get(name: str) -> WorkloadProfile:
    """Look up a benchmark profile by name."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; known: {sorted(BY_NAME)}"
        ) from None


def names() -> List[str]:
    return [b.name for b in BENCHMARKS]


def subset(count: int) -> Tuple[WorkloadProfile, ...]:
    """A smaller representative slice (used by scalability studies).

    Picks benchmarks spread across the intensity spectrum so the subset
    preserves the suite's compute-bound / memory-bound balance.
    """
    ordered = sorted(BENCHMARKS, key=lambda b: b.intensity)
    if count >= len(ordered):
        return tuple(ordered)
    step = (len(ordered) - 1) / max(count - 1, 1)
    return tuple(ordered[round(i * step)] for i in range(count))


#: Named benchmark tiers for sweeps.  A tier trades suite coverage for
#: per-cell cost: ``smoke`` is the cheap CI trio, ``full`` the whole
#: 29-benchmark paper suite, and ``mesh32`` a six-benchmark slice spread
#: across the intensity spectrum for 32x32 scale-up sweeps, where one
#: cell simulates ~16x the tiles of the paper's 8x8 runs.
TIERS: Dict[str, Tuple[str, ...]] = {
    "smoke": ("gaussian", "hotspot", "kmeans"),
    "full": tuple(b.name for b in BENCHMARKS),
    "mesh32": tuple(b.name for b in subset(6)),
}


def tier(name: str) -> List[str]:
    """Look up a named benchmark tier (see :data:`TIERS`)."""
    try:
        return list(TIERS[name])
    except KeyError:
        raise ValueError(
            f"unknown workload tier {name!r}; known: {sorted(TIERS)}"
        ) from None
