"""Micro-bump (µbump) count and area accounting (paper section 6.6).

Every interposer wire needs a µbump at each die attachment point.  With
the paper's 40 µm-pitch µbumps, a 128-bit bi-directional link consumes
about 0.34 mm^2 of die area.  The paper's headline comparison:

* Interposer-CMesh: 128 uni-directional 256-bit links, one µbump per
  wire per die crossing -> 32,768 µbumps.
* EquiNox: 24 uni-directional 128-bit links, two µbumps per wire (down
  to the interposer and back up) -> 6,144 µbumps (-81.25%).
"""

from __future__ import annotations

from dataclasses import dataclass

UBUMP_PITCH_UM = 40.0
"""µbump pitch (µm), per De Vos et al. [22]."""


def ubump_area_mm2(num_bumps: int, pitch_um: float = UBUMP_PITCH_UM) -> float:
    """Die area consumed by ``num_bumps`` µbumps at the given pitch."""
    if num_bumps < 0:
        raise ValueError("bump count must be non-negative")
    return num_bumps * (pitch_um * 1e-3) ** 2


@dataclass(frozen=True)
class UbumpBudget:
    """µbump accounting for one scheme's interposer links."""

    scheme: str
    num_links: int
    bits_per_link: int
    bumps_per_wire: int

    @property
    def num_bumps(self) -> int:
        return self.num_links * self.bits_per_link * self.bumps_per_wire

    @property
    def area_mm2(self) -> float:
        return ubump_area_mm2(self.num_bumps)


def interposer_cmesh_budget(
    num_links: int = 128, bits_per_link: int = 256
) -> UbumpBudget:
    """The paper's Interposer-CMesh configuration (32,768 µbumps)."""
    return UbumpBudget(
        scheme="interposer-cmesh",
        num_links=num_links,
        bits_per_link=bits_per_link,
        bumps_per_wire=1,
    )


def equinox_budget(num_eirs: int = 24, bits_per_link: int = 128) -> UbumpBudget:
    """EquiNox's budget: one uni-directional link per (CB, EIR) pair.

    CB->EIR links carry injection traffic only, so each connection is a
    single uni-directional 128-bit link (24 of them in the paper's 8x8
    design, i.e. 3 EIRs per CB on average after boundary effects), and
    every wire dives from the processor die into the interposer and
    surfaces again, so it needs two µbumps.
    """
    return UbumpBudget(
        scheme="equinox",
        num_links=num_eirs,
        bits_per_link=bits_per_link,
        bumps_per_wire=2,
    )


def budget_for_design(design, bits_per_link: int = 128) -> UbumpBudget:
    """µbump budget for a concrete :class:`~repro.core.eir.EirDesign`."""
    return equinox_budget(
        num_eirs=len(design.links()), bits_per_link=bits_per_link
    )


def link_ubump_area_mm2(bits: int = 128, bidirectional: bool = True) -> float:
    """Area of the µbumps for one link (0.34 mm^2 for 128-bit bi-dir)."""
    wires = bits * (2 if bidirectional else 1)
    return ubump_area_mm2(wires)
