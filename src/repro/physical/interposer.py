"""Interposer RDL wire planning: crossings, layers and link lengths.

Converts an EIR design (or any set of node-to-node interposer links)
into straight RDL segments, counts layer conflicts, and assigns wires to
redistribution layers by greedy colouring of the conflict graph.  The
layer count is the quantity the paper ties to dual-damascene yielding
cost (section 3.2.3): one layer suffices iff there are no crossings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.grid import Grid
from . import geometry

TILE_PITCH_MM = 1.5
"""Physical pitch between adjacent tile centres (mm); a ~12 mm die at 8x8."""

MAX_SINGLE_CYCLE_MM = 2 * TILE_PITCH_MM
"""Longest interposer wire that fits in one clock cycle without repeaters
(the paper's 2-hop links meet this, section 4.3)."""


@dataclass(frozen=True)
class RdlPlan:
    """A routed set of interposer wires.

    Attributes
    ----------
    links:
        The ``(src_node, dst_node)`` pairs, in input order.
    segments:
        The straight RDL segment per link.
    crossings:
        Conflicting link-index pairs.
    layer_of:
        Greedy layer assignment per link index (0-based).
    """

    links: Tuple[Tuple[int, int], ...]
    segments: Tuple[geometry.Segment, ...]
    crossings: Tuple[Tuple[int, int], ...]
    layer_of: Tuple[int, ...]

    @property
    def num_crossings(self) -> int:
        return len(self.crossings)

    @property
    def num_layers(self) -> int:
        return max(self.layer_of, default=-1) + 1 if self.links else 0

    @property
    def total_length_mm(self) -> float:
        return sum(s.length for s in self.segments) * TILE_PITCH_MM

    def needs_repeaters(self) -> bool:
        """Whether any wire exceeds the single-cycle length budget."""
        return any(
            s.length * TILE_PITCH_MM > MAX_SINGLE_CYCLE_MM for s in self.segments
        )


def plan_links(grid: Grid, links: Sequence[Tuple[int, int]]) -> RdlPlan:
    """Route ``links`` as straight RDL wires and assign layers."""
    segments = tuple(
        geometry.Segment(
            a=tuple(map(float, grid.coord(src))),
            b=tuple(map(float, grid.coord(dst))),
        )
        for src, dst in links
    )
    crossings = tuple(geometry.crossing_pairs(segments))
    layer_of = _greedy_layers(len(links), crossings)
    return RdlPlan(
        links=tuple(links),
        segments=segments,
        crossings=crossings,
        layer_of=layer_of,
    )


def _greedy_layers(n: int, conflicts: Sequence[Tuple[int, int]]) -> Tuple[int, ...]:
    """Greedy colouring of the conflict graph; colours are RDL layers."""
    adj: Dict[int, List[int]] = {i: [] for i in range(n)}
    for i, j in conflicts:
        adj[i].append(j)
        adj[j].append(i)
    layers = [-1] * n
    for i in range(n):
        used = {layers[j] for j in adj[i] if layers[j] >= 0}
        layer = 0
        while layer in used:
            layer += 1
        layers[i] = layer
    return tuple(layers)


def plan_for_design(design) -> RdlPlan:
    """Route the interposer links of an :class:`~repro.core.eir.EirDesign`."""
    return plan_links(design.grid, design.links())
