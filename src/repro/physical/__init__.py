"""Physical-design substrate: RDL geometry, layer planning, µbumps."""

from .geometry import Segment, count_crossings, crossing_pairs, segments_cross
from .interposer import RdlPlan, plan_for_design, plan_links
from .ubump import (
    UbumpBudget,
    budget_for_design,
    equinox_budget,
    interposer_cmesh_budget,
    link_ubump_area_mm2,
    ubump_area_mm2,
)

__all__ = [
    "Segment",
    "count_crossings",
    "crossing_pairs",
    "segments_cross",
    "RdlPlan",
    "plan_for_design",
    "plan_links",
    "UbumpBudget",
    "budget_for_design",
    "equinox_budget",
    "interposer_cmesh_budget",
    "link_ubump_area_mm2",
    "ubump_area_mm2",
]
