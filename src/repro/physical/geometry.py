"""Planar geometry for interposer (RDL) wire planning.

Interposer links are modelled as straight segments between tile centres
on the redistribution layer.  Two links that cross need to be placed on
different metal layers, so the crossing count drives RDL layer count and
therefore yielding cost (paper section 3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

Point = Tuple[float, float]


@dataclass(frozen=True)
class Segment:
    """A straight wire segment between two points."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        return ((self.a[0] - self.b[0]) ** 2 + (self.a[1] - self.b[1]) ** 2) ** 0.5

    def shares_endpoint(self, other: "Segment") -> bool:
        return bool({self.a, self.b} & {other.a, other.b})


def _orient(p: Point, q: Point, r: Point) -> float:
    """Twice the signed area of triangle pqr (>0 counter-clockwise)."""
    return (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])


def _on_segment(p: Point, q: Point, r: Point) -> bool:
    """Whether collinear point ``q`` lies on segment ``pr``."""
    return (
        min(p[0], r[0]) <= q[0] <= max(p[0], r[0])
        and min(p[1], r[1]) <= q[1] <= max(p[1], r[1])
    )


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """Whether two segments intersect at any point (including endpoints)."""
    p1, q1, p2, q2 = s1.a, s1.b, s2.a, s2.b
    o1 = _orient(p1, q1, p2)
    o2 = _orient(p1, q1, q2)
    o3 = _orient(p2, q2, p1)
    o4 = _orient(p2, q2, q1)
    if ((o1 > 0) != (o2 > 0)) and ((o3 > 0) != (o4 > 0)) and o1 and o2 and o3 and o4:
        return True
    if o1 == 0 and _on_segment(p1, p2, q1):
        return True
    if o2 == 0 and _on_segment(p1, q2, q1):
        return True
    if o3 == 0 and _on_segment(p2, p1, q2):
        return True
    if o4 == 0 and _on_segment(p2, q1, q2):
        return True
    return False


def segments_cross(s1: Segment, s2: Segment) -> bool:
    """Whether two wires genuinely conflict on one RDL layer.

    Segments that merely share an endpoint (links fanning out of the
    same CB bump) do not conflict.  Everything else that intersects —
    proper crossings, T-junctions, collinear overlap — does.
    """
    if s1.shares_endpoint(s2):
        # Fan-out from a shared bump is fine unless the wires overlap
        # along a stretch (collinear and pointing the same way).
        return _collinear_overlap(s1, s2)
    return segments_intersect(s1, s2)


def _collinear_overlap(s1: Segment, s2: Segment) -> bool:
    """Whether two endpoint-sharing segments overlap beyond the endpoint."""
    shared = ({s1.a, s1.b} & {s2.a, s2.b}).pop()
    other1 = s1.b if s1.a == shared else s1.a
    other2 = s2.b if s2.a == shared else s2.a
    if _orient(shared, other1, other2) != 0:
        return False
    # Collinear: overlap iff both others are on the same side of shared.
    d1 = (other1[0] - shared[0], other1[1] - shared[1])
    d2 = (other2[0] - shared[0], other2[1] - shared[1])
    return d1[0] * d2[0] + d1[1] * d2[1] > 0


def crossing_pairs(segments: Sequence[Segment]) -> List[Tuple[int, int]]:
    """Index pairs of segments that conflict on a single layer."""
    pairs = []
    for i in range(len(segments)):
        for j in range(i + 1, len(segments)):
            if segments_cross(segments[i], segments[j]):
                pairs.append((i, j))
    return pairs


def count_crossings(segments: Sequence[Segment]) -> int:
    """Number of conflicting segment pairs."""
    return len(crossing_pairs(segments))


def crossing_point(s1: Segment, s2: Segment) -> Optional[Point]:
    """The intersection point of two properly-crossing segments, if any."""
    x1, y1 = s1.a
    x2, y2 = s1.b
    x3, y3 = s2.a
    x4, y4 = s2.b
    denom = (x1 - x2) * (y3 - y4) - (y1 - y2) * (x3 - x4)
    if denom == 0:
        return None
    t = ((x1 - x3) * (y3 - y4) - (y1 - y3) * (x3 - x4)) / denom
    u = ((x1 - x3) * (y1 - y2) - (y1 - y3) * (x1 - x2)) / denom
    if 0 <= t <= 1 and 0 <= u <= 1:
        return (x1 + t * (x2 - x1), y1 + t * (y2 - y1))
    return None
