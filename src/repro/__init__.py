"""repro: a reproduction of EquiNox (HPCA 2020).

EquiNox removes the reply-injection bottleneck of interposer-based
throughput processors by giving each cache bank a group of *Equivalent
Injection Routers* reached over interposer links.  This package
implements the full design flow (N-Queen placement, MCTS EIR selection,
the modified network interface) together with every substrate the
paper's evaluation rests on: a flit-level NoC simulator, a GPU
memory-system model, an HBM timing model, interposer physical-design
accounting, and energy/area models.

Quick start::

    from repro import design_equinox, run_experiment

    design = design_equinox(width=8)        # placement + MCTS + RDL plan
    print(design.summary())

    result = run_experiment("EquiNox", "kmeans")
    print(result.cycles, result.edp)
"""

from .core import (
    EquiNoxDesign,
    Grid,
    design_equinox,
    placement_by_name,
)
from .harness import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_suite,
)
from .schemes import SCHEME_ORDER, Fabric, SchemeConfig, get_config
from .workloads import BENCHMARKS, WorkloadProfile

__version__ = "1.8.0"

__all__ = [
    "EquiNoxDesign",
    "Grid",
    "design_equinox",
    "placement_by_name",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_suite",
    "SCHEME_ORDER",
    "Fabric",
    "SchemeConfig",
    "get_config",
    "BENCHMARKS",
    "WorkloadProfile",
    "__version__",
]
