"""Event-based NoC energy model (the DSENT-equivalent substrate).

Energy is accumulated from the event counters every network records
(buffer writes/reads, crossbar traversals, allocations, link hops) with
per-event energies representative of a 28 nm process at ~1 V, scaled by
flit width.  Static (leakage) power scales with each router's storage
and port count and integrates over the run's wall-clock time.

Interposer links are modelled per Jerger et al. / Saban: electrically
comparable to on-chip wires of the same length, with a slightly lower
capacitance per mm (no repeater loading for the sub-3 mm lengths
EquiNox uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..noc.network import Network
from ..schemes.base import BASE_FREQUENCY_GHZ, Fabric


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (pJ) at the reference flit width, 28 nm."""

    reference_flit_bytes: int = 16
    buffer_write_pj: float = 2.5
    buffer_read_pj: float = 1.8
    xbar_pj: float = 3.2
    alloc_pj: float = 0.4
    link_onchip_pj: float = 8.5          # one tile pitch (~1.5 mm)
    link_interposer_pj_per_tile: float = 6.0
    router_leak_mw_per_port: float = 0.14  # per (port x VC-buffer) pair
    ni_buffer_leak_mw: float = 0.10
    frequency_ghz: float = BASE_FREQUENCY_GHZ


DEFAULT_PARAMS = EnergyParams()


@dataclass
class EnergyBreakdown:
    """Energy of one network, split by component (picojoules)."""

    name: str
    buffer_pj: float
    xbar_pj: float
    alloc_pj: float
    link_pj: float
    static_pj: float

    @property
    def dynamic_pj(self) -> float:
        return self.buffer_pj + self.xbar_pj + self.alloc_pj + self.link_pj

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.static_pj


@dataclass
class EnergyReport:
    """Whole-fabric energy for one run."""

    networks: List[EnergyBreakdown]
    base_cycles: int
    frequency_ghz: float

    @property
    def total_pj(self) -> float:
        return sum(n.total_pj for n in self.networks)

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1e3

    @property
    def execution_ns(self) -> float:
        return self.base_cycles / self.frequency_ghz

    @property
    def edp(self) -> float:
        """Energy-delay product in nJ * ns."""
        return self.total_nj * self.execution_ns


def _width_scale(flit_bytes: int, params: EnergyParams) -> float:
    return flit_bytes / params.reference_flit_bytes


def router_leakage_mw(net: Network, params: EnergyParams) -> float:
    """Total router leakage of a network, scaled by size and width.

    High-radix routers leak superlinearly in port count: the crossbar's
    area (and hence its leakage) grows with the square of the radix, so
    each port of a 16-port CMesh router costs more than each port of a
    5-port mesh router.
    """
    scale = _width_scale(net.flit_bytes, params)
    total = 0.0
    for router in net.routers:
        ports = len(router.inputs) + len(router.outputs)
        radix_factor = ports / REFERENCE_ROUTER_PORTS
        total += ports * net.num_vcs * radix_factor
    return params.router_leak_mw_per_port * total * scale


def ni_leakage_mw(net: Network, params: EnergyParams) -> float:
    scale = _width_scale(net.flit_bytes, params)
    buffers = sum(len(ni.buffers) for ni in net.nis)
    return params.ni_buffer_leak_mw * buffers * scale


REFERENCE_ROUTER_PORTS = 10  # 5-in/5-out basic mesh router


def _mean_radix_factor(net: Network) -> float:
    """Crossbar energy grows with port count (wire length across the
    crossbar scales with radix); normalised to a basic 5-port router."""
    total_ports = sum(
        len(r.inputs) + len(r.outputs) for r in net.routers
    )
    mean_ports = total_ports / len(net.routers)
    return mean_ports / REFERENCE_ROUTER_PORTS


def network_energy(
    net: Network, base_cycles: int, params: EnergyParams = DEFAULT_PARAMS
) -> EnergyBreakdown:
    """Energy of one network over a run of ``base_cycles`` base cycles."""
    stats = net.stats
    scale = _width_scale(net.flit_bytes, params)
    buffer_pj = (
        stats.buffer_writes * params.buffer_write_pj
        + stats.buffer_reads * params.buffer_read_pj
    ) * scale
    xbar_pj = (
        stats.xbar_traversals * params.xbar_pj * scale
        * _mean_radix_factor(net)
    )
    alloc_pj = stats.vc_allocs * params.alloc_pj * scale
    link_pj = (
        stats.link_hops_onchip * params.link_onchip_pj
        + stats.interposer_hop_length * params.link_interposer_pj_per_tile
    ) * scale
    leak_mw = router_leakage_mw(net, params) + ni_leakage_mw(net, params)
    seconds = base_cycles / (params.frequency_ghz * 1e9)
    static_pj = leak_mw * 1e-3 * seconds * 1e12
    return EnergyBreakdown(
        name=net.name,
        buffer_pj=buffer_pj,
        xbar_pj=xbar_pj,
        alloc_pj=alloc_pj,
        link_pj=link_pj,
        static_pj=static_pj,
    )


def fabric_energy(
    fabric: Fabric, base_cycles: int, params: EnergyParams = DEFAULT_PARAMS
) -> EnergyReport:
    """Energy of every network in a fabric over one run."""
    breakdowns = [
        network_energy(net, base_cycles, params)
        for net, _ratio, _role in fabric.networks
    ]
    return EnergyReport(
        networks=breakdowns,
        base_cycles=base_cycles,
        frequency_ghz=params.frequency_ghz,
    )
