"""Structural NoC area model (stands in for DSENT + RTL synthesis).

Router area is composed from flip-flop input buffers, a crossbar that
grows with the product of input and output ports, and per-port
allocation logic; NI injection buffers are costed per packet slot.  The
constants approximate a 28 nm standard-cell flow (a 5-port, 2-VC,
128-bit router lands near 0.09 mm^2).

Figure 11's shape emerges structurally: separate networks double the
router count; Interposer-CMesh adds 16 double-width, high-port-count
routers; DA2Mesh's narrow subnets are cheap per router; MultiPort and
EquiNox pay for extra CB-side ports and NI buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..noc.network import Network
from ..schemes.base import Fabric


@dataclass(frozen=True)
class AreaParams:
    """Component area constants (mm^2) at 28 nm."""

    buffer_mm2_per_byte: float = 1.2e-4   # flip-flop based FIFOs
    xbar_mm2_per_port2_byte: float = 1.1e-5
    alloc_mm2_per_port: float = 9.0e-4
    ni_core_mm2: float = 2.0e-3           # serialisation / core logic per NI


DEFAULT_PARAMS = AreaParams()


@dataclass
class AreaBreakdown:
    """Area of one network (mm^2), split by component."""

    name: str
    buffers_mm2: float
    xbar_mm2: float
    alloc_mm2: float
    ni_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.buffers_mm2 + self.xbar_mm2 + self.alloc_mm2 + self.ni_mm2


@dataclass
class AreaReport:
    networks: List[AreaBreakdown]

    @property
    def total_mm2(self) -> float:
        return sum(n.total_mm2 for n in self.networks)


def router_area_mm2(
    in_ports: int,
    out_ports: int,
    num_vcs: int,
    vc_capacity: int,
    flit_bytes: int,
    params: AreaParams = DEFAULT_PARAMS,
) -> float:
    """Area of one router from its structural parameters."""
    buffer_bytes = in_ports * num_vcs * vc_capacity * flit_bytes
    buffers = buffer_bytes * params.buffer_mm2_per_byte
    xbar = in_ports * out_ports * flit_bytes * params.xbar_mm2_per_port2_byte
    alloc = (in_ports + out_ports) * params.alloc_mm2_per_port
    return buffers + xbar + alloc


def network_area(
    net: Network, params: AreaParams = DEFAULT_PARAMS
) -> AreaBreakdown:
    """Structural area of one network, routers plus its NIs."""
    buffers = xbar = alloc = 0.0
    for router in net.routers:
        in_ports = len(router.inputs)
        out_ports = len(router.outputs)
        buffer_bytes = in_ports * net.num_vcs * net.vc_capacity * net.flit_bytes
        buffers += buffer_bytes * params.buffer_mm2_per_byte
        xbar += (
            in_ports * out_ports * net.flit_bytes * params.xbar_mm2_per_port2_byte
        )
        alloc += (in_ports + out_ports) * params.alloc_mm2_per_port
    ni = 0.0
    for interface in net.nis:
        ni += params.ni_core_mm2
        for buf in interface.buffers:
            ni += (
                net.vc_capacity * net.flit_bytes * params.buffer_mm2_per_byte
            )
    return AreaBreakdown(
        name=net.name, buffers_mm2=buffers, xbar_mm2=xbar,
        alloc_mm2=alloc, ni_mm2=ni,
    )


def fabric_area(
    fabric: Fabric, params: AreaParams = DEFAULT_PARAMS
) -> AreaReport:
    """Total NoC area of a scheme instance (Figure 11)."""
    return AreaReport(
        networks=[
            network_area(net, params) for net, _r, _role in fabric.networks
        ]
    )
