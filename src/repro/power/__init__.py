"""Energy and area models (the DSENT-equivalent substrate)."""

from .area import (
    AreaBreakdown,
    AreaParams,
    AreaReport,
    fabric_area,
    network_area,
    router_area_mm2,
)
from .energy import (
    EnergyBreakdown,
    EnergyParams,
    EnergyReport,
    fabric_energy,
    network_energy,
)

__all__ = [
    "AreaBreakdown",
    "AreaParams",
    "AreaReport",
    "fabric_area",
    "network_area",
    "router_area_mm2",
    "EnergyBreakdown",
    "EnergyParams",
    "EnergyReport",
    "fabric_energy",
    "network_energy",
]
