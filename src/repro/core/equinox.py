"""The end-to-end EquiNox design flow (paper section 4).

``design_equinox`` chains the three stages:

1. contention-aware CB placement (scored N-Queen),
2. EIR selection by MCTS,
3. physical validation (RDL plan: crossings, layers, wire lengths),

and returns everything the architecture layer needs to instantiate an
EquiNox system: the placement, the EIR groups and the interposer plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..physical import interposer
from . import evaluation, placement as placement_mod
from .eir import EirDesign
from .grid import Grid
from .mcts import EirSearch, SearchConfig, SearchResult


@dataclass(frozen=True)
class EquiNoxDesign:
    """A complete EquiNox configuration for one network size."""

    grid: Grid
    placement: placement_mod.PlacementResult
    eir_design: EirDesign
    rdl_plan: interposer.RdlPlan
    evaluation: evaluation.EvalResult
    search: Optional[SearchResult] = None

    @property
    def num_eirs(self) -> int:
        return len(self.eir_design.links())

    def summary(self) -> str:
        """Human-readable one-screen description of the design."""
        lines = [
            f"EquiNox design on {self.grid.width}x{self.grid.height}",
            f"  CB placement ({self.placement.name}, penalty "
            f"{self.placement.penalty}): {sorted(self.placement.nodes)}",
            f"  EIRs: {self.num_eirs} across {len(self.eir_design.groups)} groups",
            f"  RDL crossings: {self.rdl_plan.num_crossings} "
            f"-> {self.rdl_plan.num_layers} layer(s)",
            f"  total interposer wire: {self.rdl_plan.total_length_mm:.1f} mm"
            f" (repeaters needed: {self.rdl_plan.needs_repeaters()})",
            f"  evaluation score: {self.evaluation.score:.4f}",
        ]
        if self.search is not None and self.search.eval_cache_lookups:
            lines.append(
                f"  MCTS eval cache: {self.search.eval_cache_hits}/"
                f"{self.search.eval_cache_lookups} hits "
                f"({self.search.eval_cache_hit_rate:.1%}), "
                f"{self.search.designs_evaluated} unique designs scored"
            )
        for group in self.eir_design.groups:
            x, y = self.grid.coord(group.cb)
            eirs = [self.grid.coord(n) for n in group.nodes]
            lines.append(f"    CB ({x},{y}) -> EIRs {eirs}")
        return "\n".join(lines)


def design_equinox(
    width: int,
    num_cbs: int = 8,
    search_config: Optional[SearchConfig] = None,
    placement_nodes: Optional[Sequence[int]] = None,
) -> EquiNoxDesign:
    """Run the full EquiNox design flow for a ``width x width`` mesh.

    Parameters
    ----------
    width:
        Mesh dimension (the paper uses 8, 12 and 16).
    num_cbs:
        Number of cache banks / memory controllers (8 in the paper).
    search_config:
        MCTS budget and constraints; defaults are adequate for 8x8.
    placement_nodes:
        Override the CB placement (used by ablations); when given, the
        N-Queen stage is skipped and the nodes are scored as-is.
    """
    grid = Grid(width)
    if placement_nodes is not None:
        from .hotzone import placement_penalty

        cb_placement = placement_mod.PlacementResult(
            name="custom",
            nodes=tuple(placement_nodes),
            penalty=placement_penalty(grid, tuple(placement_nodes)),
        )
    else:
        cb_placement = placement_mod.nqueen_best(grid, num_cbs)
    search = EirSearch(grid, cb_placement.nodes, search_config)
    result = search.run()
    plan = interposer.plan_for_design(result.design)
    return EquiNoxDesign(
        grid=grid,
        placement=cb_placement,
        eir_design=result.design,
        rdl_plan=plan,
        evaluation=result.evaluation,
        search=result,
    )


def design_from_groups(
    grid: Grid,
    placement_result: placement_mod.PlacementResult,
    eir_design: EirDesign,
) -> EquiNoxDesign:
    """Wrap a hand-built EIR design (used by tests and ablations)."""
    plan = interposer.plan_for_design(eir_design)
    return EquiNoxDesign(
        grid=grid,
        placement=placement_result,
        eir_design=eir_design,
        rdl_plan=plan,
        evaluation=evaluation.evaluate(eir_design),
        search=None,
    )
