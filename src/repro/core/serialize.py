"""JSON (de)serialisation of EquiNox designs.

An MCTS run for a 16x16 network is minutes of work; persisting the
resulting design lets the scalability benchmarks and downstream users
re-instantiate it instantly.  The format is plain JSON with explicit
versioning, holding everything needed to rebuild the
:class:`~repro.core.equinox.EquiNoxDesign` (the search trace is not
kept — only the committed design and its scores).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..physical import interposer
from . import evaluation
from .eir import EirDesign, make_group
from .equinox import EquiNoxDesign
from .grid import Grid
from .placement import PlacementResult

FORMAT_VERSION = 1


def design_to_dict(design: EquiNoxDesign) -> Dict:
    """Reduce a design to a JSON-serialisable dictionary."""
    return {
        "version": FORMAT_VERSION,
        "grid": {"width": design.grid.width, "height": design.grid.height},
        "placement": {
            "name": design.placement.name,
            "nodes": list(design.placement.nodes),
            "penalty": design.placement.penalty,
        },
        "groups": [
            {
                "cb": group.cb,
                "eirs": [
                    {"direction": list(direction), "node": node}
                    for direction, node in group.eirs
                ],
            }
            for group in design.eir_design.groups
        ],
        "evaluation": {
            "raw": design.evaluation.raw,
            "normalized": design.evaluation.normalized,
            "score": design.evaluation.score,
        },
    }


def design_from_dict(data: Dict, strict: bool = True) -> EquiNoxDesign:
    """Rebuild a design from :func:`design_to_dict` output.

    The RDL plan and evaluation are recomputed from the stored
    structure (they are deterministic functions of it); with ``strict``
    the stored evaluation score is cross-checked, which will reject
    files written under non-default evaluation weights.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported design format version {version!r}")
    grid = Grid(data["grid"]["width"], data["grid"]["height"])
    placement = PlacementResult(
        name=data["placement"]["name"],
        nodes=tuple(data["placement"]["nodes"]),
        penalty=data["placement"]["penalty"],
    )
    groups = tuple(
        make_group(
            entry["cb"],
            {
                tuple(e["direction"]): e["node"]
                for e in entry["eirs"]
            },
        )
        for entry in data["groups"]
    )
    eir_design = EirDesign(grid=grid, placement=placement.nodes,
                           groups=groups)
    result = evaluation.evaluate(eir_design)
    stored = data.get("evaluation", {}).get("score")
    if strict and stored is not None and abs(stored - result.score) > 1e-6:
        raise ValueError(
            f"stored evaluation score {stored} does not match recomputed "
            f"{result.score}; file corrupt or evaluation changed"
        )
    return EquiNoxDesign(
        grid=grid,
        placement=placement,
        eir_design=eir_design,
        rdl_plan=interposer.plan_for_design(eir_design),
        evaluation=result,
        search=None,
    )


def save_design(design: EquiNoxDesign, path: Union[str, Path]) -> Path:
    """Write a design to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(design_to_dict(design), indent=2) + "\n")
    return path


def load_design(path: Union[str, Path], strict: bool = True) -> EquiNoxDesign:
    """Read a design previously written by :func:`save_design`."""
    return design_from_dict(json.loads(Path(path).read_text()), strict=strict)
