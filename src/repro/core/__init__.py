"""EquiNox core: placement, hot zones, EIR selection and the design flow."""

from .equinox import EquiNoxDesign, design_equinox, design_from_groups
from .eir import EirDesign, EirGroup, make_group, no_eir_design
from .grid import Grid
from .placement import PlacementResult, by_name as placement_by_name

__all__ = [
    "EquiNoxDesign",
    "design_equinox",
    "design_from_groups",
    "EirDesign",
    "EirGroup",
    "make_group",
    "no_eir_design",
    "Grid",
    "PlacementResult",
    "placement_by_name",
]
