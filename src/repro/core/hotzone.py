"""Hot zones and the placement penalty scoring policy (paper section 4.2).

The *hot zone* of a cache-bank (CB) node is the eight tiles surrounding
it.  The four directly-connected tiles are *Direct Access Zones* (DAZs):
every packet injected at the CB's local router passes through a DAZ on
its first hop.  The four corner tiles are *Corner Access Zones* (CAZs):
likely second-hop tiles.

A tile that belongs to the hot zones of two different CBs is a *hot-zone
overlap* and marks a spot where injection traffic from two CBs
compounds.  The paper scores a placement by, for every tile, counting
how many of its four direct neighbours are overlaps (``m``) and charging
a penalty of ``1 + 2 + ... + m`` to reflect compounded delay; the
placement score is the sum over all tiles (lower is better).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from .grid import Grid


def daz(grid: Grid, cb: int) -> FrozenSet[int]:
    """Direct Access Zone: the mesh neighbours of a CB node."""
    return frozenset(grid.neighbors(cb))


def caz(grid: Grid, cb: int) -> FrozenSet[int]:
    """Corner Access Zone: the diagonal neighbours of a CB node."""
    return frozenset(grid.diagonal_neighbors(cb))


def hot_zone(grid: Grid, cb: int) -> FrozenSet[int]:
    """The full 8-tile hot zone of a CB node."""
    return daz(grid, cb) | caz(grid, cb)


def zone_membership(
    grid: Grid, placement: Sequence[int]
) -> Dict[int, List[Tuple[int, str]]]:
    """Map each tile to the ``(cb, kind)`` hot zones it belongs to.

    ``kind`` is ``"daz"`` or ``"caz"``.  A tile that is itself a CB node
    can still appear if it sits inside another CB's hot zone.
    """
    membership: Dict[int, List[Tuple[int, str]]] = {}
    for cb in placement:
        for tile in daz(grid, cb):
            membership.setdefault(tile, []).append((cb, "daz"))
        for tile in caz(grid, cb):
            membership.setdefault(tile, []).append((cb, "caz"))
    return membership


def overlap_tiles(grid: Grid, placement: Sequence[int]) -> Set[int]:
    """Tiles that belong to the hot zones of at least two distinct CBs."""
    overlaps: Set[int] = set()
    for tile, entries in zone_membership(grid, placement).items():
        owners = {cb for cb, _ in entries}
        if len(owners) >= 2:
            overlaps.add(tile)
    return overlaps


def overlap_kinds(grid: Grid, placement: Sequence[int]) -> Dict[int, Set[str]]:
    """For each overlap tile, the set of overlap kinds it participates in.

    A kind is a sorted pair such as ``"daz-caz"`` or ``"daz-daz"``.  The
    paper notes that N-Queen placements can only produce ``daz-caz``
    overlaps, while knight-move placements (more CBs than N) may also
    produce ``daz-daz`` and ``caz-caz``.
    """
    kinds: Dict[int, Set[str]] = {}
    for tile, entries in zone_membership(grid, placement).items():
        owners: Dict[int, Set[str]] = {}
        for cb, kind in entries:
            owners.setdefault(cb, set()).add(kind)
        if len(owners) < 2:
            continue
        tile_kinds: Set[str] = set()
        cbs = sorted(owners)
        for i, a in enumerate(cbs):
            for b in cbs[i + 1:]:
                for ka in owners[a]:
                    for kb in owners[b]:
                        tile_kinds.add("-".join(sorted((ka, kb))))
        kinds[tile] = tile_kinds
    return kinds


def node_penalty(m: int) -> int:
    """Penalty of a node with ``m`` hot-zone-overlap direct neighbours.

    The paper charges ``sum(1..m) = m (m + 1) / 2`` rather than ``m`` to
    reflect the compounding of delay when multiple overlaps surround one
    tile.
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    return m * (m + 1) // 2


def placement_penalty(grid: Grid, placement: Sequence[int]) -> int:
    """Total penalty score of a CB placement (lower is better)."""
    overlaps = overlap_tiles(grid, placement)
    total = 0
    for node in grid.nodes():
        m = sum(1 for nb in grid.neighbors(node) if nb in overlaps)
        total += node_penalty(m)
    return total


def penalty_map(grid: Grid, placement: Sequence[int]) -> Dict[int, int]:
    """Per-node penalty contributions (useful for visual inspection)."""
    overlaps = overlap_tiles(grid, placement)
    out: Dict[int, int] = {}
    for node in grid.nodes():
        m = sum(1 for nb in grid.neighbors(node) if nb in overlaps)
        if m:
            out[node] = node_penalty(m)
    return out


def rank_placements(
    grid: Grid, placements: Iterable[Sequence[int]]
) -> List[Tuple[int, Tuple[int, ...]]]:
    """Score placements and return ``(penalty, placement)`` sorted ascending.

    Ties are broken by the placement tuple itself so the ranking is
    deterministic across runs.
    """
    scored = [
        (placement_penalty(grid, tuple(p)), tuple(p)) for p in placements
    ]
    scored.sort()
    return scored
