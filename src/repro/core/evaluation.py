"""The four-metric evaluation function guiding MCTS (paper section 4.3).

For a complete EIR design the function combines, after normalisation:

1. **Max EIR traffic load** — assuming each PE receives a similar share
   of reply traffic, distribute each CB's traffic over its injection
   points per the buffer-selection policy and take the maximum load of
   any injection point.  Minimising this balances the EIRs and avoids
   hotspots.
2. **Average hop count** — latency proxy: one cycle to enter the chosen
   injection router (local or via one-cycle interposer hop) plus mesh
   hops from there to the destination.
3. **Number of intersection points** in the RDL wire plan (layer cost).
4. **Total interposer link length** (repeater/active-interposer risk).

All metrics are cheap to compute, which is what lets MCTS call this in
every backpropagation step instead of running full-system simulation.
Lower scores are better; :func:`reward` maps scores to ``(0, 1]`` for
UCB backpropagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..physical import interposer
from .eir import EirDesign, shortest_path_eirs
from .grid import Grid

DEFAULT_WEIGHTS: Mapping[str, float] = {
    "max_load": 1.0,
    "avg_hops": 1.0,
    "crossings": 2.0,
    "link_length": 1.0,
}


@dataclass(frozen=True)
class EvalResult:
    """Raw and normalised metrics plus the combined score (lower=better)."""

    raw: Dict[str, float]
    normalized: Dict[str, float]
    score: float


def injection_loads(design: EirDesign) -> Dict[int, float]:
    """Traffic load per injection point, in PE-destination shares.

    Every PE destination contributes one unit of traffic per CB; the
    unit is split evenly over the shortest-path injection points the
    buffer selector would rotate through (the round-robin of Buffer
    Selection 1), or assigned to the local router when no EIR is on a
    shortest path.
    """
    grid = design.grid
    cb_set = set(design.placement)
    pes = [n for n in grid.nodes() if n not in cb_set]
    loads: Dict[int, float] = {}
    for cb in design.placement:
        for inj in design.injection_points(cb):
            loads.setdefault(inj, 0.0)
        for dst in pes:
            choices = shortest_path_eirs(grid, design, cb, dst)
            if not choices:
                choices = [cb]
            share = 1.0 / len(choices)
            for inj in choices:
                loads[inj] += share
    return loads


def average_hops(design: EirDesign) -> float:
    """Mean effective hop count over all (CB, PE) pairs.

    Entering an injection router costs one hop (the local link or the
    single-cycle interposer link), then mesh hops to the destination.
    Interposer links thus shortcut the first ``distance(cb, eir)`` mesh
    hops into one.
    """
    grid = design.grid
    cb_set = set(design.placement)
    pes = [n for n in grid.nodes() if n not in cb_set]
    total = 0.0
    pairs = 0
    for cb in design.placement:
        for dst in pes:
            choices = shortest_path_eirs(grid, design, cb, dst)
            if choices:
                hops = sum(1 + grid.hops(e, dst) for e in choices) / len(choices)
            else:
                hops = 1 + grid.hops(cb, dst) - 1  # local injection
            total += hops
            pairs += 1
    return total / pairs if pairs else 0.0


def _baseline_avg_hops(grid: Grid, placement: Sequence[int]) -> float:
    """Average hops with no EIRs at all (normalisation reference)."""
    cb_set = set(placement)
    pes = [n for n in grid.nodes() if n not in cb_set]
    total = sum(grid.hops(cb, dst) for cb in placement for dst in pes)
    return total / (len(placement) * len(pes))


def evaluate(
    design: EirDesign,
    weights: Optional[Mapping[str, float]] = None,
) -> EvalResult:
    """Evaluate a complete EIR design; lower scores are better."""
    weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
    grid = design.grid
    plan = interposer.plan_for_design(design)

    loads = injection_loads(design)
    max_load = max(loads.values()) if loads else 0.0
    avg_hops = average_hops(design)
    crossings = float(plan.num_crossings)
    link_length = float(design.total_link_length())

    num_pes = grid.size - len(design.placement)
    num_links = len(design.links())
    max_links = 4 * len(design.placement)

    raw = {
        "max_load": max_load,
        "avg_hops": avg_hops,
        "crossings": crossings,
        "link_length": link_length,
    }
    normalized = {
        # A design with no EIRs funnels all num_pes shares through one
        # router, so num_pes is the worst case.
        "max_load": max_load / num_pes if num_pes else 0.0,
        "avg_hops": avg_hops / _baseline_avg_hops(grid, design.placement),
        # Each crossing forces another RDL layer somewhere; normalising
        # per link keeps a handful of crossings clearly visible to the
        # search (a combinatorial worst case would drown them out).
        "crossings": crossings / num_links if num_links else 0.0,
        # Worst case: the maximum number of links, all at max distance.
        "link_length": (
            link_length / (max_links * 3) if max_links else 0.0
        ),
    }
    score = sum(weights[name] * normalized[name] for name in normalized)
    return EvalResult(raw=raw, normalized=normalized, score=score)


def reward(result: EvalResult) -> float:
    """Map an evaluation score to a UCB reward in ``(0, 1]``."""
    return 1.0 / (1.0 + result.score)
