"""The four-metric evaluation function guiding MCTS (paper section 4.3).

For a complete EIR design the function combines, after normalisation:

1. **Max EIR traffic load** — assuming each PE receives a similar share
   of reply traffic, distribute each CB's traffic over its injection
   points per the buffer-selection policy and take the maximum load of
   any injection point.  Minimising this balances the EIRs and avoids
   hotspots.
2. **Average hop count** — latency proxy: one cycle to enter the chosen
   injection router (local or via one-cycle interposer hop) plus mesh
   hops from there to the destination.
3. **Number of intersection points** in the RDL wire plan (layer cost).
4. **Total interposer link length** (repeater/active-interposer risk).

All metrics are cheap to compute, which is what lets MCTS call this in
every backpropagation step instead of running full-system simulation.
Lower scores are better; :func:`reward` maps scores to ``(0, 1]`` for
UCB backpropagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..physical import interposer
from .eir import EirDesign, EirGroup, shortest_path_eirs
from .grid import Grid

DEFAULT_WEIGHTS: Mapping[str, float] = {
    "max_load": 1.0,
    "avg_hops": 1.0,
    "crossings": 2.0,
    "link_length": 1.0,
}


@dataclass(frozen=True)
class EvalResult:
    """Raw and normalised metrics plus the combined score (lower=better)."""

    raw: Dict[str, float]
    normalized: Dict[str, float]
    score: float


def injection_loads(design: EirDesign) -> Dict[int, float]:
    """Traffic load per injection point, in PE-destination shares.

    Every PE destination contributes one unit of traffic per CB; the
    unit is split evenly over the shortest-path injection points the
    buffer selector would rotate through (the round-robin of Buffer
    Selection 1), or assigned to the local router when no EIR is on a
    shortest path.
    """
    grid = design.grid
    cb_set = set(design.placement)
    pes = [n for n in grid.nodes() if n not in cb_set]
    loads: Dict[int, float] = {}
    for cb in design.placement:
        for inj in design.injection_points(cb):
            loads.setdefault(inj, 0.0)
        for dst in pes:
            choices = shortest_path_eirs(grid, design, cb, dst)
            if not choices:
                choices = [cb]
            share = 1.0 / len(choices)
            for inj in choices:
                loads[inj] += share
    return loads


def average_hops(design: EirDesign) -> float:
    """Mean effective hop count over all (CB, PE) pairs.

    Entering an injection router costs one hop (the local link or the
    single-cycle interposer link), then mesh hops to the destination.
    Interposer links thus shortcut the first ``distance(cb, eir)`` mesh
    hops into one.
    """
    grid = design.grid
    cb_set = set(design.placement)
    pes = [n for n in grid.nodes() if n not in cb_set]
    total = 0.0
    pairs = 0
    for cb in design.placement:
        for dst in pes:
            choices = shortest_path_eirs(grid, design, cb, dst)
            if choices:
                hops = sum(1 + grid.hops(e, dst) for e in choices) / len(choices)
            else:
                hops = 1 + grid.hops(cb, dst) - 1  # local injection
            total += hops
            pairs += 1
    return total / pairs if pairs else 0.0


def _baseline_avg_hops(grid: Grid, placement: Sequence[int]) -> float:
    """Average hops with no EIRs at all (normalisation reference)."""
    cb_set = set(placement)
    pes = [n for n in grid.nodes() if n not in cb_set]
    total = sum(grid.hops(cb, dst) for cb in placement for dst in pes)
    return total / (len(placement) * len(pes))


def _finalize(
    grid: Grid,
    placement: Sequence[int],
    num_links: int,
    raw: Dict[str, float],
    baseline_hops: float,
    weights: Optional[Mapping[str, float]],
) -> EvalResult:
    """Normalise raw metrics and combine them into the scalar score."""
    weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
    num_pes = grid.size - len(placement)
    max_links = 4 * len(placement)
    normalized = {
        # A design with no EIRs funnels all num_pes shares through one
        # router, so num_pes is the worst case.
        "max_load": raw["max_load"] / num_pes if num_pes else 0.0,
        "avg_hops": raw["avg_hops"] / baseline_hops,
        # Each crossing forces another RDL layer somewhere; normalising
        # per link keeps a handful of crossings clearly visible to the
        # search (a combinatorial worst case would drown them out).
        "crossings": raw["crossings"] / num_links if num_links else 0.0,
        # Worst case: the maximum number of links, all at max distance.
        "link_length": (
            raw["link_length"] / (max_links * 3) if max_links else 0.0
        ),
    }
    score = sum(weights[name] * normalized[name] for name in normalized)
    return EvalResult(raw=raw, normalized=normalized, score=score)


def evaluate(
    design: EirDesign,
    weights: Optional[Mapping[str, float]] = None,
) -> EvalResult:
    """Evaluate a complete EIR design; lower scores are better."""
    grid = design.grid
    plan = interposer.plan_for_design(design)

    loads = injection_loads(design)
    raw = {
        "max_load": max(loads.values()) if loads else 0.0,
        "avg_hops": average_hops(design),
        "crossings": float(plan.num_crossings),
        "link_length": float(design.total_link_length()),
    }
    return _finalize(
        grid, design.placement, len(design.links()), raw,
        _baseline_avg_hops(grid, design.placement), weights,
    )


class _Fragment:
    """One CB's exact traffic contribution under one EIR group.

    ``points`` are the injection points to pre-register, ``adds`` the
    ordered ``(injection_point, share)`` additions the CB performs in
    :func:`injection_loads`, and ``hops`` its per-destination effective
    hop values from :func:`average_hops`, all in PE-destination order.
    Storing the addition *sequence* rather than pre-summed totals keeps
    the replayed floating-point arithmetic identical to the direct
    functions, operation for operation.
    """

    __slots__ = ("points", "adds", "hops")

    def __init__(
        self,
        points: Tuple[int, ...],
        adds: List[Tuple[int, float]],
        hops: List[float],
    ) -> None:
        self.points = points
        self.adds = adds
        self.hops = hops


class IncrementalEvaluator:
    """Memoizing evaluator that reuses per-CB traffic fragments.

    A CB's contribution to :func:`injection_loads` and
    :func:`average_hops` depends only on its *own* EIR group
    (:func:`~repro.core.eir.shortest_path_eirs` never consults other
    groups), so successive MCTS rollouts — which typically differ from
    an already-seen design in a single CB's group — recompute one
    fragment instead of the whole O(CBs x PEs) traffic model.
    Fragments are keyed by the canonical ``(cb, group.eirs)`` tuple and
    replayed in placement order, preserving the exact float-addition
    sequence, so results are bit-identical to :func:`evaluate` and the
    search commits the same design either way.  Crossing count and link
    length remain per-design (crossings are a pairwise property of the
    complete link set) but are cheap by comparison.
    """

    def __init__(
        self,
        grid: Grid,
        placement: Sequence[int],
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.grid = grid
        self.placement = tuple(placement)
        self.weights = weights
        cb_set = set(self.placement)
        self._pes = [n for n in grid.nodes() if n not in cb_set]
        self._baseline_hops = _baseline_avg_hops(grid, self.placement)
        self._fragments: Dict[Tuple[int, tuple], _Fragment] = {}

    def _fragment(self, group: EirGroup) -> _Fragment:
        key = (group.cb, group.eirs)
        frag = self._fragments.get(key)
        if frag is None:
            frag = self._compute_fragment(group)
            self._fragments[key] = frag
        return frag

    def _compute_fragment(self, group: EirGroup) -> _Fragment:
        grid = self.grid
        cb = group.cb
        nodes = group.nodes
        adds: List[Tuple[int, float]] = []
        hops_list: List[float] = []
        for dst in self._pes:
            base = grid.hops(cb, dst)
            choices = [
                node for node in nodes
                if grid.hops(cb, node) + grid.hops(node, dst) == base
            ]
            if choices:
                hops = sum(1 + grid.hops(e, dst) for e in choices) / len(
                    choices
                )
            else:
                hops = 1 + base - 1  # local injection
            hops_list.append(hops)
            loaded = choices if choices else [cb]
            share = 1.0 / len(loaded)
            for inj in loaded:
                adds.append((inj, share))
        return _Fragment((cb,) + nodes, adds, hops_list)

    def evaluate(self, groups: Sequence[EirGroup]) -> EvalResult:
        """Evaluate a complete design given as one group per CB."""
        by_cb = {g.cb: g for g in groups}
        loads: Dict[int, float] = {}
        total = 0.0
        pairs = 0
        for cb in self.placement:
            frag = self._fragment(by_cb[cb])
            for inj in frag.points:
                loads.setdefault(inj, 0.0)
            for inj, share in frag.adds:
                loads[inj] += share
            for hops in frag.hops:
                total += hops
            pairs += len(frag.hops)
        design = EirDesign(
            grid=self.grid, placement=self.placement, groups=tuple(groups)
        )
        plan = interposer.plan_for_design(design)
        raw = {
            "max_load": max(loads.values()) if loads else 0.0,
            "avg_hops": total / pairs if pairs else 0.0,
            "crossings": float(plan.num_crossings),
            "link_length": float(design.total_link_length()),
        }
        return _finalize(
            self.grid, self.placement, len(design.links()), raw,
            self._baseline_hops, self.weights,
        )


def reward(result: EvalResult) -> float:
    """Map an evaluation score to a UCB reward in ``(0, 1]``."""
    return 1.0 / (1.0 + result.score)
