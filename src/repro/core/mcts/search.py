"""Monte Carlo Tree Search over EIR selections (paper section 4.3).

The search commits EIRs *group by group*: each tree level decides the
complete EIR group of one cache bank, so the tree depth equals the
number of CBs (the paper's optimisation over one-EIR-at-a-time, which
made the tree 24+ levels deep).

Per committed level the search runs a budget of iterations, each with
the classic four steps:

1. *Selection* — walk from the root by UCB1 until a not-fully-expanded
   node (or a terminal node) is reached.
2. *Expansion* — attach one untried child group.
3. *Simulation* — complete the remaining CBs' groups with a random
   rollout policy.
4. *Backpropagation* — evaluate the completed design with the
   four-metric function and accumulate the reward up the path.

After the budget, the level-``k`` child with the highest accumulated
value is committed and becomes part of the new root state, exactly as
described in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import evaluation
from ..eir import (
    MAX_EIR_DISTANCE,
    MIN_EIR_DISTANCE,
    EirDesign,
    EirGroup,
    enumerate_groups,
    make_group,
)
from ..grid import Grid
from .node import DEFAULT_UCB_C, Node


@dataclass
class SearchConfig:
    """Tuning knobs of the EIR search."""

    iterations_per_level: int = 200
    ucb_c: float = DEFAULT_UCB_C
    min_distance: int = MIN_EIR_DISTANCE
    max_distance: int = MAX_EIR_DISTANCE
    require_full_groups: bool = True
    seed: int = 0
    weights: Optional[Dict[str, float]] = None


@dataclass
class SearchResult:
    """Outcome of a full MCTS run."""

    design: EirDesign
    evaluation: evaluation.EvalResult
    designs_evaluated: int
    nodes_expanded: int
    best_score_trace: Tuple[float, ...]
    # Evaluation-memoization telemetry: rollouts that reached an
    # already-scored design are cache hits and cost no re-evaluation.
    eval_cache_lookups: int = 0
    eval_cache_hits: int = 0

    @property
    def eval_cache_hit_rate(self) -> float:
        """Fraction of state evaluations served from the memo cache."""
        if not self.eval_cache_lookups:
            return 0.0
        return self.eval_cache_hits / self.eval_cache_lookups


class EirSearch:
    """MCTS-based EIR selector for a fixed grid and CB placement."""

    def __init__(
        self,
        grid: Grid,
        placement: Sequence[int],
        config: Optional[SearchConfig] = None,
    ) -> None:
        self.grid = grid
        self.placement = tuple(placement)
        self.config = config or SearchConfig()
        self._rng = random.Random(self.config.seed)
        self._eval_cache: Dict[Tuple[EirGroup, ...], evaluation.EvalResult] = {}
        self._evaluator = evaluation.IncrementalEvaluator(
            grid, self.placement, self.config.weights
        )
        self.designs_evaluated = 0
        self.nodes_expanded = 0
        self.eval_cache_lookups = 0
        self.eval_cache_hits = 0

    # ------------------------------------------------------------------
    # Action model
    # ------------------------------------------------------------------
    def _taken(self, state: Sequence[EirGroup]) -> frozenset:
        return frozenset(n for g in state for n in g.nodes)

    def actions(self, state: Sequence[EirGroup]) -> List[EirGroup]:
        """Legal EIR groups for the next undecided CB."""
        depth = len(state)
        if depth >= len(self.placement):
            return []
        cb = self.placement[depth]
        groups = enumerate_groups(
            self.grid,
            self.placement,
            cb,
            taken=self._taken(state),
            min_distance=self.config.min_distance,
            max_distance=self.config.max_distance,
            require_full=self.config.require_full_groups,
        )
        if not groups:
            groups = [make_group(cb, {})]
        return groups

    def is_terminal(self, state: Sequence[EirGroup]) -> bool:
        return len(state) == len(self.placement)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _design(self, state: Sequence[EirGroup]) -> EirDesign:
        return EirDesign(
            grid=self.grid, placement=self.placement, groups=tuple(state)
        )

    def evaluate_state(self, state: Sequence[EirGroup]) -> evaluation.EvalResult:
        """Score a complete design, memoized on the canonical group tuple.

        Misses are scored through the :class:`~repro.core.evaluation.
        IncrementalEvaluator`, which reuses per-CB traffic fragments
        across designs; both layers are bit-identical to a direct
        :func:`~repro.core.evaluation.evaluate` call.
        """
        key = tuple(state)
        self.eval_cache_lookups += 1
        cached = self._eval_cache.get(key)
        if cached is None:
            cached = self._evaluator.evaluate(key)
            self._eval_cache[key] = cached
            self.designs_evaluated += 1
        else:
            self.eval_cache_hits += 1
        return cached

    # ------------------------------------------------------------------
    # Rollout
    # ------------------------------------------------------------------
    def rollout(self, state: Sequence[EirGroup]) -> Tuple[EirGroup, ...]:
        """Randomly complete ``state`` into a full design."""
        groups = list(state)
        while not self.is_terminal(groups):
            options = self.actions(groups)
            groups.append(self._rng.choice(options))
        return tuple(groups)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Run the level-by-level MCTS and return the committed design."""
        committed: List[EirGroup] = []
        trace: List[float] = []
        while not self.is_terminal(committed):
            best_child = self._search_level(committed)
            committed.append(best_child.action)  # type: ignore[arg-type]
            # Track how the best complete rollout from the committed
            # prefix scores, for convergence inspection.
            full = self.rollout(committed)
            trace.append(self.evaluate_state(full).score)
        result = self.evaluate_state(committed)
        return SearchResult(
            design=self._design(committed),
            evaluation=result,
            designs_evaluated=self.designs_evaluated,
            nodes_expanded=self.nodes_expanded,
            best_score_trace=tuple(trace),
            eval_cache_lookups=self.eval_cache_lookups,
            eval_cache_hits=self.eval_cache_hits,
        )

    def _search_level(self, committed: Sequence[EirGroup]) -> Node:
        """One MCTS budget deciding the next CB's group."""
        root = Node(action=None)
        root.untried = list(self.actions(committed))
        self._rng.shuffle(root.untried)
        for _ in range(self.config.iterations_per_level):
            self._iterate(root, committed)
        if not root.children:
            # Degenerate level (single forced action).
            child = root.add_child(self.actions(committed)[0])
            child.visits = 1
            return child
        return root.best_child_value()

    def _iterate(self, root: Node, committed: Sequence[EirGroup]) -> None:
        node = root
        state = list(committed)
        # 1. Selection.
        while node.is_fully_expanded() and node.children:
            node = node.best_child_ucb(self.config.ucb_c)
            state.append(node.action)  # type: ignore[arg-type]
        # 2. Expansion.
        if node.untried and not self.is_terminal(state):
            action = node.untried.pop()
            node = node.add_child(action)
            node.untried = list(self.actions(state + [action]))
            self._rng.shuffle(node.untried)
            state.append(action)
            self.nodes_expanded += 1
        # 3. Simulation.
        full = self.rollout(state)
        # 4. Backpropagation.
        value = evaluation.reward(self.evaluate_state(full))
        node.backpropagate(value)


def random_search(
    grid: Grid,
    placement: Sequence[int],
    samples: int,
    config: Optional[SearchConfig] = None,
) -> SearchResult:
    """Pure random sampling baseline with the same action model.

    Used by the search-efficiency ablation: MCTS should reach a better
    design than random search at an equal evaluation budget.
    """
    search = EirSearch(grid, placement, config)
    best_state: Optional[Tuple[EirGroup, ...]] = None
    best: Optional[evaluation.EvalResult] = None
    trace: List[float] = []
    for _ in range(samples):
        state = search.rollout(())
        result = search.evaluate_state(state)
        if best is None or result.score < best.score:
            best_state, best = state, result
        trace.append(best.score)
    assert best_state is not None and best is not None
    return SearchResult(
        design=search._design(best_state),
        evaluation=best,
        designs_evaluated=search.designs_evaluated,
        nodes_expanded=0,
        best_score_trace=tuple(trace),
        eval_cache_lookups=search.eval_cache_lookups,
        eval_cache_hits=search.eval_cache_hits,
    )
