"""Monte Carlo Tree Search for EIR selection."""

from .node import DEFAULT_UCB_C, Node
from .search import EirSearch, SearchConfig, SearchResult, random_search

__all__ = [
    "DEFAULT_UCB_C",
    "Node",
    "EirSearch",
    "SearchConfig",
    "SearchResult",
    "random_search",
]
