"""Search-tree node and UCB1 selection for the EIR MCTS."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..eir import EirGroup

DEFAULT_UCB_C = math.sqrt(2.0)


@dataclass
class Node:
    """One node of the MCTS tree.

    The node's *state* is the sequence of EIR groups committed so far
    (one per CB, in CB order); ``action`` is the group whose addition
    created this node (``None`` at the root).
    """

    action: Optional[EirGroup]
    parent: Optional["Node"] = None
    children: List["Node"] = field(default_factory=list)
    untried: List[EirGroup] = field(default_factory=list)
    visits: int = 0
    total_reward: float = 0.0

    @property
    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node, depth = node.parent, depth + 1
        return depth

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0

    def state(self) -> Tuple[EirGroup, ...]:
        """The groups committed along the path from the root to here."""
        groups: List[EirGroup] = []
        node: Optional[Node] = self
        while node is not None and node.action is not None:
            groups.append(node.action)
            node = node.parent
        return tuple(reversed(groups))

    # ------------------------------------------------------------------
    # UCB1
    # ------------------------------------------------------------------
    def ucb(self, child: "Node", c: float = DEFAULT_UCB_C) -> float:
        """Upper confidence bound of ``child`` as seen from this node.

        ``v_i + C * sqrt(ln N / n_i)`` per the paper's footnote 2, with
        unvisited children treated as infinitely attractive.
        """
        if child.visits == 0:
            return math.inf
        return child.mean_reward + c * math.sqrt(
            math.log(self.visits) / child.visits
        )

    def best_child_ucb(self, c: float = DEFAULT_UCB_C) -> "Node":
        """The child maximising UCB1 (exploration + exploitation)."""
        if not self.children:
            raise ValueError("node has no children")
        return max(self.children, key=lambda ch: self.ucb(ch, c))

    def best_child_value(self) -> "Node":
        """The child with the highest accumulated value (commit step)."""
        if not self.children:
            raise ValueError("node has no children")
        return max(
            self.children, key=lambda ch: (ch.mean_reward, ch.visits)
        )

    def add_child(self, action: EirGroup) -> "Node":
        child = Node(action=action, parent=self)
        self.children.append(child)
        return child

    def is_fully_expanded(self) -> bool:
        return not self.untried

    def backpropagate(self, value: float) -> None:
        """Accumulate ``value`` on the path from this node to the root."""
        node: Optional[Node] = self
        while node is not None:
            node.visits += 1
            node.total_reward += value
            node = node.parent

    def tree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return 1 + sum(child.tree_size() for child in self.children)
