"""Equivalent Injection Router (EIR) groups and their design space.

An EIR group is the set of routers a cache bank may inject through in
addition to its local router (paper section 3).  EquiNox constrains the
group per the paper's two simplifications (section 4.3):

* at most one EIR per axis direction from the CB (two EIRs in the same
  direction would contend with each other), and
* EIRs within a few hops of the CB (short interposer links, fewer
  crossings).

Candidates at distance 1 are excluded because they sit in the CB's own
Direct Access Zone — injecting there adds traffic exactly where the hot
zone already is.  Candidates inside *any* CB's hot zone, or on a CB
node, are excluded for the same reason (section 3.2.4).  EIRs are never
shared between CBs (section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from . import hotzone
from .grid import AXIS_DIRECTIONS, Coord, Grid

MIN_EIR_DISTANCE = 2
MAX_EIR_DISTANCE = 3


@dataclass(frozen=True)
class EirGroup:
    """The EIRs selected for one cache bank.

    ``eirs`` maps an axis direction to the node id of the EIR placed on
    that axis (directions without an EIR are absent).
    """

    cb: int
    eirs: Tuple[Tuple[Coord, int], ...]

    @property
    def nodes(self) -> Tuple[int, ...]:
        """EIR node ids (excluding the CB's local router)."""
        return tuple(node for _, node in self.eirs)

    @property
    def by_direction(self) -> Dict[Coord, int]:
        return dict(self.eirs)

    def __len__(self) -> int:
        return len(self.eirs)


def make_group(cb: int, eirs: Dict[Coord, int]) -> EirGroup:
    """Build an :class:`EirGroup` from a direction->node mapping."""
    return EirGroup(cb=cb, eirs=tuple(sorted(eirs.items())))


def candidate_positions(
    grid: Grid,
    placement: Sequence[int],
    cb: int,
    min_distance: int = MIN_EIR_DISTANCE,
    max_distance: int = MAX_EIR_DISTANCE,
) -> Dict[Coord, List[int]]:
    """Per-direction EIR candidates for ``cb`` under ``placement``.

    Returns a mapping from each axis direction to the list of node ids
    that may host an EIR in that direction, ordered by distance.
    """
    if cb not in placement:
        raise ValueError(f"node {cb} is not a CB in the given placement")
    # Forbid CB nodes themselves and every CB's Direct Access Zone: DAZ
    # tiles carry every first-hop flit of their CB and must not take on
    # extra injection load (section 3.2.4).  Corner tiles (CAZ) remain
    # eligible — with N-Queen placement a 2-hop on-axis candidate of one
    # CB is often another CB's CAZ, and the paper's Figure-7 design
    # includes such nodes.
    forbidden = set(placement)
    for other in placement:
        forbidden |= hotzone.daz(grid, other)
    x, y = grid.coord(cb)
    candidates: Dict[Coord, List[int]] = {d: [] for d in AXIS_DIRECTIONS}
    for dx in range(-max_distance, max_distance + 1):
        for dy in range(-max_distance, max_distance + 1):
            dist = abs(dx) + abs(dy)
            if not min_distance <= dist <= max_distance:
                continue
            if not grid.contains(x + dx, y + dy):
                continue
            node = grid.node(x + dx, y + dy)
            if node in forbidden:
                continue
            # Sector assignment by dominant displacement; diagonal ties
            # go to the x sector so each node has exactly one direction.
            if abs(dx) >= abs(dy) and dx != 0:
                direction = (1, 0) if dx > 0 else (-1, 0)
            else:
                direction = (0, 1) if dy > 0 else (0, -1)
            candidates[direction].append(node)
    for direction in AXIS_DIRECTIONS:
        # Order near-to-far, then by node id, for determinism.
        candidates[direction].sort(key=lambda n: (grid.hops(cb, n), n))
    return candidates


def enumerate_groups(
    grid: Grid,
    placement: Sequence[int],
    cb: int,
    taken: FrozenSet[int] = frozenset(),
    min_distance: int = MIN_EIR_DISTANCE,
    max_distance: int = MAX_EIR_DISTANCE,
    require_full: bool = False,
) -> List[EirGroup]:
    """All legal EIR groups for ``cb``, skipping nodes already ``taken``.

    ``require_full`` keeps only groups with an EIR in every direction
    that has at least one candidate (used to bias the search toward
    high-injection-bandwidth designs).
    """
    per_dir = candidate_positions(
        grid, placement, cb, min_distance=min_distance, max_distance=max_distance
    )
    directions = list(per_dir)
    groups: List[EirGroup] = []

    def recurse(idx: int, chosen: Dict[Coord, int]) -> None:
        if idx == len(directions):
            groups.append(make_group(cb, dict(chosen)))
            return
        direction = directions[idx]
        options = [n for n in per_dir[direction] if n not in taken
                   and n not in chosen.values()]
        if not options or not require_full:
            recurse(idx + 1, chosen)  # leave this direction empty
        for node in options:
            chosen[direction] = node
            recurse(idx + 1, chosen)
            del chosen[direction]

    recurse(0, {})
    return groups


def design_space_size(
    grid: Grid,
    placement: Sequence[int],
    min_distance: int = 1,
    max_distance: int = MAX_EIR_DISTANCE,
) -> int:
    """Upper bound on the number of complete EIR selections.

    The product over CBs of their per-CB group counts (ignoring the
    no-sharing interaction between CBs, hence an upper bound).  With
    ``min_distance=1`` and ``max_distance=3`` this reports the size of
    the raw space the paper quotes as ~1.7e10 for 8x8.
    """
    total = 1
    for cb in placement:
        groups = enumerate_groups(
            grid,
            placement,
            cb,
            min_distance=min_distance,
            max_distance=max_distance,
        )
        total *= len(groups)
    return total


@dataclass(frozen=True)
class EirDesign:
    """A complete EIR selection: one group per cache bank."""

    grid: Grid
    placement: Tuple[int, ...]
    groups: Tuple[EirGroup, ...]

    def __post_init__(self) -> None:
        cbs = [g.cb for g in self.groups]
        if sorted(cbs) != sorted(self.placement):
            raise ValueError("groups must cover exactly the placed CBs")
        all_eirs = [n for g in self.groups for n in g.nodes]
        if len(all_eirs) != len(set(all_eirs)):
            raise ValueError("an EIR may not be shared between CBs")
        overlap = set(all_eirs) & set(self.placement)
        if overlap:
            raise ValueError(f"nodes {sorted(overlap)} are both CB and EIR")

    @property
    def group_by_cb(self) -> Dict[int, EirGroup]:
        return {g.cb: g for g in self.groups}

    @property
    def eir_nodes(self) -> FrozenSet[int]:
        return frozenset(n for g in self.groups for n in g.nodes)

    def links(self) -> List[Tuple[int, int]]:
        """The interposer links as ``(cb, eir)`` node pairs."""
        return [(g.cb, node) for g in self.groups for node in g.nodes]

    def total_link_length(self) -> int:
        """Sum of link lengths in mesh hops."""
        return sum(self.grid.hops(cb, eir) for cb, eir in self.links())

    def injection_points(self, cb: int) -> Tuple[int, ...]:
        """All routers ``cb`` may inject through (local router first)."""
        return (cb,) + self.group_by_cb[cb].nodes


def shortest_path_eirs(grid: Grid, design: EirDesign, cb: int, dst: int) -> List[int]:
    """EIRs of ``cb`` that lie on a minimal path from ``cb`` to ``dst``.

    An EIR ``e`` qualifies when ``hops(cb, e) + hops(e, dst) ==
    hops(cb, dst)`` — injecting there causes no detour.  The local
    router always qualifies and is *not* included here.
    """
    if cb == dst:
        raise ValueError("a CB does not send packets to itself")
    base = grid.hops(cb, dst)
    group = design.group_by_cb[cb]
    return [
        node
        for node in group.nodes
        if grid.hops(cb, node) + grid.hops(node, dst) == base
    ]


def no_eir_design(grid: Grid, placement: Sequence[int]) -> EirDesign:
    """A degenerate design with empty groups (baseline injection only)."""
    groups = tuple(make_group(cb, {}) for cb in placement)
    return EirDesign(grid=grid, placement=tuple(placement), groups=groups)
