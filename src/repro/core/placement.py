"""Cache-bank placement strategies (paper sections 4.2 and 6.8).

The placements compared in the paper's Figure 4 are provided (Top,
Side, Diagonal, Diamond) together with the proposed scored N-Queen
placement, and the knight-move placement for the "more CBs than N" case
discussed in section 6.8.

A placement is a tuple of node ids on a :class:`~repro.core.grid.Grid`,
in no particular order, with one entry per cache bank.  Each CB is
assumed to pair with one memory controller and one HBM stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from . import hotzone, nqueen
from .grid import Grid

Placement = Tuple[int, ...]


@dataclass(frozen=True)
class PlacementResult:
    """A named placement plus its hot-zone penalty score."""

    name: str
    nodes: Placement
    penalty: int

    def __len__(self) -> int:
        return len(self.nodes)


def _score(grid: Grid, name: str, nodes: Sequence[int]) -> PlacementResult:
    return PlacementResult(
        name=name,
        nodes=tuple(nodes),
        penalty=hotzone.placement_penalty(grid, tuple(nodes)),
    )


def _spread(count: int, extent: int) -> List[int]:
    """``count`` indices spread as evenly as possible across ``extent``."""
    if count > extent:
        raise ValueError("cannot spread more items than positions")
    return [round(i * (extent - 1) / max(count - 1, 1)) for i in range(count)]


def top(grid: Grid, num_cbs: int = 8) -> PlacementResult:
    """All CBs on the top row (classic "Top" placement)."""
    xs = _spread(num_cbs, grid.width)
    return _score(grid, "top", [grid.node(x, 0) for x in xs])


def side(grid: Grid, num_cbs: int = 8) -> PlacementResult:
    """All CBs along the left column (classic "Side" placement).

    Stacking the CBs in one column makes the first few columns carry
    every reply flit — the severe congestion the paper's Figure 4 heat
    map shows for this placement.
    """
    ys = _spread(num_cbs, grid.height)
    return _score(grid, "side", [grid.node(0, y) for y in ys])


def diagonal(grid: Grid, num_cbs: int = 8) -> PlacementResult:
    """CBs along the main diagonal (distinct rows and columns)."""
    if grid.width != grid.height:
        raise ValueError("diagonal placement requires a square grid")
    idx = _spread(num_cbs, grid.width)
    return _score(grid, "diagonal", [grid.node(i, i) for i in idx])


def diamond(grid: Grid, num_cbs: int = 8) -> PlacementResult:
    """Diamond placement: two anti-diagonal runs forming a rotated square.

    Rows are distinct and columns are distinct (the property the paper
    relies on when contrasting Diamond with Top/Side), but adjacent CBs
    are diagonal neighbours — the weakness that motivates N-Queen.
    For 8 CBs on 8x8 this yields
    ``(0,3),(1,2),(2,1),(3,0),(4,7),(5,6),(6,5),(7,4)``.
    """
    if grid.width != grid.height:
        raise ValueError("diamond placement requires a square grid")
    n = grid.width
    rows = _spread(num_cbs, n)
    half = num_cbs // 2
    # First half descends toward column 0; second half descends from the
    # right edge, mirroring the first half.
    nodes = []
    for i, row in enumerate(rows):
        if i < half:
            col = rows[half - 1] - row if half > 0 else 0
            col = max(col, 0)
        else:
            col = (n - 1) - (row - rows[half]) if num_cbs > half else n - 1
            col = min(max(col, 0), n - 1)
        nodes.append(grid.node(col, row))
    return _score(grid, "diamond", nodes)


def nqueen_best(
    grid: Grid,
    num_cbs: int = 8,
    max_solutions: int = 256,
    seed: int = 0,
) -> PlacementResult:
    """The lowest-penalty N-Queen placement (the paper's choice).

    For square grids with ``num_cbs == N`` every solution (or a sampled
    subset for large N) is scored with the hot-zone penalty and the best
    is returned.  When ``num_cbs < N`` redundant queens are pruned per
    paper section 6.8 and the best pruned subset is returned.
    """
    if grid.width != grid.height:
        raise ValueError("N-Queen placement requires a square grid")
    n = grid.width
    if num_cbs > n:
        raise ValueError("use knight_move() when num_cbs exceeds N")
    solutions = nqueen.candidate_solutions(n, max_solutions=max_solutions, seed=seed)
    best: PlacementResult | None = None
    for cols in solutions:
        if num_cbs == n:
            candidates: List[Tuple[Tuple[int, int], ...]] = [
                tuple((c, r) for r, c in enumerate(cols))
            ]
        else:
            candidates = list(nqueen.prune_to_k(cols, num_cbs, seed=seed,
                                                max_subsets=32))
        for coords in candidates:
            nodes = tuple(grid.node(x, y) for x, y in coords)
            result = _score(grid, "nqueen", nodes)
            if best is None or (result.penalty, result.nodes) < (
                best.penalty,
                best.nodes,
            ):
                best = result
    assert best is not None
    return best


def knight_move(grid: Grid, num_cbs: int) -> PlacementResult:
    """Knight-move placement for more CBs than N (paper section 6.8).

    CBs are laid out following chess knight displacements ``(+1, +2)``
    (wrapping within the grid), which the paper states minimises the
    number of same-row/column/diagonal CB pairs when ``num_cbs > N``.
    """
    if num_cbs <= 0:
        raise ValueError("num_cbs must be positive")
    if num_cbs > grid.size:
        raise ValueError("more CBs than tiles")
    nodes: List[int] = []
    seen = set()
    x, y = 0, 0
    steps = 0
    while len(nodes) < num_cbs and steps < 4 * grid.size:
        steps += 1
        node = grid.node(x % grid.width, y % grid.height)
        if node not in seen:
            seen.add(node)
            nodes.append(node)
            x, y = x + 1, y + 2  # knight displacement
        else:
            x += 1  # completed a knight cycle; shift the phase
    for node in grid.nodes():  # safety fill for degenerate grids
        if len(nodes) >= num_cbs:
            break
        if node not in seen:
            seen.add(node)
            nodes.append(node)
    return _score(grid, "knight", nodes)


STRATEGIES: Dict[str, Callable[..., PlacementResult]] = {
    "top": top,
    "side": side,
    "diagonal": diagonal,
    "diamond": diamond,
    "nqueen": nqueen_best,
}
"""Placements compared in the paper's Figure 4, by name."""


def by_name(name: str, grid: Grid, num_cbs: int = 8, **kwargs) -> PlacementResult:
    """Look up and build a placement strategy by its Figure-4 name."""
    try:
        strategy = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    return strategy(grid, num_cbs, **kwargs)
