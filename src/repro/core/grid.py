"""Mesh-grid coordinate helpers shared by placement, EIR selection and the NoC.

A network of ``width x height`` tiles is addressed two ways:

* by coordinate ``(x, y)`` with ``0 <= x < width`` (column) and
  ``0 <= y < height`` (row), and
* by node id ``node = y * width + x``.

All modules in :mod:`repro` use these helpers so the two addressings can
never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

Coord = Tuple[int, int]


@dataclass(frozen=True)
class Grid:
    """A rectangular tile grid.

    Parameters
    ----------
    width:
        Number of columns.
    height:
        Number of rows.  Defaults to ``width`` (square grid) when zero.
    """

    width: int
    height: int = 0

    def __post_init__(self) -> None:
        if self.height == 0:
            object.__setattr__(self, "height", self.width)
        if self.width <= 0 or self.height <= 0:
            raise ValueError("grid dimensions must be positive")

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of tiles."""
        return self.width * self.height

    def node(self, x: int, y: int) -> int:
        """Return the node id for coordinate ``(x, y)``."""
        if not self.contains(x, y):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} grid")
        return y * self.width + x

    def coord(self, node: int) -> Coord:
        """Return the ``(x, y)`` coordinate of ``node``."""
        if not 0 <= node < self.size:
            raise ValueError(f"node {node} outside {self.width}x{self.height} grid")
        return node % self.width, node // self.width

    def contains(self, x: int, y: int) -> bool:
        """Whether ``(x, y)`` lies inside the grid."""
        return 0 <= x < self.width and 0 <= y < self.height

    def nodes(self) -> Iterator[int]:
        """Iterate all node ids in row-major order."""
        return iter(range(self.size))

    def coords(self) -> Iterator[Coord]:
        """Iterate all coordinates in row-major order."""
        return ((n % self.width, n // self.width) for n in range(self.size))

    # ------------------------------------------------------------------
    # Distances and neighbourhoods
    # ------------------------------------------------------------------
    def hops(self, a: int, b: int) -> int:
        """Manhattan (minimal mesh hop) distance between two nodes."""
        ax, ay = self.coord(a)
        bx, by = self.coord(b)
        return abs(ax - bx) + abs(ay - by)

    def neighbors(self, node: int) -> List[int]:
        """The up-to-four mesh neighbours of ``node`` (N, S, E, W order)."""
        x, y = self.coord(node)
        out = []
        for dx, dy in ((0, -1), (0, 1), (1, 0), (-1, 0)):
            if self.contains(x + dx, y + dy):
                out.append(self.node(x + dx, y + dy))
        return out

    def diagonal_neighbors(self, node: int) -> List[int]:
        """The up-to-four diagonal neighbours of ``node``."""
        x, y = self.coord(node)
        out = []
        for dx, dy in ((-1, -1), (1, -1), (-1, 1), (1, 1)):
            if self.contains(x + dx, y + dy):
                out.append(self.node(x + dx, y + dy))
        return out

    def ring(self, node: int, radius: int) -> List[int]:
        """All nodes at exactly ``radius`` Manhattan hops from ``node``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        x, y = self.coord(node)
        out = []
        for dx in range(-radius, radius + 1):
            dy = radius - abs(dx)
            for sy in ({dy, -dy}):
                if self.contains(x + dx, y + sy):
                    out.append(self.node(x + dx, y + sy))
        return sorted(set(out))

    def within(self, node: int, radius: int) -> List[int]:
        """All nodes within ``radius`` hops of ``node`` (excluding itself)."""
        out: List[int] = []
        for r in range(1, radius + 1):
            out.extend(self.ring(node, r))
        return sorted(set(out))

    # ------------------------------------------------------------------
    # Alignment predicates (used by placement quality checks)
    # ------------------------------------------------------------------
    def same_row(self, a: int, b: int) -> bool:
        return self.coord(a)[1] == self.coord(b)[1]

    def same_col(self, a: int, b: int) -> bool:
        return self.coord(a)[0] == self.coord(b)[0]

    def same_diagonal(self, a: int, b: int) -> bool:
        """Whether two nodes share any (45-degree) diagonal."""
        ax, ay = self.coord(a)
        bx, by = self.coord(b)
        return abs(ax - bx) == abs(ay - by) and a != b

    def direction(self, src: int, dst: int) -> Coord:
        """Unit-ish direction ``(sign(dx), sign(dy))`` from ``src`` to ``dst``."""
        sx, sy = self.coord(src)
        dx, dy = self.coord(dst)
        step = lambda d: (d > 0) - (d < 0)  # noqa: E731 - tiny sign helper
        return step(dx - sx), step(dy - sy)


AXIS_DIRECTIONS: Tuple[Coord, ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))
"""The four axis directions (E, W, S, N) used for EIR placement."""


def direction_name(direction: Coord) -> str:
    """Human-readable name of an axis direction."""
    names = {(1, 0): "x+", (-1, 0): "x-", (0, 1): "y+", (0, -1): "y-"}
    if direction not in names:
        raise ValueError(f"{direction} is not an axis direction")
    return names[direction]
