"""N-Queen solvers used for cache-bank placement (paper section 4.2).

The paper places CBs so that no two share a row, column or diagonal —
exactly the N-Queen constraint.  For an 8x8 network all 92 solutions are
enumerated and scored; for larger networks a sampled subset is used.

Solutions are represented as a tuple ``cols`` where ``cols[row]`` is the
column of the queen in ``row`` — this encodes the distinct-row and
distinct-column constraints structurally.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from .grid import Grid

Solution = Tuple[int, ...]


def is_valid_solution(cols: Sequence[int]) -> bool:
    """Whether ``cols`` is a valid N-Queen solution."""
    n = len(cols)
    if sorted(cols) != list(range(n)):
        return False
    for i in range(n):
        for j in range(i + 1, n):
            if abs(cols[i] - cols[j]) == j - i:
                return False
    return True


def solve_all(n: int, limit: Optional[int] = None) -> List[Solution]:
    """Enumerate N-Queen solutions by backtracking (row by row).

    Parameters
    ----------
    n:
        Board size.
    limit:
        If given, stop after this many solutions (useful for n >= 12
        where the full count explodes).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    solutions: List[Solution] = []
    cols: List[int] = []
    used_cols = [False] * n
    used_d1 = [False] * (2 * n)  # row + col
    used_d2 = [False] * (2 * n)  # row - col + n

    def backtrack(row: int) -> bool:
        if row == n:
            solutions.append(tuple(cols))
            return limit is not None and len(solutions) >= limit
        for col in range(n):
            d1, d2 = row + col, row - col + n
            if used_cols[col] or used_d1[d1] or used_d2[d2]:
                continue
            used_cols[col] = used_d1[d1] = used_d2[d2] = True
            cols.append(col)
            done = backtrack(row + 1)
            cols.pop()
            used_cols[col] = used_d1[d1] = used_d2[d2] = False
            if done:
                return True
        return False

    backtrack(0)
    return solutions


def sample_solutions(n: int, count: int, seed: int = 0) -> List[Solution]:
    """Sample up to ``count`` distinct solutions via randomised backtracking.

    Each attempt shuffles the column order tried at every row, yielding
    a diverse sample of the solution space without enumerating it.
    """
    rng = random.Random(seed)
    found: set = set()
    attempts = 0
    max_attempts = count * 50
    while len(found) < count and attempts < max_attempts:
        attempts += 1
        solution = _random_solution(n, rng)
        if solution is not None:
            found.add(solution)
    return sorted(found)


def _random_solution(n: int, rng: random.Random) -> Optional[Solution]:
    """One randomised backtracking attempt; returns a solution or ``None``."""
    cols: List[int] = []
    used_cols = [False] * n
    used_d1 = [False] * (2 * n)
    used_d2 = [False] * (2 * n)

    def backtrack(row: int) -> bool:
        if row == n:
            return True
        order = list(range(n))
        rng.shuffle(order)
        for col in order:
            d1, d2 = row + col, row - col + n
            if used_cols[col] or used_d1[d1] or used_d2[d2]:
                continue
            used_cols[col] = used_d1[d1] = used_d2[d2] = True
            cols.append(col)
            if backtrack(row + 1):
                return True
            cols.pop()
            used_cols[col] = used_d1[d1] = used_d2[d2] = False
        return False

    if backtrack(0):
        return tuple(cols)
    return None


def solution_to_nodes(grid: Grid, cols: Sequence[int]) -> Tuple[int, ...]:
    """Convert a queen-per-row solution into grid node ids.

    Row ``r`` maps to grid ``y = r`` and the queen's column to ``x``.
    The board size must match the grid (square grids only).
    """
    if grid.width != grid.height:
        raise ValueError("N-Queen placement requires a square grid")
    if len(cols) != grid.height:
        raise ValueError(
            f"solution has {len(cols)} rows but grid height is {grid.height}"
        )
    return tuple(grid.node(col, row) for row, col in enumerate(cols))


def candidate_solutions(
    n: int, max_solutions: int = 256, seed: int = 0
) -> List[Solution]:
    """Solutions to score for an ``n x n`` grid.

    For ``n <= 10`` every solution is enumerated (92 for n=8); above
    that a deterministic sample is drawn, mirroring the paper's "generate
    a number of N-Queen placements" procedure for large networks.
    """
    if n <= 10:
        return solve_all(n)
    return sample_solutions(n, max_solutions, seed=seed)


def count_solutions(n: int) -> int:
    """Number of N-Queen solutions (exact, by enumeration)."""
    return len(solve_all(n))


def prune_to_k(
    cols: Sequence[int], k: int, seed: int = 0, max_subsets: int = 512
) -> Iterator[Tuple[Tuple[int, int], ...]]:
    """Yield ``(x, y)`` placements of size ``k`` pruned from a full solution.

    When the processor has fewer CBs than N, redundant queens are
    deleted and the scoring policy picks the best subset (paper §6.8).
    Each yielded placement is a tuple of ``(col, row)`` coordinates.
    All subsets are yielded when few enough, otherwise a deterministic
    random sample of ``max_subsets``.
    """
    n = len(cols)
    if k > n:
        raise ValueError("cannot prune to more queens than present")
    from itertools import combinations

    all_subsets = list(combinations(range(n), k))
    rng = random.Random(seed)
    if len(all_subsets) > max_subsets:
        rng.shuffle(all_subsets)
        all_subsets = all_subsets[:max_subsets]
    for rows in all_subsets:
        yield tuple((cols[r], r) for r in rows)
