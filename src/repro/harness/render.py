"""Plain-text rendering of grids, heat maps and EIR designs.

Everything the paper shows as a colour figure has a text analogue here:
heat maps print per-tile numbers (Figure 4), and design maps print the
tile roles — ``C`` for a cache bank, letters for its EIR group members
(Figure 7's colour coding), ``.`` for plain PE tiles.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..core.equinox import EquiNoxDesign
from ..core.grid import Grid


def heatmap_text(
    heat: np.ndarray,
    grid: Grid,
    marked: Sequence[int] = (),
    cell_format: str = "{:5.2f}",
) -> str:
    """Render a per-node array as a grid of numbers.

    ``marked`` nodes (typically the CBs) get a ``*`` suffix, like the
    circled nodes in the paper's figures.
    """
    flat = np.asarray(heat).reshape(-1)
    if flat.size != grid.size:
        raise ValueError(
            f"heat array has {flat.size} entries for a {grid.size}-tile grid"
        )
    marked_set = set(marked)
    lines = []
    for y in range(grid.height):
        cells = []
        for x in range(grid.width):
            node = grid.node(x, y)
            suffix = "*" if node in marked_set else " "
            cells.append(cell_format.format(flat[node]) + suffix)
        lines.append(" ".join(cells))
    return "\n".join(lines)


def design_map(design: EquiNoxDesign) -> str:
    """Render an EquiNox design as a tile map (Figure 7, in ASCII).

    Each CB is shown as an upper-case letter and its EIRs as the same
    letter in lower case; ``.`` marks ordinary PE tiles.
    """
    grid = design.grid
    symbol: Dict[int, str] = {}
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for index, group in enumerate(design.eir_design.groups):
        letter = letters[index % len(letters)]
        symbol[group.cb] = letter
        for eir in group.nodes:
            symbol[eir] = letter.lower()
    lines = []
    for y in range(grid.height):
        row = [
            symbol.get(grid.node(x, y), ".") for x in range(grid.width)
        ]
        lines.append(" ".join(row))
    legend = (
        "upper case = cache bank, lower case = its EIRs, . = PE tile"
    )
    return "\n".join(lines) + "\n" + legend


def placement_map(grid: Grid, placement: Sequence[int]) -> str:
    """Render a CB placement as a tile map (``C`` = cache bank)."""
    cbs = set(placement)
    lines = []
    for y in range(grid.height):
        row = [
            "C" if grid.node(x, y) in cbs else "."
            for x in range(grid.width)
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)
