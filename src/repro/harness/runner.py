"""Parallel experiment execution: fan a sweep grid out across cores.

Every ``(scheme, benchmark, config)`` cell of a sweep is an independent
deterministic simulation, which makes the grid embarrassingly parallel:

* :func:`expand_grid` turns a scheme x benchmark grid into an explicit
  list of :class:`SweepCell` jobs, each carrying its own fully-resolved
  :class:`~repro.harness.experiment.ExperimentConfig` (including its
  seed), so a cell's outcome never depends on worker scheduling;
* :func:`run_sweep` executes the cells — serially for ``jobs<=1``,
  otherwise on a ``ProcessPoolExecutor`` — recording per-cell timing
  and keeping the sweep alive when a cell fails (the error text is
  captured in its :class:`CellOutcome` instead of aborting the batch);
* :func:`warm_design_cache` precomputes each distinct MCTS/N-Queen
  artefact once in the parent before forking, so workers load it from
  the disk tier of :mod:`~repro.harness.cache` instead of redoing the
  search per process.

Determinism contract: for a fixed ``(seed, config)``, serial and
parallel execution (and cold vs warm disk cache) produce bit-identical
results — the determinism tests compare ``stats_fingerprint`` digests
across all four combinations.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..schemes import get_config
from . import cache
from .experiment import ExperimentConfig, run_experiment
from .metrics import ExperimentResult, format_table


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work."""

    scheme: str
    benchmark: str
    config: ExperimentConfig

    @property
    def key(self) -> Tuple[str, str]:
        return (self.scheme, self.benchmark)

    @property
    def label(self) -> str:
        return f"{self.scheme} x {self.benchmark}"


@dataclass
class CellOutcome:
    """What happened to one cell: its result or its error, plus timing."""

    cell: SweepCell
    result: Optional[ExperimentResult]
    error: Optional[str]
    duration_s: float
    pid: int
    # Structured diagnostic dump when the failure was a watchdog stall
    # or a conservation-audit violation (SimulationStall /
    # NetworkAuditError carry it on their ``dump`` attribute).
    stall_dump: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """All cell outcomes of one sweep, in grid order."""

    outcomes: List[CellOutcome]
    wall_s: float
    jobs: int

    def results(self) -> Dict[Tuple[str, str], ExperimentResult]:
        """Successful cells as the classic ``run_suite`` mapping."""
        return {o.cell.key: o.result for o in self.outcomes if o.ok}

    def errors(self) -> Dict[Tuple[str, str], str]:
        """Failed cells and their captured tracebacks."""
        return {o.cell.key: o.error for o in self.outcomes if not o.ok}

    def stall_dumps(self) -> Dict[Tuple[str, str], str]:
        """Failed cells whose exception carried a diagnostic dump."""
        return {
            o.cell.key: o.stall_dump
            for o in self.outcomes
            if o.stall_dump is not None
        }

    @property
    def cell_seconds(self) -> float:
        """Total single-core work: sum of per-cell durations."""
        return sum(o.duration_s for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Aggregate work time over wall time (1.0 when serial)."""
        return self.cell_seconds / self.wall_s if self.wall_s else 0.0

    def summary(self, slowest: int = 5) -> str:
        """A human-readable timing summary (slowest cells first)."""
        ranked = sorted(
            self.outcomes, key=lambda o: o.duration_s, reverse=True
        )
        rows = [
            (
                o.cell.label,
                o.duration_s,
                "ok" if o.ok else "FAILED",
            )
            for o in ranked[:slowest]
        ]
        lines = [
            f"{len(self.outcomes)} cells, {len(self.errors())} failed, "
            f"jobs={self.jobs}: {self.cell_seconds:.1f}s of work in "
            f"{self.wall_s:.1f}s wall ({self.speedup:.2f}x)",
            format_table(("Cell", "Seconds", "Status"), rows),
        ]
        return "\n".join(lines)


def cell_seed(base_seed: int, scheme: str, benchmark: str) -> int:
    """A deterministic per-cell seed, independent of grid order.

    Derived by hashing rather than by enumeration index so inserting or
    removing cells never shifts any other cell's seed.
    """
    digest = hashlib.sha256(
        f"{base_seed}:{scheme}:{benchmark}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def expand_grid(
    schemes: Sequence[str],
    benchmarks: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    reseed_cells: bool = False,
) -> List[SweepCell]:
    """Materialise a scheme x benchmark grid as sweep cells.

    With ``reseed_cells`` every cell gets its own :func:`cell_seed`
    (decorrelated workloads); by default all cells share the base seed,
    matching the historical serial ``run_suite`` behaviour exactly.
    """
    config = config or ExperimentConfig()
    cells: List[SweepCell] = []
    for scheme in schemes:
        for benchmark in benchmarks:
            cfg = config
            if reseed_cells:
                cfg = replace(
                    config, seed=cell_seed(config.seed, scheme, benchmark)
                )
            cells.append(SweepCell(scheme, benchmark, cfg))
    return cells


def _run_cell(cell: SweepCell) -> CellOutcome:
    """Execute one cell, converting any failure into data."""
    start = time.perf_counter()
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    stall_dump: Optional[str] = None
    try:
        result = run_experiment(cell.scheme, cell.benchmark, cell.config)
    except Exception as exc:
        error = traceback.format_exc()
        dump = getattr(exc, "dump", None)
        if isinstance(dump, str) and dump:
            stall_dump = dump
    return CellOutcome(
        cell=cell,
        result=result,
        error=error,
        duration_s=time.perf_counter() - start,
        pid=os.getpid(),
        stall_dump=stall_dump,
    )


def warm_design_cache(cells: Sequence[SweepCell]) -> None:
    """Compute each distinct design artefact once, before forking.

    Without this every worker would rediscover a cold cache and rerun
    the same MCTS search; after it, workers hit the disk tier (or, when
    forked, inherit the in-memory tier directly).
    """
    seen = set()
    for cell in cells:
        scheme = get_config(cell.scheme)
        cfg = cell.config
        if scheme.equinox:
            key = ("design", cfg.width, cfg.num_cbs,
                   cfg.mcts_iterations, cfg.seed)
            if key not in seen:
                cache.equinox_design(
                    cfg.width,
                    cfg.num_cbs,
                    iterations_per_level=cfg.mcts_iterations,
                    seed=cfg.seed,
                )
        else:
            key = ("placement", scheme.placement_name, cfg.width, cfg.num_cbs)
            if key not in seen:
                cache.placement(scheme.placement_name, cfg.width, cfg.num_cbs)
        seen.add(key)


def _report_progress(outcome: CellOutcome, done: int, total: int) -> None:
    status = "ok" if outcome.ok else "FAILED"
    print(
        f"[sweep {done}/{total}] {outcome.cell.label}: {status} "
        f"({outcome.duration_s:.1f}s, pid {outcome.pid})",
        flush=True,
    )


def run_sweep(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    progress: bool = False,
    warm: bool = True,
) -> SweepReport:
    """Run sweep cells, optionally across ``jobs`` worker processes.

    A failed cell never aborts the sweep: its traceback is recorded in
    the report and the remaining cells keep running.  If the process
    pool cannot be created or breaks (restricted sandboxes, OOM kills),
    the unfinished cells transparently fall back to serial execution.
    """
    cells = list(cells)
    start = time.perf_counter()
    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    done = 0
    jobs = max(1, jobs)
    if jobs > 1 and total > 1:
        if warm:
            warm_design_cache(cells)
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
                futures = {
                    pool.submit(_run_cell, cell): index
                    for index, cell in enumerate(cells)
                }
                for future in as_completed(futures):
                    outcome = future.result()
                    outcomes[futures[future]] = outcome
                    done += 1
                    if progress:
                        _report_progress(outcome, done, total)
        except (OSError, BrokenProcessPool) as exc:
            if progress:
                print(
                    f"[sweep] process pool unavailable ({exc!r}); "
                    "finishing serially",
                    flush=True,
                )
    for index, cell in enumerate(cells):  # serial path and pool fallback
        if outcomes[index] is None:
            outcome = _run_cell(cell)
            outcomes[index] = outcome
            done += 1
            if progress:
                _report_progress(outcome, done, total)
    return SweepReport(
        outcomes=outcomes,
        wall_s=time.perf_counter() - start,
        jobs=jobs,
    )


def sweep(
    schemes: Sequence[str],
    benchmarks: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    jobs: int = 1,
    progress: bool = False,
    reseed_cells: bool = False,
) -> SweepReport:
    """Grid convenience wrapper: :func:`expand_grid` + :func:`run_sweep`."""
    cells = expand_grid(schemes, benchmarks, config, reseed_cells)
    return run_sweep(cells, jobs=jobs, progress=progress)
