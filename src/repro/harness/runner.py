"""Parallel experiment execution: fan a sweep grid out across cores.

Every ``(scheme, benchmark, config)`` cell of a sweep is an independent
deterministic simulation, which makes the grid embarrassingly parallel:

* :func:`expand_grid` turns a scheme x benchmark grid into an explicit
  list of :class:`SweepCell` jobs, each carrying its own fully-resolved
  :class:`~repro.harness.experiment.ExperimentConfig` (including its
  seed), so a cell's outcome never depends on worker scheduling;
* :func:`run_sweep` executes the cells as a thin client of the
  work-queue bus (:mod:`~repro.harness.bus`): serially the worker
  loop runs inline over an in-memory bus, for ``jobs>1`` independent
  worker processes lease cells from a private SQLite bus — recording
  per-cell timing and keeping the sweep alive when a cell fails (the
  error text is captured in its :class:`CellOutcome`, and cells that
  fail beyond the retry budget land in the bus's dead-letter queue
  instead of aborting the batch);
* :func:`warm_design_cache` precomputes each distinct MCTS/N-Queen
  artefact once in the parent before forking, so workers load it from
  the disk tier of :mod:`~repro.harness.cache` instead of redoing the
  search per process.

Robustness: every cell attempt can be bounded by a wall-clock timeout
(SIGALRM-based, ``REPRO_CELL_TIMEOUT``), failed attempts can be
retried with exponential backoff under a fresh deterministic seed
(``REPRO_RETRIES``), and a sweep can journal completed cells to an
append-only JSON-lines checkpoint (:class:`SweepJournal`) from which a
killed run resumes without recomputing finished work.

Determinism contract: for a fixed ``(seed, config)``, serial and
parallel execution (and cold vs warm disk cache) produce bit-identical
results — the determinism tests compare ``stats_fingerprint`` digests
across all four combinations.  The bus extends the same contract to
any worker fleet size and any kill schedule: a crashed worker's lease
expires and the cell re-runs under the *same* seed (crashes never
consume the retry budget), so the re-delivered result is byte-equal
to what the dead worker would have produced.  A resumed sweep
restores journalled results bit-identically (JSON floats round-trip
exactly).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import signal
import tempfile
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..schemes import get_config
from . import cache
from .experiment import ExperimentConfig, config_digest, run_experiment
from .metrics import (
    ExperimentResult,
    format_table,
    result_from_dict,
    result_to_dict,
)

CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
RETRIES_ENV = "REPRO_RETRIES"


class CellTimeout(RuntimeError):
    """One sweep-cell attempt exceeded its wall-clock limit."""


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work."""

    scheme: str
    benchmark: str
    config: ExperimentConfig

    @property
    def key(self) -> Tuple[str, str]:
        return (self.scheme, self.benchmark)

    @property
    def label(self) -> str:
        return f"{self.scheme} x {self.benchmark}"


@dataclass
class CellOutcome:
    """What happened to one cell: its result or its error, plus timing."""

    cell: SweepCell
    result: Optional[ExperimentResult]
    error: Optional[str]
    duration_s: float
    pid: int
    # Structured diagnostic dump when the failure was a watchdog stall
    # or a conservation-audit violation (SimulationStall /
    # NetworkAuditError carry it on their ``dump`` attribute).
    stall_dump: Optional[str] = None
    # Attempts consumed (1 = first try succeeded or no retries left).
    attempts: int = 1
    # The last failed attempt hit the wall-clock limit.
    timed_out: bool = False
    # Exception class name of the recorded failure (None when ok).
    error_type: Optional[str] = None
    # Seed the recorded attempt actually ran with (retries reseed).
    seed_used: Optional[int] = None
    # Restored from a sweep journal instead of being recomputed.
    from_journal: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """All cell outcomes of one sweep, in grid order."""

    outcomes: List[CellOutcome]
    wall_s: float
    jobs: int

    def results(self) -> Dict[Tuple[str, str], ExperimentResult]:
        """Successful cells as the classic ``run_suite`` mapping."""
        return {o.cell.key: o.result for o in self.outcomes if o.ok}

    def errors(self) -> Dict[Tuple[str, str], str]:
        """Failed cells and their captured tracebacks."""
        return {o.cell.key: o.error for o in self.outcomes if not o.ok}

    def stall_dumps(self) -> Dict[Tuple[str, str], str]:
        """Failed cells whose exception carried a diagnostic dump."""
        return {
            o.cell.key: o.stall_dump
            for o in self.outcomes
            if o.stall_dump is not None
        }

    def telemetry_records(self) -> List[Dict[str, object]]:
        """Per-cell telemetry records, in grid order (sampled runs only)."""
        return [
            o.result.telemetry
            for o in self.outcomes
            if o.ok and o.result.telemetry is not None
        ]

    def telemetry_summary(
        self, config_digest: str = ""
    ) -> Dict[str, object]:
        """Sweep-level aggregation of the per-cell telemetry records."""
        from ..telemetry import aggregate_sweep

        return aggregate_sweep(self.telemetry_records(), config_digest)

    @property
    def cell_seconds(self) -> float:
        """Total single-core work: sum of per-cell durations."""
        return sum(o.duration_s for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Aggregate work time over wall time (1.0 when serial)."""
        return self.cell_seconds / self.wall_s if self.wall_s else 0.0

    def summary(self, slowest: int = 5) -> str:
        """A human-readable timing summary (slowest cells first)."""
        ranked = sorted(
            self.outcomes, key=lambda o: o.duration_s, reverse=True
        )
        rows = [
            (
                o.cell.label,
                o.duration_s,
                "ok" if o.ok else "FAILED",
            )
            for o in ranked[:slowest]
        ]
        lines = [
            f"{len(self.outcomes)} cells, {len(self.errors())} failed, "
            f"jobs={self.jobs}: {self.cell_seconds:.1f}s of work in "
            f"{self.wall_s:.1f}s wall ({self.speedup:.2f}x)",
            format_table(("Cell", "Seconds", "Status"), rows),
        ]
        return "\n".join(lines)


def cell_seed(base_seed: int, scheme: str, benchmark: str) -> int:
    """A deterministic per-cell seed, independent of grid order.

    Derived by hashing rather than by enumeration index so inserting or
    removing cells never shifts any other cell's seed.
    """
    digest = hashlib.sha256(
        f"{base_seed}:{scheme}:{benchmark}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def expand_grid(
    schemes: Sequence[str],
    benchmarks: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    reseed_cells: bool = False,
) -> List[SweepCell]:
    """Materialise a scheme x benchmark grid as sweep cells.

    With ``reseed_cells`` every cell gets its own :func:`cell_seed`
    (decorrelated workloads); by default all cells share the base seed,
    matching the historical serial ``run_suite`` behaviour exactly.
    """
    config = config or ExperimentConfig()
    cells: List[SweepCell] = []
    for scheme in schemes:
        for benchmark in benchmarks:
            cfg = config
            if reseed_cells:
                cfg = replace(
                    config, seed=cell_seed(config.seed, scheme, benchmark)
                )
            cells.append(SweepCell(scheme, benchmark, cfg))
    return cells


def retry_seed(base_seed: int, attempt: int) -> int:
    """Deterministic seed for retry ``attempt`` (1-based) of a cell.

    Hash-derived like :func:`cell_seed`, so every retry of every cell
    is reproducible in isolation without replaying the failed seed.
    """
    digest = hashlib.sha256(f"retry:{base_seed}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@contextmanager
def _wall_clock_limit(seconds: float) -> Iterator[None]:
    """Raise :class:`CellTimeout` if the body outlives ``seconds``.

    SIGALRM/``setitimer`` based, so it bounds wall-clock time even
    inside the tight simulation loop (no cooperative polling needed).
    A no-op when ``seconds <= 0``, on platforms without ``setitimer``,
    or off the main thread — signal handlers can only be installed on
    the main thread, and pool workers run cells on theirs.
    """
    if (
        seconds <= 0
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum: int, frame: object) -> None:
        raise CellTimeout(
            f"cell exceeded {seconds:.3g}s wall-clock limit"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    # An outer scope (nested limits, or a caller with its own alarm
    # discipline) may already have an itimer armed; cancelling it on
    # exit would silently disable that timeout.  Save it and re-arm
    # whatever time it has left when we tear down.
    outer_remaining, outer_interval = signal.getitimer(signal.ITIMER_REAL)
    start = time.monotonic()
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining > 0.0:
            elapsed = time.monotonic() - start
            # If the outer deadline already passed while ours was
            # armed, fire it (almost) immediately under the restored
            # handler rather than dropping it.
            remaining = max(outer_remaining - elapsed, 1e-6)
            signal.setitimer(signal.ITIMER_REAL, remaining, outer_interval)


def _run_cell(
    cell: SweepCell,
    cell_timeout: float = 0.0,
    retries: int = 0,
    backoff_s: float = 0.05,
) -> CellOutcome:
    """Execute one cell, converting any failure into data.

    Runs up to ``1 + retries`` attempts, each under ``cell_timeout``
    seconds of wall clock (0 = unbounded).  Retry attempts run with a
    fresh :func:`retry_seed` — replaying the identical seed of a
    deterministic simulation would fail identically — and back off
    exponentially so transient resource failures can clear.
    KeyboardInterrupt and SystemExit always propagate: a user abort
    must kill the sweep, not be recorded as just another cell failure.
    """
    start = time.perf_counter()
    error: Optional[str] = None
    error_type: Optional[str] = None
    stall_dump: Optional[str] = None
    timed_out = False
    attempt = 0
    while True:
        if attempt == 0:
            seed = cell.config.seed
            config = cell.config
        else:
            seed = retry_seed(cell.config.seed, attempt)
            config = replace(cell.config, seed=seed)
        try:
            with _wall_clock_limit(cell_timeout):
                result = run_experiment(cell.scheme, cell.benchmark, config)
            return CellOutcome(
                cell=cell,
                result=result,
                error=None,
                duration_s=time.perf_counter() - start,
                pid=os.getpid(),
                attempts=attempt + 1,
                seed_used=seed,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            error = traceback.format_exc()
            error_type = type(exc).__name__
            timed_out = isinstance(exc, CellTimeout)
            dump = getattr(exc, "dump", None)
            stall_dump = dump if isinstance(dump, str) and dump else None
        if attempt >= retries:
            return CellOutcome(
                cell=cell,
                result=None,
                error=error,
                duration_s=time.perf_counter() - start,
                pid=os.getpid(),
                stall_dump=stall_dump,
                attempts=attempt + 1,
                timed_out=timed_out,
                error_type=error_type,
                seed_used=seed,
            )
        attempt += 1
        time.sleep(backoff_s * (2 ** (attempt - 1)))


# Journal records are keyed by the shared experiment-config digest, so
# a resumed sweep only reuses a cell if every knob matches exactly.
_config_digest = config_digest


JOURNAL_SCHEMA = 1


class SweepJournal:
    """Append-only JSON-lines checkpoint of completed sweep cells.

    Every completed cell appends one self-contained record keyed by
    ``(scheme, benchmark, config digest)``.  Appends are flushed and
    fsynced, so a record is durable the moment ``append`` returns, and
    :meth:`load` skips torn or corrupt lines, so killing the sweep
    mid-append costs at most that one record.  ``repro sweep --resume``
    replays successful records bit-identically (floats survive the
    JSON round trip exactly) and re-runs everything else.
    """

    def __init__(self, path: object) -> None:
        self.path = str(path)

    @staticmethod
    def key(cell: SweepCell) -> Tuple[str, str, str]:
        return (cell.scheme, cell.benchmark, _config_digest(cell.config))

    def write_header(self, cells: int) -> None:
        """Make a fresh journal self-describing before any cell lands.

        Written (and fsynced) once, only when the file is absent or
        zero-byte — a sweep killed before this fsync leaves an empty
        file, and both :meth:`load` and ``--resume`` treat that the
        same as no journal at all: start fresh.  Existing journals
        (including ones resumed across schema-1 versions without a
        header) are left untouched.  :meth:`load` skips the header
        record, so pre-header readers of the same format keep working.
        """
        try:
            if os.path.getsize(self.path) > 0:
                return
        except OSError:
            pass  # absent: create below
        from .. import __version__

        record = {
            "schema": JOURNAL_SCHEMA,
            "kind": "header",
            "version": __version__,
            "cells": cells,
        }
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with open(self.path, "ab") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def append(self, outcome: CellOutcome) -> None:
        record = {
            "schema": JOURNAL_SCHEMA,
            "scheme": outcome.cell.scheme,
            "benchmark": outcome.cell.benchmark,
            "config": _config_digest(outcome.cell.config),
            "ok": outcome.ok,
            "result": (
                result_to_dict(outcome.result)
                if outcome.result is not None
                else None
            ),
            "error": outcome.error,
            "error_type": outcome.error_type,
            "duration_s": outcome.duration_s,
            "pid": outcome.pid,
            "stall_dump": outcome.stall_dump,
            "attempts": outcome.attempts,
            "timed_out": outcome.timed_out,
            "seed_used": outcome.seed_used,
        }
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with open(self.path, "a+b") as fh:
            if fh.tell() > 0:
                # A kill mid-append can leave a torn, newline-less tail;
                # this record must start on its own line or both lines
                # become unparseable.
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    data = b"\n" + data
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def load(self) -> Dict[Tuple[str, str, str], dict]:
        """Parse the journal; last valid record per key wins."""
        records: Dict[Tuple[str, str, str], dict] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from a kill mid-append
            if (
                not isinstance(record, dict)
                or record.get("schema") != JOURNAL_SCHEMA
                or record.get("kind") == "header"
            ):
                continue
            key = (
                record.get("scheme"),
                record.get("benchmark"),
                record.get("config"),
            )
            if any(not isinstance(part, str) for part in key):
                continue
            records[key] = record
        return records

    def restore(
        self, cell: SweepCell, record: dict
    ) -> Optional[CellOutcome]:
        """Rebuild a successful outcome from its journal record."""
        if not record.get("ok") or not isinstance(record.get("result"), dict):
            return None  # failed cells are re-run on resume
        try:
            result = result_from_dict(record["result"])
        except (TypeError, ValueError):
            return None
        return CellOutcome(
            cell=cell,
            result=result,
            error=None,
            duration_s=float(record.get("duration_s", 0.0)),
            pid=int(record.get("pid", 0)),
            attempts=int(record.get("attempts", 1)),
            seed_used=record.get("seed_used"),
            from_journal=True,
        )


def warm_design_cache(cells: Sequence[SweepCell]) -> None:
    """Compute each distinct design artefact once, before forking.

    Without this every worker would rediscover a cold cache and rerun
    the same MCTS search; after it, workers hit the disk tier (or, when
    forked, inherit the in-memory tier directly).
    """
    seen = set()
    for cell in cells:
        scheme = get_config(cell.scheme)
        cfg = cell.config
        if scheme.equinox:
            key = ("design", cfg.width, cfg.num_cbs,
                   cfg.mcts_iterations, cfg.seed)
            if key not in seen:
                cache.equinox_design(
                    cfg.width,
                    cfg.num_cbs,
                    iterations_per_level=cfg.mcts_iterations,
                    seed=cfg.seed,
                )
        else:
            key = ("placement", scheme.placement_name, cfg.width, cfg.num_cbs)
            if key not in seen:
                cache.placement(scheme.placement_name, cfg.width, cfg.num_cbs)
        seen.add(key)


def _report_progress(outcome: CellOutcome, done: int, total: int) -> None:
    if outcome.from_journal:
        status = "ok (journal)"
    elif outcome.ok:
        status = "ok"
    elif outcome.timed_out:
        status = "FAILED (timeout)"
    else:
        status = "FAILED"
    if outcome.attempts > 1:
        status += f" after {outcome.attempts} attempts"
    print(
        f"[sweep {done}/{total}] {outcome.cell.label}: {status} "
        f"({outcome.duration_s:.1f}s, pid {outcome.pid})",
        flush=True,
    )


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    # float() happily parses 'nan'/'inf': NaN defeats every <=/>=
    # guard downstream (nan <= 0 is False, so it would reach
    # setitimer), and infinities/negatives are never meaningful for
    # these knobs.  Fail loudly instead of arming a broken timer.
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite, got {raw!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {raw!r}")
    return value


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {raw!r}")
    return value


# Lease bounds for the internal worker fleet: long enough that only a
# dead worker's lease ever expires (live ones heartbeat well inside
# it), short enough that crash recovery doesn't stall a sweep.
FLEET_LEASE_S = 30.0
FLEET_HEARTBEAT_S = 2.0


def run_sweep(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    progress: bool = False,
    warm: bool = True,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff_s: float = 0.05,
    journal: Optional[object] = None,
    resume: bool = False,
    store: Optional[object] = None,
    lease_s: float = FLEET_LEASE_S,
    heartbeat_s: float = FLEET_HEARTBEAT_S,
) -> SweepReport:
    """Run sweep cells, optionally across ``jobs`` worker processes.

    A thin client of the work-queue bus (:mod:`~repro.harness.bus`):
    every cell flows through lease -> execute -> ack.  Serially the
    worker loop runs inline over an in-memory bus; with ``jobs > 1``
    the cells go onto a private SQLite bus and ``jobs`` independent
    worker processes drain it.  A SIGKILLed or wedged worker only
    costs its in-flight lease: the lease expires and the cell is
    re-delivered — same attempt, same seed, byte-identical result —
    to a surviving worker, or to a serial fallback drain in this
    process if the whole fleet dies (restricted sandboxes, OOM kills).

    A failed cell never aborts the sweep: after ``retries`` reseeded
    attempts it is dead-lettered and reported as a failed outcome with
    its traceback/stall dump, while the remaining cells keep running.

    ``cell_timeout`` (seconds per attempt) and ``retries`` default to
    the ``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRIES`` env vars, so CI can
    arm a whole sweep without threading flags through.  ``journal``
    names a :class:`SweepJournal` path to checkpoint completed cells
    into (written from the parent process only); with ``resume``,
    successful journalled cells are restored instead of recomputed.
    ``store`` names a content-addressed result store
    (:mod:`~repro.harness.store`): hits skip execution, fresh results
    are recorded for future sweeps.
    """
    from . import service
    from .bus import DEAD, DONE, BusPolicy, MemoryBus, SqliteBus

    cells = list(cells)
    if cell_timeout is None:
        cell_timeout = _env_float(CELL_TIMEOUT_ENV, 0.0)
    if retries is None:
        retries = _env_int(RETRIES_ENV, 0)
    retries = max(0, retries)
    jnl = SweepJournal(journal) if journal is not None else None
    if jnl is not None:
        jnl.write_header(len(cells))
    start = time.perf_counter()
    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    done = 0
    jobs = max(1, jobs)
    if jnl is not None and resume:
        records = jnl.load()
        for index, cell in enumerate(cells):
            record = records.get(SweepJournal.key(cell))
            if record is None:
                continue
            restored = jnl.restore(cell, record)
            if restored is None:
                continue
            outcomes[index] = restored
            done += 1
            if progress:
                _report_progress(restored, done, total)
    pending = [i for i in range(total) if outcomes[i] is None]
    policy = BusPolicy(retries=retries, backoff_s=backoff_s)
    options = service.WorkerOptions(
        lease_s=lease_s, heartbeat_s=heartbeat_s,
        cell_timeout=cell_timeout,
    )
    task_index: Dict[str, int] = {}
    handled: set = set()

    def handle_terminal(record: Optional[Dict[str, object]]) -> None:
        """Journal + report one task that reached done/dead (once)."""
        nonlocal done
        if record is None or record["task_id"] in handled:
            return
        handled.add(record["task_id"])
        index = task_index[record["task_id"]]
        outcome = service.outcome_from_record(cells[index], record)
        outcomes[index] = outcome
        if jnl is not None:
            jnl.append(outcome)
        done += 1
        if progress:
            _report_progress(outcome, done, total)

    def enqueue(bus: object) -> None:
        for index in pending:
            task_id = service.task_id_for(index, cells[index])
            task_index[task_id] = index
            bus.put(task_id, service.cell_payload(cells[index]))

    def drain_terminal(bus: object) -> None:
        for record in bus.records([DONE, DEAD]):
            handle_terminal(record)

    if pending and (jobs <= 1 or len(pending) == 1):
        memory_bus = MemoryBus(policy=policy)
        enqueue(memory_bus)
        service.worker_loop(
            memory_bus, store=store, options=options,
            on_terminal=handle_terminal,
        )
        drain_terminal(memory_bus)
    elif pending:
        if warm:
            warm_design_cache([cells[i] for i in pending])
        store_root = getattr(store, "root", None)
        with tempfile.TemporaryDirectory(prefix="repro-sweep-bus-") as tmp:
            bus = SqliteBus(os.path.join(tmp, "bus.sqlite"), policy=policy)
            enqueue(bus)
            procs: List[object] = []
            try:
                procs = service.spawn_fleet(
                    bus.path, min(jobs, len(pending)), policy, options,
                    store_root=(
                        str(store_root) if store_root is not None else None
                    ),
                )
            except (OSError, ValueError) as exc:
                if progress:
                    print(
                        f"[sweep] worker fleet unavailable ({exc!r}); "
                        "finishing serially",
                        flush=True,
                    )
            try:
                while procs:
                    # The parent is the lease reaper: a SIGKILLed
                    # worker's cells come back here and a surviving
                    # worker re-leases them.
                    bus.expire()
                    drain_terminal(bus)
                    if bus.all_terminal():
                        break
                    if not any(p.is_alive() for p in procs):
                        break  # whole fleet died: fall back below
                    time.sleep(0.05)
                for proc in procs:
                    proc.join(timeout=5.0)
                if not bus.all_terminal():
                    # Serial fallback: every worker is gone, so their
                    # leases can be force-expired safely and the rest
                    # of the sweep drained in this process.
                    if progress and procs:
                        print(
                            "[sweep] worker fleet exited early; "
                            "finishing serially",
                            flush=True,
                        )
                    bus.expire(float("inf"))
                    service.worker_loop(
                        bus, store=store, options=options,
                        on_terminal=handle_terminal,
                    )
                drain_terminal(bus)
            finally:
                for proc in procs:
                    if proc.is_alive():
                        proc.terminate()
    return SweepReport(
        outcomes=outcomes,
        wall_s=time.perf_counter() - start,
        jobs=jobs,
    )


def sweep(
    schemes: Sequence[str],
    benchmarks: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    jobs: int = 1,
    progress: bool = False,
    reseed_cells: bool = False,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    journal: Optional[object] = None,
    resume: bool = False,
    store: Optional[object] = None,
) -> SweepReport:
    """Grid convenience wrapper: :func:`expand_grid` + :func:`run_sweep`."""
    cells = expand_grid(schemes, benchmarks, config, reseed_cells)
    return run_sweep(
        cells,
        jobs=jobs,
        progress=progress,
        cell_timeout=cell_timeout,
        retries=retries,
        journal=journal,
        resume=resume,
        store=store,
    )
