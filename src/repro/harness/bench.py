"""Performance scenarios and the ``BENCH.json`` regression gate.

Three scenarios bracket the simulator's tick hot path:

* ``synthetic`` — uniform random traffic on a bare 8x8 network at a
  moderate rate, dominated by ``Network.tick`` / ``Router.tick``;
* ``low_load`` — uniform traffic on a 16x16 network at a 0.2% injection
  rate, the mostly-idle regime the active-set scheduler exists for;
* ``system`` — one full (scheme, benchmark) cell through the GPU model,
  the shape every harness sweep repeats hundreds of times.

Each scenario reports wall-clock throughput (cycles/s, best of
``repeat`` runs) *and* a behaviour checksum over the simulated
statistics.  ``compare_bench`` turns a current/baseline pair into a
list of violations: a checksum change is always fatal (simulated
behaviour drifted), a throughput drop is fatal past the tolerance.
``repro bench`` wires this into CI as the bench-gate job against the
committed ``BENCH_BASELINE.json``.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .. import __version__
from ..core.grid import Grid
from ..workloads.synthetic import run_uniform

BENCH_SCHEMA = 1
DEFAULT_TOLERANCE = 0.25

_CALIBRATION_LOOPS = 2_000_000


def calibrate(repeat: int = 3) -> float:
    """Wall-clock seconds for a fixed pure-Python loop (best of N).

    A machine-speed yardstick recorded alongside the scenario timings:
    the gate scales the baseline's cycles/s by the calibration ratio,
    so a run on a slower (or busier) machine is compared against what
    the baseline machine would have scored at that speed, not against
    its absolute numbers.
    """
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_LOOPS):
            acc += i
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _time_best(repeat: int, fn: Callable[[], object]):
    """Best-of-N wall-clock timing; returns (seconds, last result)."""
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _network_checksum(result) -> str:
    return hashlib.sha256(
        json.dumps(result.network.stats.snapshot(), sort_keys=True).encode()
    ).hexdigest()[:10]


def _scenario_synthetic(repeat: int, scheduler: str) -> Dict[str, object]:
    """Uniform random traffic: the bare network tick loop."""
    best, result = _time_best(repeat, lambda: run_uniform(
        Grid(8), injection_rate=0.08, cycles=4000, seed=1,
        scheduler=scheduler,
    ))
    return {
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": _network_checksum(result),
        "received": result.received,
    }


def _scenario_low_load(repeat: int, scheduler: str) -> Dict[str, object]:
    """Sparse traffic on a big mesh: mostly-idle routers and NIs."""
    best, result = _time_best(repeat, lambda: run_uniform(
        Grid(16), injection_rate=0.002, cycles=3000, seed=1,
        scheduler=scheduler,
    ))
    return {
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": _network_checksum(result),
        "received": result.received,
    }


def _scenario_system(repeat: int, scheduler: str) -> Dict[str, object]:
    """One full-system experiment cell (SeparateBase x kmeans)."""
    from .experiment import ExperimentConfig, run_experiment

    config = ExperimentConfig(quota=40, mcts_iterations=40,
                              scheduler=scheduler)
    best, result = _time_best(
        repeat, lambda: run_experiment("SeparateBase", "kmeans", config)
    )
    return {
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": f"{result.cycles}/{result.instructions}/"
                    f"{result.stats_fingerprint[:10]}",
        "received": result.instructions,
    }


SCENARIOS: Dict[str, Callable[[int, str], Dict[str, object]]] = {
    "synthetic": _scenario_synthetic,
    "low_load": _scenario_low_load,
    "system": _scenario_system,
}


def run_scenario(
    name: str, repeat: int = 3, scheduler: str = "active"
) -> Dict[str, object]:
    """Run one named scenario under one scheduler."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown bench scenario {name!r}; "
            f"known: {sorted(SCENARIOS)}"
        ) from None
    return fn(repeat, scheduler)


def run_bench(
    scenarios: Optional[Iterable[str]] = None,
    repeat: int = 3,
    scheduler: str = "active",
) -> Dict[str, object]:
    """Run the scenario suite; returns the BENCH.json payload."""
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    return {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "scheduler": scheduler,
        "repeat": repeat,
        "calibration_s": calibrate(),
        "scenarios": {
            name: run_scenario(name, repeat, scheduler) for name in names
        },
    }


def write_bench(path, data: Dict[str, object]) -> Path:
    """Write a BENCH payload as stable, human-diffable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, sort_keys=True, indent=2) + "\n")
    return path


def load_bench(path) -> Dict[str, object]:
    return json.loads(Path(path).read_text())


def compare_bench(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Gate a current run against a baseline; returns violations.

    * Any checksum change is a violation — simulated behaviour drifted,
      no tolerance applies.
    * A cycles/s figure below ``expected * (1 - tolerance)`` is a
      violation, where ``expected`` is the baseline figure scaled by
      the machines' calibration ratio (when both records carry
      ``calibration_s``) — so a slower or busier machine is held to
      what the baseline box would have scored at that speed, not to
      its absolute numbers.
    * A scenario present in the baseline but missing from the current
      run is a violation (silent coverage loss).

    Speedups and new scenarios never fail the gate.
    """
    violations: List[str] = []
    scale = 1.0
    base_cal = baseline.get("calibration_s")
    cur_cal = current.get("calibration_s")
    if base_cal and cur_cal:
        scale = base_cal / cur_cal
    base_rows = baseline.get("scenarios", {})
    cur_rows = current.get("scenarios", {})
    for name in sorted(base_rows):
        base = base_rows[name]
        cur = cur_rows.get(name)
        if cur is None:
            violations.append(f"{name}: missing from current run")
            continue
        if cur["checksum"] != base["checksum"]:
            violations.append(
                f"{name}: checksum changed "
                f"{base['checksum']} -> {cur['checksum']} "
                f"(simulated behaviour drifted)"
            )
        expected = base["cycles_per_s"] * scale
        floor = expected * (1.0 - tolerance)
        if cur["cycles_per_s"] < floor:
            ratio = cur["cycles_per_s"] / expected
            violations.append(
                f"{name}: {cur['cycles_per_s']:.0f} cycles/s is "
                f"{ratio:.2f}x the speed-adjusted baseline "
                f"{expected:.0f} (floor {floor:.0f}, tolerance "
                f"{tolerance:.0%}, machine-speed scale {scale:.2f})"
            )
    return violations


def format_bench(
    data: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
) -> str:
    """Plain-text table of a BENCH payload (optionally vs a baseline)."""
    lines = [
        f"bench — scheduler {data.get('scheduler')}, "
        f"repeat {data.get('repeat')}, version {data.get('version')}"
    ]
    base_rows = (baseline or {}).get("scenarios", {})
    for name, row in sorted(data.get("scenarios", {}).items()):
        line = (
            f"{name:<10} {row['cycles']:>8} cycles  "
            f"{row['seconds']:.3f} s  "
            f"{row['cycles_per_s']:>10.0f} cycles/s  "
            f"checksum {row['checksum']}"
        )
        base = base_rows.get(name)
        if base:
            ratio = row["cycles_per_s"] / base["cycles_per_s"]
            line += f"  ({ratio:.2f}x baseline)"
        lines.append(line)
    return "\n".join(lines)


def checksum_divergence(
    rows: Dict[str, Dict[str, object]]
) -> Optional[Tuple[str, str]]:
    """Checksum pair if two scheduler runs of one scenario diverge."""
    if len(rows) != 2:
        return None
    a, b = rows.values()
    if a["checksum"] != b["checksum"]:
        return a["checksum"], b["checksum"]
    return None
