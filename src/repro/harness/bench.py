"""Performance scenarios and the ``BENCH.json`` regression gate.

Scenarios bracket the simulator's tick hot path:

* ``synthetic`` — uniform random traffic on a saturated 24x24 network,
  dominated by the allocation/traversal loop.  This is the scenario the
  vector engine is gated on: ``synthetic_vector`` runs the identical
  configuration under ``--engine vector`` and must reproduce the object
  engine's checksum bit-for-bit while clearing a minimum speedup;
* ``low_load`` — uniform traffic on a 16x16 network at a 0.2% injection
  rate, the mostly-idle regime the active-set scheduler exists for
  (also paired with ``low_load_vector``);
* ``system`` — one full (scheme, benchmark) cell through the GPU model,
  the shape every harness sweep repeats hundreds of times;
* ``ring_router`` / ``routerless`` — full-system cells on the loop
  topologies, so checksum or cycles/s regressions in the independent
  baseline schemes fail the gate like the mesh ones (object engine
  only — the loop schemes have no vector twin by design).

Each scenario reports wall-clock throughput (cycles/s, best of
``repeat`` runs) *and* a behaviour checksum over the simulated
statistics.  ``compare_bench`` turns a current/baseline pair into a
list of violations: a checksum change is always fatal (simulated
behaviour drifted), a throughput drop is fatal past the tolerance, an
object<->vector checksum divergence between paired scenarios is fatal
(the engine-parity contract broke), and a vector speedup below
``MIN_ENGINE_SPEEDUP`` on ``synthetic`` is fatal (the vector engine
stopped paying for itself).  ``repro bench`` wires this into CI as the
bench-gate job against the committed ``BENCH_BASELINE.json``.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .. import __version__
from ..core.grid import Grid
from ..workloads.synthetic import run_uniform

BENCH_SCHEMA = 3
DEFAULT_TOLERANCE = 0.25

# The vector engine must beat the object engine by at least this factor
# on the saturated ``synthetic`` scenario (wall-clock cycles/s measured
# on the same machine in the same run, so no calibration applies).
MIN_ENGINE_SPEEDUP = 3.0

# (vector scenario, object scenario) pairs whose behaviour checksums
# must agree: both engines simulate the identical configuration.
ENGINE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("synthetic_vector", "synthetic"),
    ("low_load_vector", "low_load"),
)

_CALIBRATION_LOOPS = 2_000_000


def calibrate(repeat: int = 3) -> float:
    """Wall-clock seconds for a fixed pure-Python loop (best of N).

    A machine-speed yardstick recorded alongside the scenario timings:
    the gate scales the baseline's cycles/s by the calibration ratio,
    so a run on a slower (or busier) machine is compared against what
    the baseline machine would have scored at that speed, not against
    its absolute numbers.
    """
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_LOOPS):
            acc += i
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _time_best(repeat: int, fn: Callable[[], object]):
    """Best-of-N wall-clock timing; returns (seconds, last result)."""
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _network_checksum(result) -> str:
    return hashlib.sha256(
        json.dumps(result.network.stats.snapshot(), sort_keys=True).encode()
    ).hexdigest()[:10]


def _uniform_row(
    repeat: int,
    scheduler: str,
    engine: str,
    width: int,
    rate: float,
    cycles: int,
) -> Dict[str, object]:
    best, result = _time_best(repeat, lambda: run_uniform(
        Grid(width), injection_rate=rate, cycles=cycles, seed=1,
        scheduler=scheduler, engine=engine,
    ))
    return {
        "engine": engine,
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": _network_checksum(result),
        "received": result.received,
    }


def _scenario_synthetic(
    repeat: int, scheduler: str, engine: str = "object"
) -> Dict[str, object]:
    """Saturated uniform traffic: the allocation/traversal hot loop."""
    return _uniform_row(repeat, scheduler, engine,
                        width=24, rate=0.08, cycles=500)


def _scenario_synthetic_vector(
    repeat: int, scheduler: str, engine: str = "vector"
) -> Dict[str, object]:
    """``synthetic`` under the struct-of-arrays engine."""
    return _scenario_synthetic(repeat, scheduler, engine)


def _scenario_low_load(
    repeat: int, scheduler: str, engine: str = "object"
) -> Dict[str, object]:
    """Sparse traffic on a big mesh: mostly-idle routers and NIs."""
    return _uniform_row(repeat, scheduler, engine,
                        width=16, rate=0.002, cycles=3000)


def _scenario_low_load_vector(
    repeat: int, scheduler: str, engine: str = "vector"
) -> Dict[str, object]:
    """``low_load`` under the struct-of-arrays engine."""
    return _scenario_low_load(repeat, scheduler, engine)


def _system_row(
    repeat: int,
    scheduler: str,
    engine: str,
    scheme: str,
    benchmark: str,
    **config_kwargs,
) -> Dict[str, object]:
    """One full (scheme, benchmark) cell through the GPU model."""
    from .experiment import ExperimentConfig, run_experiment

    config = ExperimentConfig(scheduler=scheduler, engine=engine,
                              **config_kwargs)
    best, result = _time_best(
        repeat, lambda: run_experiment(scheme, benchmark, config)
    )
    return {
        "engine": engine,
        "cycles": result.cycles,
        "seconds": best,
        "cycles_per_s": result.cycles / best,
        "checksum": f"{result.cycles}/{result.instructions}/"
                    f"{result.stats_fingerprint[:10]}",
        "received": result.instructions,
    }


def _scenario_system(
    repeat: int, scheduler: str, engine: str = "object"
) -> Dict[str, object]:
    """One full-system experiment cell (SeparateBase x kmeans)."""
    return _system_row(repeat, scheduler, engine, "SeparateBase",
                       "kmeans", quota=40, mcts_iterations=40)


def _scenario_ring_router(
    repeat: int, scheduler: str, engine: str = "object"
) -> Dict[str, object]:
    """Full-system cell on the counter-rotating-ring baseline.

    A smaller mesh than ``system``: the serpentine ring's average hop
    count grows with the square of the width, so a 6x6 cell already
    exercises the loop hot path at comparable wall-clock cost.  The
    engine is pinned to object — loop topologies have no vector twin,
    so a forced ``--engine vector`` run keeps these cells meaningful
    instead of crashing.
    """
    return _system_row(repeat, scheduler, "object", "ring_router",
                       "kmeans", width=6, num_cbs=5, quota=24)


def _scenario_routerless(
    repeat: int, scheduler: str, engine: str = "object"
) -> Dict[str, object]:
    """Full-system cell on the routerless loop baseline (object-only)."""
    return _system_row(repeat, scheduler, "object", "routerless",
                       "kmeans", width=6, num_cbs=5, quota=24)


SCENARIOS: Dict[str, Callable[..., Dict[str, object]]] = {
    "synthetic": _scenario_synthetic,
    "synthetic_vector": _scenario_synthetic_vector,
    "low_load": _scenario_low_load,
    "low_load_vector": _scenario_low_load_vector,
    "system": _scenario_system,
    "ring_router": _scenario_ring_router,
    "routerless": _scenario_routerless,
}


def run_scenario(
    name: str,
    repeat: int = 3,
    scheduler: str = "active",
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Run one named scenario under one scheduler (and engine)."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown bench scenario {name!r}; "
            f"known: {sorted(SCENARIOS)}"
        ) from None
    if engine is not None:
        return fn(repeat, scheduler, engine)
    return fn(repeat, scheduler)


def run_bench(
    scenarios: Optional[Iterable[str]] = None,
    repeat: int = 3,
    scheduler: str = "active",
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Run the scenario suite; returns the BENCH.json payload.

    ``engine`` of ``None`` keeps each scenario's own engine (the
    ``*_vector`` twins run vectorised, everything else object) — the
    shape the gate's cross-engine checks expect.  Forcing one engine
    for every scenario is a measurement convenience; gating a forced
    run would trip the vector-speedup floor at 1.0x.
    """
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    return {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "scheduler": scheduler,
        "engine": engine or "",
        "repeat": repeat,
        "calibration_s": calibrate(),
        "scenarios": {
            name: run_scenario(name, repeat, scheduler, engine)
            for name in names
        },
    }


def write_bench(path, data: Dict[str, object]) -> Path:
    """Write a BENCH payload as stable, human-diffable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, sort_keys=True, indent=2) + "\n")
    return path


def load_bench(path) -> Dict[str, object]:
    return json.loads(Path(path).read_text())


def engine_violations(
    rows: Dict[str, Dict[str, object]],
    min_speedup: float = MIN_ENGINE_SPEEDUP,
) -> List[str]:
    """Cross-engine checks within one bench run.

    * Paired scenarios (``ENGINE_PAIRS``) simulate the identical
      configuration under both tick engines, so a checksum mismatch
      means the engine-parity contract broke — always fatal.
    * On ``synthetic`` the vector engine must clear ``min_speedup``
      over the object engine.  Both figures come from the same run on
      the same machine, so the ratio needs no calibration scaling.
    """
    violations: List[str] = []
    for vec_name, obj_name in ENGINE_PAIRS:
        vec = rows.get(vec_name)
        obj = rows.get(obj_name)
        if vec is None or obj is None:
            continue
        if vec["checksum"] != obj["checksum"]:
            violations.append(
                f"{obj_name}: object/vector checksum divergence "
                f"{obj['checksum']} != {vec['checksum']} "
                f"(engine-parity contract broke)"
            )
    vec = rows.get("synthetic_vector")
    obj = rows.get("synthetic")
    if vec is not None and obj is not None and obj["cycles_per_s"]:
        speedup = vec["cycles_per_s"] / obj["cycles_per_s"]
        if speedup < min_speedup:
            violations.append(
                f"synthetic: vector engine speedup {speedup:.2f}x is "
                f"below the {min_speedup:.1f}x floor "
                f"({vec['cycles_per_s']:.0f} vs "
                f"{obj['cycles_per_s']:.0f} cycles/s)"
            )
    return violations


def compare_bench(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Gate a current run against a baseline; returns violations.

    * A baseline without a usable ``scenarios`` mapping, or whose
      ``schema`` does not match :data:`BENCH_SCHEMA`, is itself a
      violation — an empty or stale baseline must never let the gate
      pass vacuously.
    * Any checksum change is a violation — simulated behaviour drifted,
      no tolerance applies.
    * A cycles/s figure below ``expected * (1 - tolerance)`` is a
      violation, where ``expected`` is the baseline figure scaled by
      the machines' calibration ratio (when both records carry a
      nonzero ``calibration_s``) — so a slower or busier machine is
      held to what the baseline box would have scored at that speed,
      not to its absolute numbers.  When either record lacks the
      calibration figure the comparison runs *uncalibrated* and each
      throughput violation says so explicitly.
    * A scenario present in the baseline but missing from the current
      run is a violation (silent coverage loss).
    * Cross-engine checks (:func:`engine_violations`) run on the
      current rows: object/vector checksum divergence and a vector
      speedup below the floor are violations.

    Speedups and new scenarios never fail the gate.
    """
    violations: List[str] = []
    base_schema = baseline.get("schema")
    if base_schema != BENCH_SCHEMA:
        violations.append(
            f"baseline: schema {base_schema!r} does not match the "
            f"gate's schema {BENCH_SCHEMA} (refresh BENCH_BASELINE)"
        )
    base_rows = baseline.get("scenarios")
    if not isinstance(base_rows, dict) or not base_rows:
        violations.append(
            "baseline: no scenarios to compare against (empty or "
            "malformed baseline — the gate cannot pass vacuously)"
        )
        base_rows = {}
    scale = 1.0
    base_cal = baseline.get("calibration_s")
    cur_cal = current.get("calibration_s")
    calibrated = bool(base_cal) and bool(cur_cal)
    if calibrated:
        scale = base_cal / cur_cal
    cur_rows = current.get("scenarios", {})
    for name in sorted(base_rows):
        base = base_rows[name]
        cur = cur_rows.get(name)
        if cur is None:
            violations.append(f"{name}: missing from current run")
            continue
        if cur["checksum"] != base["checksum"]:
            violations.append(
                f"{name}: checksum changed "
                f"{base['checksum']} -> {cur['checksum']} "
                f"(simulated behaviour drifted)"
            )
        expected = base["cycles_per_s"] * scale
        floor = expected * (1.0 - tolerance)
        if cur["cycles_per_s"] < floor:
            ratio = cur["cycles_per_s"] / expected
            if calibrated:
                detail = (
                    f"the speed-adjusted baseline {expected:.0f} "
                    f"(floor {floor:.0f}, tolerance {tolerance:.0%}, "
                    f"machine-speed scale {scale:.2f})"
                )
            else:
                detail = (
                    f"the baseline {expected:.0f} compared "
                    f"UNCALIBRATED — calibration_s missing from "
                    f"{'baseline' if not base_cal else 'current'} "
                    f"record (floor {floor:.0f}, tolerance "
                    f"{tolerance:.0%})"
                )
            violations.append(
                f"{name}: {cur['cycles_per_s']:.0f} cycles/s is "
                f"{ratio:.2f}x {detail}"
            )
    violations.extend(engine_violations(cur_rows))
    return violations


def format_bench(
    data: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
) -> str:
    """Plain-text table of a BENCH payload (optionally vs a baseline)."""
    lines = [
        f"bench — scheduler {data.get('scheduler')}, "
        f"repeat {data.get('repeat')}, version {data.get('version')}"
    ]
    base_rows = (baseline or {}).get("scenarios", {})
    rows = data.get("scenarios", {})
    for name, row in sorted(rows.items()):
        line = (
            f"{name:<18} {row['cycles']:>8} cycles  "
            f"{row['seconds']:.3f} s  "
            f"{row['cycles_per_s']:>10.0f} cycles/s  "
            f"checksum {row['checksum']}"
        )
        base = base_rows.get(name)
        if base:
            ratio = row["cycles_per_s"] / base["cycles_per_s"]
            line += f"  ({ratio:.2f}x baseline)"
        lines.append(line)
    vec = rows.get("synthetic_vector")
    obj = rows.get("synthetic")
    if vec and obj and obj["cycles_per_s"]:
        lines.append(
            f"vector/object speedup on synthetic: "
            f"{vec['cycles_per_s'] / obj['cycles_per_s']:.2f}x "
            f"(floor {MIN_ENGINE_SPEEDUP:.1f}x)"
        )
    return "\n".join(lines)


def checksum_divergence(
    rows: Dict[str, Dict[str, object]]
) -> Optional[Tuple[str, str]]:
    """Checksum pair if two scheduler runs of one scenario diverge."""
    if len(rows) != 2:
        return None
    a, b = rows.values()
    if a["checksum"] != b["checksum"]:
        return a["checksum"], b["checksum"]
    return None
