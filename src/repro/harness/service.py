"""The leased work-queue sweep service (``repro sweepd``).

Ties the pieces together: sweep cells become bus tasks
(:mod:`~repro.harness.bus`), workers move them through
lease -> execute -> ack with heartbeats, completed results land on the
bus and (optionally) in the content-addressed store
(:mod:`~repro.harness.store`), and failures follow the deterministic
retry discipline of the in-process runner:

* attempt 0 runs the cell's own seed; cell-failure attempt ``n`` runs
  :func:`~repro.harness.runner.retry_seed`'s seed for ``n`` — exactly
  the sequence the serial runner would use, so any fleet under any
  kill schedule converges on the byte-identical ``stats_fingerprint``;
* a lease that expires (worker SIGKILLed, OOMed, unplugged) re-delivers
  the *same* attempt: crashes never consume the retry budget and never
  reseed;
* a cell that fails ``retries + 1`` times is dead-lettered with its
  traceback and stall dump attached, isolated from the sweep instead
  of poisoning it (``repro sweepd requeue`` replays it later).

The module is deliberately process-agnostic: :func:`worker_loop` runs
the same code inline (serial sweeps), in forked fleet processes
(``run_sweep(jobs=N)``), or in a standalone ``repro sweepd worker``
against a shared SQLite bus on another terminal or host.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import store as store_mod
from .bus import DONE, BusPolicy, Lease, SqliteBus
from .experiment import (
    ExperimentConfig,
    config_digest,
    config_from_dict,
    config_to_dict,
)
from .metrics import ExperimentResult, result_from_dict, result_to_dict

PAYLOAD_SCHEMA = 1
MANIFEST_KEY = "manifest"
POLICY_KEY = "policy"

# Test-only chaos hook: a worker SIGKILLs itself right after taking
# its N-th lease — mid-cell from the bus's point of view — so crash
# recovery can be exercised deterministically (see docs/DISTRIBUTED.md).
CHAOS_KILL_ENV = "REPRO_SWEEPD_CHAOS_KILL"

DEFAULT_LEASE_S = 60.0
DEFAULT_HEARTBEAT_S = 5.0


# ----------------------------------------------------------------------
# Cells <-> bus payloads
# ----------------------------------------------------------------------
def cell_payload(cell) -> Dict[str, object]:
    """The plain-JSON bus payload for one sweep cell."""
    return {
        "schema": PAYLOAD_SCHEMA,
        "scheme": cell.scheme,
        "benchmark": cell.benchmark,
        "config": config_to_dict(cell.config),
    }


def cell_from_payload(payload: Dict[str, object]):
    """Rebuild a :class:`~repro.harness.runner.SweepCell` (strict)."""
    from .runner import SweepCell

    if not isinstance(payload, dict):
        raise ValueError(f"payload must be an object, got {payload!r}")
    if payload.get("schema") != PAYLOAD_SCHEMA:
        raise ValueError(
            f"unsupported payload schema {payload.get('schema')!r}"
        )
    for field in ("scheme", "benchmark"):
        if not isinstance(payload.get(field), str):
            raise ValueError(f"payload is missing {field!r}")
    return SweepCell(
        scheme=payload["scheme"],
        benchmark=payload["benchmark"],
        config=config_from_dict(payload.get("config", {})),
    )


def task_id_for(index: int, cell) -> str:
    """A stable, human-greppable task id, unique within one sweep."""
    return (
        f"{index:05d}-{cell.scheme}-{cell.benchmark}-"
        f"{config_digest(cell.config)[:8]}"
    )


def submit(bus, cells: Sequence) -> List[str]:
    """Enqueue a grid of cells; returns their task ids in grid order.

    Also records a manifest (task order + digests) in the bus metadata
    so ``status`` and collection can reason about the whole sweep
    without re-deriving the grid.
    """
    from dataclasses import asdict

    task_ids = []
    for index, cell in enumerate(cells):
        task_id = task_id_for(index, cell)
        bus.put(task_id, cell_payload(cell))
        task_ids.append(task_id)
    from .. import __version__

    bus.set_meta(MANIFEST_KEY, {
        "schema": PAYLOAD_SCHEMA,
        "version": __version__,
        "cells": len(task_ids),
        "order": task_ids,
    })
    # Persist the retry policy next to the work, so every worker that
    # opens this bus later (another terminal, another host) applies
    # the same dead-letter discipline as the submitter.
    bus.set_meta(POLICY_KEY, asdict(bus.policy))
    return task_ids


def open_submitted_bus(path: object) -> SqliteBus:
    """Open a bus, adopting the policy recorded at submit time."""
    bus = SqliteBus(path)
    meta = bus.get_meta(POLICY_KEY)
    if meta is not None:
        bus.policy = BusPolicy(**meta)
    return bus


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerOptions:
    """Knobs one worker runs under (all serializable for subprocesses)."""

    lease_s: float = DEFAULT_LEASE_S
    heartbeat_s: float = DEFAULT_HEARTBEAT_S
    # Per-attempt wall-clock limit, 0 = unbounded (worker-side SIGALRM,
    # same as the in-process runner).
    cell_timeout: float = 0.0
    # Idle poll period while other workers still hold leases.
    poll_s: float = 0.05
    # Stop once the queue is fully terminal (True) or as soon as no
    # lease is immediately available (False — "one pass" mode).
    drain: bool = True
    # Stop after this many executed cells (0 = unlimited).
    max_cells: int = 0
    # Test-only: SIGKILL self right after taking the N-th lease.
    chaos_kill_after: int = 0


@dataclass
class WorkerStats:
    """What one worker-loop invocation did."""

    executed: int = 0
    acked: int = 0
    failed: int = 0
    dead: int = 0
    store_hits: int = 0
    stale: int = 0


class _Heartbeat:
    """Renews a lease from a side thread while the cell executes."""

    def __init__(self, bus, token: str, lease_s: float, period_s: float):
        self._bus = bus
        self._token = token
        self._lease_s = lease_s
        self._period_s = max(period_s, 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._period_s):
            if not self._bus.heartbeat(self._token, self._lease_s):
                return  # lease lost (expired + re-leased): stop renewing

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def attempt_config(cell, failures: int) -> ExperimentConfig:
    """The config for attempt ``failures`` (0-based): retries reseed."""
    from .runner import retry_seed

    if failures <= 0:
        return cell.config
    return replace(
        cell.config, seed=retry_seed(cell.config.seed, failures)
    )


def execute_lease(
    lease: Lease, cell_timeout: float = 0.0
) -> Tuple[Optional[ExperimentResult], Dict[str, object], object, int]:
    """Run one delivery; returns (result, failure-info, cell, seed).

    ``result`` is ``None`` on failure, with the failure described in
    the info dict (traceback, exception type, stall dump, timeout
    flag).  KeyboardInterrupt/SystemExit propagate: a user abort must
    kill the worker, not be recorded as a cell failure.
    """
    from . import runner

    cell = cell_from_payload(lease.payload)
    config = attempt_config(cell, lease.failures)
    info: Dict[str, object] = {}
    try:
        with runner._wall_clock_limit(cell_timeout):
            result = runner.run_experiment(
                cell.scheme, cell.benchmark, config
            )
        return result, info, cell, config.seed
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        dump = getattr(exc, "dump", None)
        info = {
            "error": traceback.format_exc(),
            "error_type": type(exc).__name__,
            "stall_dump": dump if isinstance(dump, str) and dump else None,
            "timed_out": isinstance(exc, runner.CellTimeout),
        }
        return None, info, cell, config.seed


def _maybe_chaos_kill(leases_taken: int, options: WorkerOptions) -> None:
    kill_after = options.chaos_kill_after
    if not kill_after:
        raw = os.environ.get(CHAOS_KILL_ENV, "").strip()
        if raw:
            try:
                kill_after = int(raw)
            except ValueError:
                raise ValueError(
                    f"{CHAOS_KILL_ENV} must be an integer, got {raw!r}"
                ) from None
    if kill_after and leases_taken >= kill_after:
        os.kill(os.getpid(), signal.SIGKILL)  # test-only crash injection


def worker_loop(
    bus,
    store=None,
    worker_id: Optional[str] = None,
    options: Optional[WorkerOptions] = None,
    on_terminal: Optional[Callable[[Dict[str, object]], None]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerStats:
    """Lease -> execute -> ack until the queue drains (or one pass).

    ``on_terminal`` fires with the full bus record after each task
    *this worker* drove to a terminal state (done or dead) — the
    serial sweep uses it for journalling and progress.  ``store``
    short-circuits execution on a content-address hit and records
    fresh results for future sweeps.
    """
    options = options or WorkerOptions()
    worker_id = worker_id or f"worker-{os.getpid()}"
    stats = WorkerStats()
    leases_taken = 0
    while True:
        lease = bus.lease(worker_id, options.lease_s, os.getpid())
        if lease is None:
            if not options.drain or bus.all_terminal():
                break
            # Backoff/not-before waits and other workers' leases: poll.
            time.sleep(options.poll_s)
            continue
        leases_taken += 1
        _maybe_chaos_kill(leases_taken, options)
        cell = cell_from_payload(lease.payload)
        start = time.perf_counter()
        if store is not None:
            key = store_mod.result_key(cell.scheme, cell.benchmark,
                                       cell.config)
            hit = store.get(key)
            if hit is not None:
                stats.store_hits += 1
                if bus.ack(
                    lease.token,
                    hit["result"],
                    seed_used=hit.get("seed_used"),
                    duration_s=time.perf_counter() - start,
                ):
                    stats.acked += 1
                    if on_terminal is not None:
                        on_terminal(bus.record(lease.task_id))
                else:
                    stats.stale += 1
                continue
        with _Heartbeat(bus, lease.token, options.lease_s,
                        options.heartbeat_s):
            result, info, cell, seed = execute_lease(
                lease, options.cell_timeout
            )
        duration = time.perf_counter() - start
        stats.executed += 1
        if result is not None:
            if bus.ack(
                lease.token,
                result_to_dict(result),
                seed_used=seed,
                duration_s=duration,
            ):
                stats.acked += 1
                if store is not None:
                    store.put(store_mod.make_record(
                        cell.scheme, cell.benchmark, cell.config, result,
                        seed_used=seed,
                        attempts=lease.failures + 1,
                        duration_s=duration,
                    ))
                if on_terminal is not None:
                    on_terminal(bus.record(lease.task_id))
            else:
                stats.stale += 1
        else:
            verdict = bus.nack(
                lease.token,
                error=info["error"],
                error_type=info["error_type"],
                stall_dump=info["stall_dump"],
                timed_out=info["timed_out"],
                seed_used=seed,
                duration_s=duration,
            )
            if verdict == "stale":
                stats.stale += 1
            else:
                stats.failed += 1
                if verdict == "dead":
                    stats.dead += 1
                    if on_terminal is not None:
                        on_terminal(bus.record(lease.task_id))
        if log is not None:
            state = "ok" if result is not None else "failed"
            log(f"[{worker_id}] {cell.label}: {state} ({duration:.1f}s)")
        if options.max_cells and stats.executed >= options.max_cells:
            break
    return stats


# ----------------------------------------------------------------------
# Fleet: worker subprocesses over a SQLite bus
# ----------------------------------------------------------------------
def _worker_process_entry(
    bus_path: str,
    policy_kwargs: Dict[str, object],
    store_root: Optional[str],
    worker_id: str,
    options_kwargs: Dict[str, object],
) -> None:
    """Module-level (hence picklable) fleet worker entry point."""
    bus = SqliteBus(bus_path, policy=BusPolicy(**policy_kwargs))
    store = (
        store_mod.DirectoryResultStore(store_root)
        if store_root is not None else None
    )
    worker_loop(
        bus, store=store, worker_id=worker_id,
        options=WorkerOptions(**options_kwargs),
    )


def spawn_fleet(
    bus_path: str,
    workers: int,
    policy: BusPolicy,
    options: WorkerOptions,
    store_root: Optional[str] = None,
) -> List[multiprocessing.Process]:
    """Start ``workers`` independent worker processes over one bus.

    Plain ``multiprocessing.Process`` (not a pool) on purpose: one
    SIGKILLed worker must not take the others down, and its leases
    must simply expire for the survivors to pick up.
    """
    from dataclasses import asdict

    procs = []
    for index in range(workers):
        proc = multiprocessing.Process(
            target=_worker_process_entry,
            args=(
                bus_path,
                asdict(policy),
                store_root,
                f"fleet-{index}",
                asdict(options),
            ),
            daemon=True,
        )
        proc.start()
        procs.append(proc)
    return procs


# ----------------------------------------------------------------------
# Collection / status / requeue
# ----------------------------------------------------------------------
def outcome_from_record(cell, record: Dict[str, object]):
    """Rebuild a :class:`~repro.harness.runner.CellOutcome` from the bus.

    Floats survive the JSON round trip exactly, so an outcome
    collected off the bus is bit-identical to one computed in-process
    (the same contract the sweep journal relies on).
    """
    from .runner import CellOutcome

    ok = record["state"] == DONE
    result = None
    if ok:
        result = result_from_dict(record["result"])
    failures = int(record.get("failures", 0))
    return CellOutcome(
        cell=cell,
        result=result,
        error=None if ok else record.get("error"),
        duration_s=float(record.get("duration_s") or 0.0),
        pid=int(record.get("worker_pid") or 0),
        stall_dump=None if ok else record.get("stall_dump"),
        attempts=failures + 1 if ok else max(failures, 1),
        timed_out=bool(record.get("timed_out")) and not ok,
        error_type=None if ok else record.get("error_type"),
        seed_used=record.get("seed_used"),
    )


def status(bus) -> Dict[str, object]:
    """A JSON-friendly snapshot of one bus: counts + dead letters."""
    counts = bus.counts()
    manifest = bus.get_meta(MANIFEST_KEY) or {}
    dead = [
        {
            "task_id": record["task_id"],
            "scheme": record["payload"].get("scheme"),
            "benchmark": record["payload"].get("benchmark"),
            "failures": record["failures"],
            "deliveries": record["deliveries"],
            "reason": record["dead_reason"],
            "error_type": record["error_type"],
            "timed_out": record["timed_out"],
            "has_stall_dump": bool(record["stall_dump"]),
        }
        for record in bus.dead_letters()
    ]
    total = sum(counts.values())
    return {
        "cells": manifest.get("cells", total),
        "version": manifest.get("version"),
        "counts": counts,
        "complete": counts["pending"] == 0 and counts["leased"] == 0,
        "dead_letters": dead,
    }


def requeue_dead(bus, task_ids: Optional[Sequence[str]] = None) -> int:
    """Return dead letters to the queue with a fresh retry budget."""
    return bus.requeue(task_ids)


def fingerprints(bus) -> Dict[str, str]:
    """task_id -> stats_fingerprint for every completed task."""
    prints = {}
    for record in bus.records([DONE]):
        result = record.get("result") or {}
        prints[record["task_id"]] = result.get("stats_fingerprint", "")
    return prints


def dead_letter_dump(record: Dict[str, object]) -> str:
    """Human-readable rendering of one dead-letter record."""
    payload = record.get("payload") or {}
    lines = [
        f"task {record['task_id']}: "
        f"{payload.get('scheme')} x {payload.get('benchmark')} "
        f"({record.get('dead_reason')}, {record.get('failures')} "
        f"failures, {record.get('deliveries')} deliveries)",
    ]
    if record.get("error"):
        lines.append(str(record["error"]).rstrip())
    if record.get("stall_dump"):
        lines.append(str(record["stall_dump"]).rstrip())
    return "\n".join(lines)


def manifest_cells(bus):
    """Rebuild (task_id, cell) pairs from a submitted sweep's manifest."""
    manifest = bus.get_meta(MANIFEST_KEY)
    if manifest is None:
        raise ValueError("bus has no sweep manifest (nothing submitted?)")
    pairs = []
    for task_id in manifest.get("order", []):
        record = bus.record(task_id)
        if record is None:
            raise ValueError(f"manifest names unknown task {task_id!r}")
        pairs.append((task_id, cell_from_payload(record["payload"])))
    return pairs
