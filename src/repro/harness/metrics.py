"""Result records and normalisation helpers for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass
class LatencyNs:
    """Mean packet latency in nanoseconds, split like the paper's Fig 10."""

    request_queuing: float = 0.0
    request_non_queuing: float = 0.0
    reply_queuing: float = 0.0
    reply_non_queuing: float = 0.0

    @property
    def request_total(self) -> float:
        return self.request_queuing + self.request_non_queuing

    @property
    def reply_total(self) -> float:
        return self.reply_queuing + self.reply_non_queuing

    @property
    def total(self) -> float:
        return self.request_total + self.reply_total


@dataclass
class ExperimentResult:
    """Plain-data outcome of one (scheme, benchmark, size) run."""

    scheme: str
    benchmark: str
    width: int
    cycles: int
    instructions: int
    energy_nj: float
    area_mm2: float
    latency: LatencyNs
    reply_bits_fraction: float
    pe_stall_cycles: int = 0
    cb_stall_cycles: int = 0
    # sha256 over every network's full counter snapshot; two runs of the
    # same (seed, config) must agree bit-for-bit (determinism tests).
    stats_fingerprint: str = ""
    # Fault-injection ledger totals over all networks (0 without faults).
    flits_dropped: int = 0
    packets_recovered: int = 0
    # Telemetry record (repro.telemetry export schema) when the run was
    # sampled; None otherwise.  Plain JSON data: rides through the
    # sweep journal and process-pool pickling unchanged.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def execution_ns(self) -> float:
        from ..schemes.base import BASE_FREQUENCY_GHZ

        return self.cycles / BASE_FREQUENCY_GHZ

    @property
    def edp(self) -> float:
        """Energy-delay product (nJ * ns)."""
        return self.energy_nj * self.execution_ns


def result_to_dict(result: ExperimentResult) -> Dict[str, object]:
    """Plain-JSON form of a result (sweep journal, reports).

    Floats round-trip exactly through ``json`` (repr-based), so a
    journalled result restores bit-identical to the original — the
    crash-safe resume path relies on this.
    """
    from dataclasses import asdict

    return asdict(result)


def result_from_dict(data: Mapping[str, object]) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    payload = dict(data)
    latency = payload.get("latency")
    if isinstance(latency, Mapping):
        payload["latency"] = LatencyNs(**latency)
    return ExperimentResult(**payload)


def normalize(
    values: Mapping[str, float], baseline: str
) -> Dict[str, float]:
    """Normalise a scheme->value mapping to one scheme's value."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from {sorted(values)}")
    base = values[baseline]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {name: value / base for name, value in values.items()}


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    A zero or negative input means an upstream metric is broken (an
    IPC of 0 from a failed cell, a negative latency delta) — silently
    folding it in would poison a whole normalized sweep table (a zero
    would drag the mean to 0.0, a negative would raise a bare complex-
    power error).  Report exactly which inputs are bad instead.
    """
    if not values:
        return 0.0
    bad = [
        (index, v) for index, v in enumerate(values)
        if not v > 0  # catches zero, negatives, and NaN
    ]
    if bad:
        shown = ", ".join(f"[{i}]={v!r}" for i, v in bad[:5])
        more = f" (+{len(bad) - 5} more)" if len(bad) > 5 else ""
        raise ValueError(
            f"geomean requires positive values; got {len(bad)} "
            f"non-positive of {len(values)}: {shown}{more}"
        )
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a plain-text table (the harness's figure output format)."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(headers))
    ]
    lines = []
    for idx, row in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
