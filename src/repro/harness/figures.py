"""Regenerate every table and figure of the paper's evaluation.

Each ``figure*``/``table*``/``section*`` function reproduces one
artefact from the paper and returns a plain-data result object with a
``render()`` method producing the text table the benchmark harness
prints.  Absolute numbers come from this repo's simulator, so the
*shape* (orderings, approximate factors) is the reproduction target —
see EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.equinox import EquiNoxDesign
from ..core.grid import Grid
from ..core.hotzone import placement_penalty
from ..core.nqueen import solve_all, solution_to_nodes
from ..physical.ubump import UbumpBudget, equinox_budget, interposer_cmesh_budget
from ..schemes import SCHEME_ORDER
from ..workloads import profiles, synthetic
from . import cache
from .experiment import ExperimentConfig, build_fabric, run_suite
from .metrics import (
    ExperimentResult,
    LatencyNs,
    format_table,
    mean,
    normalize,
    reduction_percent,
)

PLACEMENT_NAMES = ("top", "side", "diagonal", "diamond", "nqueen")


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@dataclass
class Table1:
    rows: List[Tuple[str, str]]

    def render(self) -> str:
        return format_table(("Parameter", "Value"), self.rows)


def table1(config: Optional[ExperimentConfig] = None) -> Table1:
    """The simulation-parameter table (Table 1)."""
    from ..gpu.cachebank import DEFAULT_L2_LATENCY
    from ..mem.hbm import HbmTiming
    from ..schemes.base import BASE_FREQUENCY_GHZ

    config = config or ExperimentConfig()
    timing = HbmTiming()
    rows = [
        ("Network size", "8x8, 12x12, 16x16"),
        ("Network routing", "Minimal adaptive (odd-even)"),
        ("Virtual channel", "2/port, 1 pkt/VC"),
        ("Allocator", "Separable input first"),
        ("PE frequency", f"{BASE_FREQUENCY_GHZ * 1000:.0f} MHz"),
        ("# of LLC banks", str(config.num_cbs)),
        ("HBM bandwidth",
         f"{timing.peak_bytes_per_cycle * BASE_FREQUENCY_GHZ:.0f} GB/s per stack"),
        ("HBM channels / stack", str(timing.channels)),
        ("Memory controllers", f"{config.num_cbs}, FR-FCFS"),
        ("L2 pipeline latency", f"{DEFAULT_L2_LATENCY} cycles"),
        ("PE MSHRs", str(config.mshrs)),
    ]
    return Table1(rows=rows)


# ----------------------------------------------------------------------
# Figure 4: placement heat maps
# ----------------------------------------------------------------------
@dataclass
class Figure4:
    width: int
    variances: Dict[str, float]
    heatmaps: Dict[str, np.ndarray]
    placements: Dict[str, Tuple[int, ...]]

    def render(self) -> str:
        rows = [
            (name, self.variances[name])
            for name in self.variances
        ]
        table = format_table(("Placement", "Residence variance"), rows)
        return f"Figure 4 (heat-map variance, {self.width}x{self.width}):\n{table}"


def figure4(
    width: int = 8,
    injection_rate: float = 0.5,
    cycles: int = 2000,
    seed: int = 3,
) -> Figure4:
    """Per-router residence heat maps under the five CB placements."""
    variances: Dict[str, float] = {}
    heatmaps: Dict[str, np.ndarray] = {}
    placements: Dict[str, Tuple[int, ...]] = {}
    for name in PLACEMENT_NAMES:
        placed = cache.placement(name, width)
        result = synthetic.run_few_to_many(
            Grid(width),
            placed.nodes,
            injection_rate=injection_rate,
            cycles=cycles,
            seed=seed,
        )
        variances[name] = result.heatmap_variance
        heatmaps[name] = result.network.stats.heatmap().reshape(width, width)
        placements[name] = placed.nodes
    return Figure4(
        width=width,
        variances=variances,
        heatmaps=heatmaps,
        placements=placements,
    )


# ----------------------------------------------------------------------
# Figure 5: N-Queen scoring
# ----------------------------------------------------------------------
@dataclass
class Figure5:
    width: int
    num_solutions: int
    penalties: List[int]
    best_penalty: int
    best_nodes: Tuple[int, ...]

    def render(self) -> str:
        return (
            f"Figure 5 ({self.width}x{self.width}): {self.num_solutions} "
            f"N-Queen solutions, penalties min={self.best_penalty} "
            f"max={max(self.penalties)} mean={mean(self.penalties):.1f}; "
            f"best placement nodes={sorted(self.best_nodes)}"
        )


def figure5(width: int = 8) -> Figure5:
    """Score every N-Queen solution with the hot-zone penalty."""
    grid = Grid(width)
    solutions = solve_all(width)
    scored = []
    for cols in solutions:
        nodes = solution_to_nodes(grid, cols)
        scored.append((placement_penalty(grid, nodes), nodes))
    scored.sort()
    return Figure5(
        width=width,
        num_solutions=len(solutions),
        penalties=[s[0] for s in scored],
        best_penalty=scored[0][0],
        best_nodes=scored[0][1],
    )


# ----------------------------------------------------------------------
# Figure 7: the MCTS-selected design
# ----------------------------------------------------------------------
@dataclass
class Figure7:
    design: EquiNoxDesign

    def render(self) -> str:
        return "Figure 7:\n" + self.design.summary()


def figure7(config: Optional[ExperimentConfig] = None) -> Figure7:
    config = config or ExperimentConfig()
    design = cache.equinox_design(
        config.width,
        config.num_cbs,
        iterations_per_level=config.mcts_iterations,
        seed=config.seed,
    )
    return Figure7(design=design)


# ----------------------------------------------------------------------
# Figure 9: execution time, energy, EDP
# ----------------------------------------------------------------------
@dataclass
class Figure9:
    schemes: List[str]
    benchmarks: List[str]
    results: Dict[Tuple[str, str], ExperimentResult]

    def per_benchmark(self, metric: str) -> Dict[str, Dict[str, float]]:
        """benchmark -> scheme -> value for 'cycles'|'energy_nj'|'edp'."""
        out: Dict[str, Dict[str, float]] = {}
        for benchmark in self.benchmarks:
            out[benchmark] = {
                scheme: getattr(self.results[(scheme, benchmark)], metric)
                for scheme in self.schemes
            }
        return out

    def normalized_means(
        self, metric: str, baseline: str = "SingleBase"
    ) -> Dict[str, float]:
        """Mean over benchmarks of per-benchmark normalised values."""
        sums = {scheme: 0.0 for scheme in self.schemes}
        for benchmark in self.benchmarks:
            values = {
                scheme: getattr(self.results[(scheme, benchmark)], metric)
                for scheme in self.schemes
            }
            for scheme, v in normalize(values, baseline).items():
                sums[scheme] += v
        return {s: v / len(self.benchmarks) for s, v in sums.items()}

    def render(self) -> str:
        lines = [f"Figure 9 ({len(self.benchmarks)} benchmarks, normalised "
                 f"to SingleBase):"]
        for metric, label in (
            ("cycles", "Execution time"),
            ("energy_nj", "NoC energy"),
            ("edp", "EDP"),
        ):
            means = self.normalized_means(metric)
            rows = [(s, means[s]) for s in self.schemes]
            lines.append(f"\n(% {label})")
            lines.append(format_table(("Scheme", "Normalised"), rows))
        return "\n".join(lines)


def figure9(
    config: Optional[ExperimentConfig] = None,
    schemes: Optional[Sequence[str]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    progress: bool = False,
    jobs: int = 1,
) -> Figure9:
    """Run the scheme x benchmark grid behind Figures 9 and 10."""
    config = config or ExperimentConfig()
    schemes = list(schemes or SCHEME_ORDER)
    benchmarks = list(benchmarks or profiles.names())
    results = run_suite(schemes, benchmarks, config, progress=progress,
                        jobs=jobs)
    return Figure9(schemes=schemes, benchmarks=benchmarks, results=results)


# ----------------------------------------------------------------------
# Figure 10: latency breakdown
# ----------------------------------------------------------------------
@dataclass
class Figure10:
    fig9: Figure9

    def mean_latency(self) -> Dict[str, LatencyNs]:
        """Scheme -> mean latency components over benchmarks (ns)."""
        out: Dict[str, LatencyNs] = {}
        for scheme in self.fig9.schemes:
            components = [
                self.fig9.results[(scheme, b)].latency
                for b in self.fig9.benchmarks
            ]
            out[scheme] = LatencyNs(
                request_queuing=mean([c.request_queuing for c in components]),
                request_non_queuing=mean(
                    [c.request_non_queuing for c in components]
                ),
                reply_queuing=mean([c.reply_queuing for c in components]),
                reply_non_queuing=mean(
                    [c.reply_non_queuing for c in components]
                ),
            )
        return out

    def render(self) -> str:
        rows = []
        for scheme, lat in self.mean_latency().items():
            rows.append(
                (
                    scheme,
                    lat.request_queuing,
                    lat.request_non_queuing,
                    lat.reply_queuing,
                    lat.reply_non_queuing,
                    lat.total,
                )
            )
        table = format_table(
            (
                "Scheme",
                "ReqQ(ns)",
                "ReqNQ(ns)",
                "RepQ(ns)",
                "RepNQ(ns)",
                "Total(ns)",
            ),
            rows,
        )
        return "Figure 10 (mean packet latency breakdown):\n" + table


def figure10(fig9: Figure9) -> Figure10:
    return Figure10(fig9=fig9)


# ----------------------------------------------------------------------
# Figure 11: NoC area
# ----------------------------------------------------------------------
@dataclass
class Figure11:
    areas: Dict[str, float]

    def render(self) -> str:
        base = self.areas.get("SeparateBase")
        rows = [
            (s, a, (a / base if base else 0.0)) for s, a in self.areas.items()
        ]
        return "Figure 11 (NoC area):\n" + format_table(
            ("Scheme", "Area (mm^2)", "vs SeparateBase"), rows
        )


def figure11(config: Optional[ExperimentConfig] = None) -> Figure11:
    """Structural NoC area per scheme (no simulation needed)."""
    from ..power.area import fabric_area

    config = config or ExperimentConfig()
    areas = {}
    for scheme in SCHEME_ORDER:
        fabric = build_fabric(scheme, config)
        areas[scheme] = fabric_area(fabric).total_mm2
    return Figure11(areas=areas)


# ----------------------------------------------------------------------
# Section 6.6: µbump budgets
# ----------------------------------------------------------------------
@dataclass
class Section66:
    cmesh: UbumpBudget
    equinox: UbumpBudget

    @property
    def saving_percent(self) -> float:
        return reduction_percent(self.cmesh.num_bumps, self.equinox.num_bumps)

    def render(self) -> str:
        rows = [
            (b.scheme, b.num_links, b.bits_per_link, b.num_bumps,
             b.area_mm2)
            for b in (self.cmesh, self.equinox)
        ]
        table = format_table(
            ("Scheme", "Links", "Bits/link", "µbumps", "Area (mm^2)"), rows
        )
        return (
            "Section 6.6 (µbump budgets):\n"
            f"{table}\nEquiNox saving: {self.saving_percent:.2f}%"
        )


def section66(config: Optional[ExperimentConfig] = None) -> Section66:
    """µbump comparison using the actual MCTS design's link count."""
    config = config or ExperimentConfig()
    design = cache.equinox_design(
        config.width,
        config.num_cbs,
        iterations_per_level=config.mcts_iterations,
        seed=config.seed,
    )
    return Section66(
        cmesh=interposer_cmesh_budget(),
        equinox=equinox_budget(num_eirs=design.num_eirs),
    )


# ----------------------------------------------------------------------
# Figure 12: scalability
# ----------------------------------------------------------------------
@dataclass
class Figure12:
    widths: List[int]
    speedups: Dict[int, float]  # width -> EquiNox IPC / SeparateBase IPC

    def render(self) -> str:
        rows = [(f"{w}x{w}", self.speedups[w]) for w in self.widths]
        return "Figure 12 (EquiNox IPC vs SeparateBase):\n" + format_table(
            ("Network", "Speedup"), rows
        )


def figure12(
    config: Optional[ExperimentConfig] = None,
    widths: Sequence[int] = (8, 12, 16),
    num_benchmarks: int = 5,
    progress: bool = False,
) -> Figure12:
    """IPC gain of EquiNox over SeparateBase at growing network sizes."""
    base = config or ExperimentConfig()
    bench_names = [p.name for p in profiles.subset(num_benchmarks)]
    speedups: Dict[int, float] = {}
    for width in widths:
        cfg = ExperimentConfig(
            width=width,
            num_cbs=base.num_cbs,
            quota=base.quota,
            mshrs=base.mshrs,
            cb_capacity=base.cb_capacity,
            seed=base.seed,
            mcts_iterations=base.mcts_iterations,
            max_cycles=base.max_cycles,
        )
        ratios = []
        for name in bench_names:
            if progress:
                print(f"[fig12] {width}x{width} {name}", flush=True)
            sep = run_suite(["SeparateBase"], [name], cfg)[("SeparateBase", name)]
            eq = run_suite(["EquiNox"], [name], cfg)[("EquiNox", name)]
            ratios.append(eq.ipc / sep.ipc)
        speedups[width] = mean(ratios)
    return Figure12(widths=list(widths), speedups=speedups)
