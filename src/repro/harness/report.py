"""Consolidated reproduction report.

``build_report`` collects every rendered figure in ``results/`` into a
single markdown document with the paper's headline claims alongside the
measured values — the artefact you hand to someone asking "did the
reproduction work?".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

SECTIONS = (
    ("table1", "Table 1 — simulation configuration"),
    ("figure4", "Figure 4 — placement heat maps"),
    ("figure5", "Figure 5 — N-Queen scoring"),
    ("figure7", "Figure 7 — the MCTS-selected design"),
    ("figure9", "Figure 9 — execution time / energy / EDP"),
    ("figure10", "Figure 10 — packet latency breakdown"),
    ("figure11", "Figure 11 — NoC area"),
    ("section66", "Section 6.6 — µbump budgets"),
    ("figure12", "Figure 12 — scalability"),
    ("section68", "Section 6.8 — more CBs than N (extension)"),
    ("ablation_placement", "Ablation — CB placement"),
    ("ablation_eir_count", "Ablation — EIRs per group"),
    ("ablation_eir_distance", "Ablation — EIR distance"),
    ("ablation_mcts_budget", "Ablation — MCTS budget"),
    ("ablation_saturation", "Ablation — injection saturation"),
)

HEADER = """# EquiNox reproduction report

Generated from the rendered tables in `results/` (written by
`pytest benchmarks/ --benchmark-only`).  Shape targets come from
Li & Chen, *EquiNox*, HPCA 2020; absolute values are from this
repository's simulator stack (see DESIGN.md for substitutions).
"""


@dataclass
class Report:
    sections: Dict[str, str]
    missing: List[str]

    def render(self) -> str:
        parts = [HEADER]
        for key, title in SECTIONS:
            if key in self.sections:
                parts.append(f"## {title}\n\n```\n{self.sections[key]}\n```")
        if self.missing:
            parts.append(
                "## Missing sections\n\nNot yet generated (run the "
                "benchmark suite): " + ", ".join(self.missing)
            )
        return "\n\n".join(parts) + "\n"


def build_report(results_dir: Union[str, Path] = "results") -> Report:
    """Collect all rendered figures under ``results_dir``."""
    results_dir = Path(results_dir)
    sections: Dict[str, str] = {}
    missing: List[str] = []
    for key, _title in SECTIONS:
        path = results_dir / f"{key}.txt"
        if path.exists():
            sections[key] = path.read_text().rstrip()
        else:
            missing.append(key)
    return Report(sections=sections, missing=missing)


def write_report(
    results_dir: Union[str, Path] = "results",
    output: Union[str, Path] = "results/REPORT.md",
) -> Path:
    """Build and write the consolidated report; returns the path."""
    report = build_report(results_dir)
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(report.render())
    return output
