"""Two-tier memoisation of expensive design artefacts.

The EquiNox design flow (N-Queen scoring + MCTS) is deterministic for a
given configuration, so each artefact needs computing exactly once:

* **Tier 1** — a per-process dict, as before: a single process (e.g.
  the benchmark suite running all of Figure 9) reuses one design object
  for every benchmark.
* **Tier 2** — an on-disk JSON store shared across processes, so the
  parallel sweep runner's workers, repeated pytest invocations and CLI
  calls all reuse one MCTS/N-Queen run instead of redoing it.

Disk entries are keyed by a content hash of the full parameter set plus
the code version (package version and design-format version), so any
release that could change the artefacts invalidates the store
automatically.  The store lives under ``$REPRO_CACHE_DIR`` when set
(the empty string or ``off`` disables the disk tier entirely),
otherwise ``$XDG_CACHE_HOME/repro-equinox`` or ``~/.cache/repro-equinox``.
Corrupt or stale entries are ignored and recomputed, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..core.equinox import EquiNoxDesign, design_equinox
from ..core.grid import Grid
from ..core.mcts import SearchConfig
from ..core.placement import PlacementResult, by_name
from ..core.serialize import FORMAT_VERSION, design_from_dict, design_to_dict

_DESIGNS: Dict[Tuple, EquiNoxDesign] = {}
_PLACEMENTS: Dict[Tuple, PlacementResult] = {}
_CORRUPT_EVICTIONS = 0


def corrupt_evictions() -> int:
    """Corrupt disk entries evicted since import (or the last clear).

    Corruption is tolerated silently at read time (the artefact is just
    recomputed), but a climbing counter flags a sick disk or a writer
    bug, so tests and sweep reports can assert on it.
    """
    return _CORRUPT_EVICTIONS


# ----------------------------------------------------------------------
# Disk tier
# ----------------------------------------------------------------------
def cache_dir() -> Optional[Path]:
    """The on-disk store location, or ``None`` when disabled.

    Resolution order: ``$REPRO_CACHE_DIR`` (empty/``off``/``0``/``none``
    disables the disk tier), then ``$XDG_CACHE_HOME/repro-equinox``,
    then ``~/.cache/repro-equinox``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        if not env or env.strip().lower() in ("0", "off", "none", "disabled"):
            return None
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-equinox"


def _code_version() -> str:
    from .. import __version__

    return f"{__version__}+fmt{FORMAT_VERSION}"


def _entry_path(kind: str, params: Dict) -> Optional[Path]:
    root = cache_dir()
    if root is None:
        return None
    payload = dict(params, kind=kind, code=_code_version())
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:24]
    return root / f"{kind}-{digest}.json"


def _evict(path: Optional[Path]) -> None:
    """Remove a corrupt entry (it would fail on every future read)."""
    global _CORRUPT_EVICTIONS
    _CORRUPT_EVICTIONS += 1
    if path is None:
        return
    try:
        path.unlink()
    except OSError:
        pass  # already gone, or a read-only store; counting still holds


def _disk_read(path: Optional[Path]) -> Optional[Dict]:
    if path is None:
        return None
    try:
        text = path.read_text()
    except OSError:
        return None  # missing entry or unreadable store: just a miss
    try:
        return json.loads(text)
    except ValueError:
        _evict(path)  # unparseable JSON (torn write, disk damage)
        return None


def _fsync_dir(path: Path) -> None:
    """Force a directory's entry table to disk (post-rename durability)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return  # platforms/filesystems without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass  # e.g. fsync unsupported on this mount; rename still atomic
    finally:
        os.close(fd)


def _disk_write(path: Optional[Path], data: Dict) -> None:
    """Atomically persist ``data`` (concurrent workers may race here).

    Writes land in a ``mkstemp`` temp file in the target directory and
    become visible via ``os.replace``, so a concurrent reader can never
    observe a half-written entry under the final name — a crash
    mid-write leaves only an orphaned ``*.tmp`` file, which no reader
    opens (entry paths always end in ``.json``).  The temp file is
    flushed and fsynced *before* the rename: without that, a power loss
    shortly after ``os.replace`` could leave the final name pointing at
    not-yet-durable bytes — a torn entry under the real key.  And the
    parent directory is fsynced *after* the rename: the rename itself
    lives in the directory's entry table, so without the directory
    fsync a power loss can silently undo the rename and the entry
    vanishes even though its bytes were durable.
    """
    if path is None:
        return
    tmp: Optional[str] = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        with os.fdopen(fd, "w") as handle:
            json.dump(data, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        tmp = None
        _fsync_dir(path.parent)
    except OSError:
        # A read-only store degrades to tier 1, never fails a run; but
        # don't leave the half-written temp file behind.
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Cached artefacts
# ----------------------------------------------------------------------
def equinox_design(
    width: int,
    num_cbs: int = 8,
    iterations_per_level: int = 150,
    seed: int = 0,
) -> EquiNoxDesign:
    """The (cached) EquiNox design for one network size."""
    key = (width, num_cbs, iterations_per_level, seed)
    design = _DESIGNS.get(key)
    if design is not None:
        return design
    path = _entry_path(
        "design",
        {
            "width": width,
            "num_cbs": num_cbs,
            "iterations_per_level": iterations_per_level,
            "seed": seed,
        },
    )
    data = _disk_read(path)
    if data is not None:
        try:
            design = design_from_dict(data, strict=True)
        except (ValueError, KeyError, TypeError):
            design = None  # corrupt/stale entry: evict and redo
            _evict(path)
    if design is None:
        design = design_equinox(
            width,
            num_cbs,
            SearchConfig(iterations_per_level=iterations_per_level, seed=seed),
        )
        _disk_write(path, design_to_dict(design))
    _DESIGNS[key] = design
    return design


def placement(name: str, width: int, num_cbs: int = 8) -> PlacementResult:
    """The (cached) named placement for one network size."""
    key = (name, width, num_cbs)
    result = _PLACEMENTS.get(key)
    if result is not None:
        return result
    path = _entry_path(
        "placement", {"name": name, "width": width, "num_cbs": num_cbs}
    )
    data = _disk_read(path)
    if data is not None:
        try:
            result = PlacementResult(
                name=data["name"],
                nodes=tuple(data["nodes"]),
                penalty=data["penalty"],
            )
        except (KeyError, TypeError):
            result = None
            _evict(path)
    if result is None:
        result = by_name(name, Grid(width), num_cbs)
        _disk_write(
            path,
            {
                "name": result.name,
                "nodes": list(result.nodes),
                "penalty": result.penalty,
            },
        )
    _PLACEMENTS[key] = result
    return result


def clear(disk: bool = False) -> None:
    """Drop cached artefacts: always tier 1, plus the store if ``disk``."""
    global _CORRUPT_EVICTIONS
    _DESIGNS.clear()
    _PLACEMENTS.clear()
    _CORRUPT_EVICTIONS = 0
    if disk:
        root = cache_dir()
        if root is not None and root.is_dir():
            for entry in root.glob("*.json"):
                try:
                    entry.unlink()
                except OSError:
                    pass
