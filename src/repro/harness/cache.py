"""Process-level memoisation of expensive design artefacts.

The EquiNox design flow (N-Queen scoring + MCTS) is deterministic for a
given configuration, so a single process — e.g. the benchmark suite
running all of Figure 9 — computes each design once and reuses it for
every benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.equinox import EquiNoxDesign, design_equinox
from ..core.grid import Grid
from ..core.mcts import SearchConfig
from ..core.placement import PlacementResult, by_name

_DESIGNS: Dict[Tuple, EquiNoxDesign] = {}
_PLACEMENTS: Dict[Tuple, PlacementResult] = {}


def equinox_design(
    width: int,
    num_cbs: int = 8,
    iterations_per_level: int = 150,
    seed: int = 0,
) -> EquiNoxDesign:
    """The (cached) EquiNox design for one network size."""
    key = (width, num_cbs, iterations_per_level, seed)
    if key not in _DESIGNS:
        _DESIGNS[key] = design_equinox(
            width,
            num_cbs,
            SearchConfig(iterations_per_level=iterations_per_level, seed=seed),
        )
    return _DESIGNS[key]


def placement(name: str, width: int, num_cbs: int = 8) -> PlacementResult:
    """The (cached) named placement for one network size."""
    key = (name, width, num_cbs)
    if key not in _PLACEMENTS:
        _PLACEMENTS[key] = by_name(name, Grid(width), num_cbs)
    return _PLACEMENTS[key]


def clear() -> None:
    """Drop all cached artefacts (used by tests)."""
    _DESIGNS.clear()
    _PLACEMENTS.clear()
