"""Broker-agnostic work-queue bus: leases, retries, dead letters.

The distributed sweep service moves cells through a small message-bus
contract instead of handing them to a process pool directly.  Two
backends implement the same interface:

* :class:`MemoryBus` — a dict behind a lock, for in-process fleets and
  the serial sweep path (and for tests, which inject a manual clock);
* :class:`SqliteBus` — one SQLite file shared by any number of worker
  *processes* on a host (or a shared filesystem), each operation its
  own short ``BEGIN IMMEDIATE`` transaction, so workers can crash at
  any instruction without corrupting the queue.

Lifecycle of a task::

    put -> pending -> lease -> leased -> ack  -> done
                        ^         |      nack -> pending (retry) or dead
                        |         v
                        +--- lease expiry (crashed/silent worker)

Failure semantics are split in two, because the two failure modes must
not share a budget:

* an explicit :meth:`~MemoryBus.nack` means *the cell itself failed*
  (the simulation raised); it increments ``failures`` and the next
  delivery runs under the deterministic retry seed for that attempt.
  After ``retries`` failures the task is dead-lettered with its
  traceback/stall dump attached (``exhausted-retries``).
* a **lease expiry** means *the worker died or went silent* (SIGKILL,
  OOM, power loss); the task is re-delivered with ``failures``
  unchanged, so the re-run uses the *same* seed and — simulations
  being deterministic — produces the byte-identical result the dead
  worker would have.  A ``redelivery_limit`` guard dead-letters tasks
  that crash every worker that touches them (``crash-loop``).

Live workers renew their lease with :meth:`~MemoryBus.heartbeat`; a
wedged-but-alive cell is therefore bounded by the per-attempt
wall-clock timeout inside the worker, not by lease expiry.  Duplicate
delivery (an expired lease re-leased while the original worker limps
on) is resolved by the lease token: only the current token can ack or
nack, stale completions are reported as such and dropped — harmless,
because both deliveries compute the same bytes.

Results ride the bus: ``ack`` attaches the plain-JSON result record,
and every backend JSON-round-trips it so in-memory and cross-process
fleets observe byte-identical payloads (floats survive ``json``
exactly).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

# Task states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
DEAD = "dead"
STATES = (PENDING, LEASED, DONE, DEAD)

# Dead-letter reasons.
REASON_RETRIES = "exhausted-retries"
REASON_CRASH_LOOP = "crash-loop"

# nack() verdicts.
NACK_RETRY = "retry"
NACK_DEAD = "dead"
NACK_STALE = "stale"


@dataclass(frozen=True)
class BusPolicy:
    """Retry discipline the bus applies on failures and crashes."""

    # Cell-failure budget: a task may fail (nack) this many times and
    # still be retried; failure number ``retries + 1`` dead-letters it.
    retries: int = 0
    # Redelivery delay after failure ``n`` (1-based) is
    # ``backoff_s * 2**(n-1)`` — the old in-process retry backoff,
    # expressed as queue time instead of a worker sleep.
    backoff_s: float = 0.05
    # Crash budget: extra deliveries (beyond the ``retries + 1``
    # failure attempts) a task may consume through lease expiry before
    # it is presumed to be killing its workers and dead-lettered.
    redelivery_limit: int = 5

    @property
    def max_deliveries(self) -> int:
        return self.retries + 1 + self.redelivery_limit

    def backoff_for(self, failures: int) -> float:
        if failures <= 0:
            return 0.0
        return self.backoff_s * (2 ** (failures - 1))


@dataclass(frozen=True)
class Lease:
    """One delivery of a task to a worker."""

    task_id: str
    payload: Dict[str, object]
    token: str
    # Explicit cell failures so far: the attempt number (0-based) the
    # worker must derive its deterministic seed from.
    failures: int
    # Total deliveries including this one (crash redeliveries count).
    deliveries: int
    deadline: float


def _new_token() -> str:
    return uuid.uuid4().hex


def _roundtrip(data: Optional[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """JSON round trip, so both backends hand out identical payloads."""
    if data is None:
        return None
    return json.loads(json.dumps(data))


@dataclass
class _Task:
    seq: int
    task_id: str
    payload: Dict[str, object]
    state: str = PENDING
    failures: int = 0
    deliveries: int = 0
    not_before: float = 0.0
    token: Optional[str] = None
    worker: Optional[str] = None
    worker_pid: Optional[int] = None
    deadline: Optional[float] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    stall_dump: Optional[str] = None
    timed_out: bool = False
    seed_used: Optional[int] = None
    duration_s: float = 0.0
    dead_reason: Optional[str] = None

    def record(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "task_id": self.task_id,
            "payload": _roundtrip(self.payload),
            "state": self.state,
            "failures": self.failures,
            "deliveries": self.deliveries,
            "worker": self.worker,
            "worker_pid": self.worker_pid,
            "result": _roundtrip(self.result),
            "error": self.error,
            "error_type": self.error_type,
            "stall_dump": self.stall_dump,
            "timed_out": self.timed_out,
            "seed_used": self.seed_used,
            "duration_s": self.duration_s,
            "dead_reason": self.dead_reason,
        }


def _crash_loop_error(task_deliveries: int) -> str:
    return (
        f"lease expired on all {task_deliveries} deliveries; the task "
        "is presumed to crash or wedge every worker that leases it"
    )


class MemoryBus:
    """In-process reference backend (thread-safe, injectable clock)."""

    def __init__(
        self,
        policy: Optional[BusPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or BusPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._tasks: Dict[str, _Task] = {}
        self._order: List[str] = []
        self._meta: Dict[str, str] = {}

    # -- producer ------------------------------------------------------
    def put(self, task_id: str, payload: Dict[str, object]) -> bool:
        """Enqueue a task; a duplicate ``task_id`` is a no-op (False)."""
        with self._lock:
            if task_id in self._tasks:
                return False
            self._tasks[task_id] = _Task(
                seq=len(self._order), task_id=task_id,
                payload=_roundtrip(payload),
            )
            self._order.append(task_id)
            return True

    # -- worker --------------------------------------------------------
    def lease(
        self,
        worker: str,
        lease_s: float,
        worker_pid: Optional[int] = None,
    ) -> Optional[Lease]:
        """Deliver the next due task, bounded by ``lease_s`` seconds.

        Expires stale leases first, so a single polling worker is
        enough to recover a dead fleet's in-flight work.
        """
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            for task_id in self._order:
                task = self._tasks[task_id]
                if task.state != PENDING or task.not_before > now:
                    continue
                if task.deliveries >= self.policy.max_deliveries:
                    self._dead_letter_locked(
                        task, REASON_CRASH_LOOP,
                        error=_crash_loop_error(task.deliveries),
                    )
                    continue
                task.state = LEASED
                task.deliveries += 1
                task.token = _new_token()
                task.worker = worker
                task.worker_pid = worker_pid
                task.deadline = now + lease_s
                return Lease(
                    task_id=task.task_id,
                    payload=_roundtrip(task.payload),
                    token=task.token,
                    failures=task.failures,
                    deliveries=task.deliveries,
                    deadline=task.deadline,
                )
        return None

    def heartbeat(self, token: str, lease_s: float) -> bool:
        """Renew a live lease; False means it already expired (stale)."""
        now = self._clock()
        with self._lock:
            task = self._by_token(token)
            if task is None:
                return False
            task.deadline = now + lease_s
            return True

    def ack(
        self,
        token: str,
        result: Dict[str, object],
        seed_used: Optional[int] = None,
        duration_s: float = 0.0,
    ) -> bool:
        """Complete a leased task with its result; False if stale."""
        with self._lock:
            task = self._by_token(token)
            if task is None:
                return False
            task.state = DONE
            task.token = None
            task.deadline = None
            task.result = _roundtrip(result)
            task.seed_used = seed_used
            task.duration_s += duration_s
            task.error = None
            task.error_type = None
            task.stall_dump = None
            task.timed_out = False
            return True

    def nack(
        self,
        token: str,
        error: str,
        error_type: Optional[str] = None,
        stall_dump: Optional[str] = None,
        timed_out: bool = False,
        seed_used: Optional[int] = None,
        duration_s: float = 0.0,
    ) -> str:
        """Record a cell failure; returns retry/dead/stale."""
        now = self._clock()
        with self._lock:
            task = self._by_token(token)
            if task is None:
                return NACK_STALE
            task.failures += 1
            task.token = None
            task.deadline = None
            task.error = error
            task.error_type = error_type
            task.stall_dump = stall_dump
            task.timed_out = timed_out
            task.seed_used = seed_used
            task.duration_s += duration_s
            if task.failures > self.policy.retries:
                self._dead_letter_locked(task, REASON_RETRIES)
                return NACK_DEAD
            task.state = PENDING
            task.not_before = now + self.policy.backoff_for(task.failures)
            return NACK_RETRY

    # -- supervision ---------------------------------------------------
    def expire(self, now: Optional[float] = None) -> List[str]:
        """Return expired leases to the queue; list the affected tasks."""
        now = self._clock() if now is None else now
        with self._lock:
            return self._expire_locked(now)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in STATES}
            for task in self._tasks.values():
                counts[task.state] += 1
            return counts

    def all_terminal(self) -> bool:
        counts = self.counts()
        return counts[PENDING] == 0 and counts[LEASED] == 0

    def next_due(self) -> Optional[float]:
        """Earliest ``not_before`` among pending tasks (backoff waits)."""
        with self._lock:
            due = [
                t.not_before for t in self._tasks.values()
                if t.state == PENDING
            ]
            return min(due) if due else None

    def records(
        self, states: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        """Full task records in enqueue order (optionally filtered)."""
        with self._lock:
            wanted = set(states) if states is not None else None
            return [
                self._tasks[task_id].record()
                for task_id in self._order
                if wanted is None or self._tasks[task_id].state in wanted
            ]

    def record(self, task_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            task = self._tasks.get(task_id)
            return task.record() if task is not None else None

    def dead_letters(self) -> List[Dict[str, object]]:
        return self.records([DEAD])

    def requeue(self, task_ids: Optional[Sequence[str]] = None) -> int:
        """Return dead-lettered tasks to the queue with a fresh budget.

        Counters reset so the replay starts at attempt 0 — the same
        deterministic seed schedule as a fresh submit.
        """
        with self._lock:
            moved = 0
            for task_id in self._order:
                task = self._tasks[task_id]
                if task.state != DEAD:
                    continue
                if task_ids is not None and task_id not in task_ids:
                    continue
                task.state = PENDING
                task.failures = 0
                task.deliveries = 0
                task.not_before = 0.0
                task.error = None
                task.error_type = None
                task.stall_dump = None
                task.timed_out = False
                task.dead_reason = None
                task.duration_s = 0.0
                moved += 1
            return moved

    # -- metadata ------------------------------------------------------
    def set_meta(self, key: str, value: Dict[str, object]) -> None:
        with self._lock:
            self._meta[key] = json.dumps(value, sort_keys=True)

    def get_meta(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            raw = self._meta.get(key)
            return json.loads(raw) if raw is not None else None

    # -- internals -----------------------------------------------------
    def _by_token(self, token: str) -> Optional[_Task]:
        if not token:
            return None
        for task in self._tasks.values():
            if task.state == LEASED and task.token == token:
                return task
        return None

    def _expire_locked(self, now: float) -> List[str]:
        # ``now`` may be a sentinel far in the future (force-expiry of
        # a confirmed-dead fleet); release the work immediately rather
        # than pushing not_before out with it.
        release = min(now, self._clock())
        expired = []
        for task_id in self._order:
            task = self._tasks[task_id]
            if (
                task.state == LEASED
                and task.deadline is not None
                and task.deadline < now
            ):
                task.state = PENDING
                task.token = None
                task.deadline = None
                task.not_before = release
                expired.append(task_id)
        return expired

    def _dead_letter_locked(
        self, task: _Task, reason: str, error: Optional[str] = None
    ) -> None:
        task.state = DEAD
        task.token = None
        task.deadline = None
        task.dead_reason = reason
        if error is not None:
            task.error = error
            task.error_type = task.error_type or "LeaseExpired"


_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    task_id TEXT UNIQUE NOT NULL,
    payload TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'pending',
    failures INTEGER NOT NULL DEFAULT 0,
    deliveries INTEGER NOT NULL DEFAULT 0,
    not_before REAL NOT NULL DEFAULT 0,
    token TEXT,
    worker TEXT,
    worker_pid INTEGER,
    deadline REAL,
    result TEXT,
    error TEXT,
    error_type TEXT,
    stall_dump TEXT,
    timed_out INTEGER NOT NULL DEFAULT 0,
    seed_used INTEGER,
    duration_s REAL NOT NULL DEFAULT 0,
    dead_reason TEXT
);
CREATE INDEX IF NOT EXISTS tasks_state ON tasks (state, not_before, seq);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class SqliteBus:
    """Cross-process backend: one SQLite file, short transactions.

    Every operation opens its own connection and runs one ``BEGIN
    IMMEDIATE`` transaction, so the bus tolerates workers dying at any
    instruction (SQLite's journal rolls a torn transaction back) and
    is safe to use from the heartbeat thread and the worker loop at
    once.  Uses the wall clock (``time.time``), the only clock worker
    processes share.
    """

    def __init__(
        self,
        path: object,
        policy: Optional[BusPolicy] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = str(path)
        self.policy = policy or BusPolicy()
        self._clock = clock
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA busy_timeout = 30000")
        return conn

    @staticmethod
    def _row_record(row: sqlite3.Row) -> Dict[str, object]:
        return {
            "seq": row["seq"],
            "task_id": row["task_id"],
            "payload": json.loads(row["payload"]),
            "state": row["state"],
            "failures": row["failures"],
            "deliveries": row["deliveries"],
            "worker": row["worker"],
            "worker_pid": row["worker_pid"],
            "result": (
                json.loads(row["result"])
                if row["result"] is not None else None
            ),
            "error": row["error"],
            "error_type": row["error_type"],
            "stall_dump": row["stall_dump"],
            "timed_out": bool(row["timed_out"]),
            "seed_used": row["seed_used"],
            "duration_s": row["duration_s"],
            "dead_reason": row["dead_reason"],
        }

    # -- producer ------------------------------------------------------
    def put(self, task_id: str, payload: Dict[str, object]) -> bool:
        with self._connect() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO tasks (task_id, payload) "
                "VALUES (?, ?)",
                (task_id, json.dumps(payload)),
            )
            return cursor.rowcount > 0

    # -- worker --------------------------------------------------------
    def lease(
        self,
        worker: str,
        lease_s: float,
        worker_pid: Optional[int] = None,
    ) -> Optional[Lease]:
        now = self._clock()
        worker_pid = os.getpid() if worker_pid is None else worker_pid
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            self._expire_in(conn, now)
            while True:
                row = conn.execute(
                    "SELECT * FROM tasks WHERE state = ? AND "
                    "not_before <= ? ORDER BY seq LIMIT 1",
                    (PENDING, now),
                ).fetchone()
                if row is None:
                    conn.commit()
                    return None
                if row["deliveries"] >= self.policy.max_deliveries:
                    conn.execute(
                        "UPDATE tasks SET state = ?, token = NULL, "
                        "deadline = NULL, dead_reason = ?, error = ?, "
                        "error_type = COALESCE(error_type, ?) "
                        "WHERE seq = ?",
                        (
                            DEAD, REASON_CRASH_LOOP,
                            _crash_loop_error(row["deliveries"]),
                            "LeaseExpired", row["seq"],
                        ),
                    )
                    continue
                token = _new_token()
                deadline = now + lease_s
                conn.execute(
                    "UPDATE tasks SET state = ?, deliveries = "
                    "deliveries + 1, token = ?, worker = ?, "
                    "worker_pid = ?, deadline = ? WHERE seq = ?",
                    (LEASED, token, worker, worker_pid, deadline,
                     row["seq"]),
                )
                conn.commit()
                return Lease(
                    task_id=row["task_id"],
                    payload=json.loads(row["payload"]),
                    token=token,
                    failures=row["failures"],
                    deliveries=row["deliveries"] + 1,
                    deadline=deadline,
                )
        finally:
            conn.close()

    def heartbeat(self, token: str, lease_s: float) -> bool:
        now = self._clock()
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE tasks SET deadline = ? WHERE token = ? "
                "AND state = ?",
                (now + lease_s, token, LEASED),
            )
            return cursor.rowcount > 0

    def ack(
        self,
        token: str,
        result: Dict[str, object],
        seed_used: Optional[int] = None,
        duration_s: float = 0.0,
    ) -> bool:
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE tasks SET state = ?, token = NULL, "
                "deadline = NULL, result = ?, seed_used = ?, "
                "duration_s = duration_s + ?, error = NULL, "
                "error_type = NULL, stall_dump = NULL, timed_out = 0 "
                "WHERE token = ? AND state = ?",
                (DONE, json.dumps(result), seed_used, duration_s,
                 token, LEASED),
            )
            return cursor.rowcount > 0

    def nack(
        self,
        token: str,
        error: str,
        error_type: Optional[str] = None,
        stall_dump: Optional[str] = None,
        timed_out: bool = False,
        seed_used: Optional[int] = None,
        duration_s: float = 0.0,
    ) -> str:
        now = self._clock()
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT seq, failures FROM tasks WHERE token = ? "
                "AND state = ?",
                (token, LEASED),
            ).fetchone()
            if row is None:
                conn.commit()
                return NACK_STALE
            failures = row["failures"] + 1
            dead = failures > self.policy.retries
            conn.execute(
                "UPDATE tasks SET state = ?, failures = ?, "
                "token = NULL, deadline = NULL, not_before = ?, "
                "error = ?, error_type = ?, stall_dump = ?, "
                "timed_out = ?, seed_used = ?, "
                "duration_s = duration_s + ?, dead_reason = ? "
                "WHERE seq = ?",
                (
                    DEAD if dead else PENDING,
                    failures,
                    now + self.policy.backoff_for(failures),
                    error, error_type, stall_dump,
                    1 if timed_out else 0, seed_used, duration_s,
                    REASON_RETRIES if dead else None,
                    row["seq"],
                ),
            )
            conn.commit()
            return NACK_DEAD if dead else NACK_RETRY
        finally:
            conn.close()

    # -- supervision ---------------------------------------------------
    def expire(self, now: Optional[float] = None) -> List[str]:
        now = self._clock() if now is None else now
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            expired = self._expire_in(conn, now)
            conn.commit()
            return expired
        finally:
            conn.close()

    def _expire_in(self, conn: sqlite3.Connection, now: float) -> List[str]:
        # As in MemoryBus: a sentinel ``now`` force-expires, but the
        # released work becomes due immediately, not at the sentinel.
        release = min(now, self._clock())
        rows = conn.execute(
            "SELECT task_id FROM tasks WHERE state = ? AND "
            "deadline IS NOT NULL AND deadline < ? ORDER BY seq",
            (LEASED, now),
        ).fetchall()
        if rows:
            conn.execute(
                "UPDATE tasks SET state = ?, token = NULL, "
                "deadline = NULL, not_before = ? WHERE state = ? AND "
                "deadline IS NOT NULL AND deadline < ?",
                (PENDING, release, LEASED, now),
            )
        return [row["task_id"] for row in rows]

    def counts(self) -> Dict[str, int]:
        with self._connect() as conn:
            counts = {state: 0 for state in STATES}
            for row in conn.execute(
                "SELECT state, COUNT(*) AS n FROM tasks GROUP BY state"
            ):
                counts[row["state"]] = row["n"]
            return counts

    def all_terminal(self) -> bool:
        counts = self.counts()
        return counts[PENDING] == 0 and counts[LEASED] == 0

    def next_due(self) -> Optional[float]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT MIN(not_before) AS due FROM tasks "
                "WHERE state = ?",
                (PENDING,),
            ).fetchone()
            return row["due"] if row and row["due"] is not None else None

    def records(
        self, states: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        with self._connect() as conn:
            if states is None:
                rows = conn.execute(
                    "SELECT * FROM tasks ORDER BY seq"
                ).fetchall()
            else:
                marks = ",".join("?" for _ in states)
                rows = conn.execute(
                    f"SELECT * FROM tasks WHERE state IN ({marks}) "
                    "ORDER BY seq",
                    tuple(states),
                ).fetchall()
            return [self._row_record(row) for row in rows]

    def record(self, task_id: str) -> Optional[Dict[str, object]]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM tasks WHERE task_id = ?", (task_id,)
            ).fetchone()
            return self._row_record(row) if row is not None else None

    def dead_letters(self) -> List[Dict[str, object]]:
        return self.records([DEAD])

    def requeue(self, task_ids: Optional[Sequence[str]] = None) -> int:
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            sql = (
                "UPDATE tasks SET state = ?, failures = 0, "
                "deliveries = 0, not_before = 0, error = NULL, "
                "error_type = NULL, stall_dump = NULL, timed_out = 0, "
                "dead_reason = NULL, duration_s = 0 WHERE state = ?"
            )
            params: List[object] = [PENDING, DEAD]
            if task_ids is not None:
                marks = ",".join("?" for _ in task_ids)
                sql += f" AND task_id IN ({marks})"
                params.extend(task_ids)
            cursor = conn.execute(sql, tuple(params))
            conn.commit()
            return cursor.rowcount
        finally:
            conn.close()

    # -- metadata ------------------------------------------------------
    def set_meta(self, key: str, value: Dict[str, object]) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, json.dumps(value, sort_keys=True)),
            )

    def get_meta(self, key: str) -> Optional[Dict[str, object]]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
            return json.loads(row["value"]) if row is not None else None


def open_bus(
    path: object, policy: Optional[BusPolicy] = None
) -> SqliteBus:
    """Open (creating if needed) the SQLite bus at ``path``."""
    return SqliteBus(path, policy=policy)
