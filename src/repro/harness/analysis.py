"""Cross-run analysis: classification, speedups, crossovers.

Helpers that answer the questions the paper's prose asks of Figure 9:
which benchmarks respond to injection bandwidth, where does one scheme
overtake another, and how large are the average/extreme gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from .metrics import ExperimentResult, mean


@dataclass(frozen=True)
class BenchmarkClass:
    """NoC-sensitivity classification of one benchmark."""

    benchmark: str
    sensitivity: float  # fractional exec-time reduction EquiNox vs base
    label: str  # "noc-bound" | "moderate" | "compute-bound"


def classify(
    baseline: Mapping[str, ExperimentResult],
    improved: Mapping[str, ExperimentResult],
    noc_bound_threshold: float = 0.15,
    moderate_threshold: float = 0.05,
) -> List[BenchmarkClass]:
    """Classify benchmarks by how much a better NoC helps them.

    ``baseline`` and ``improved`` map benchmark name to the result under
    the baseline and improved scheme respectively.
    """
    out = []
    for name, base in baseline.items():
        if name not in improved:
            raise KeyError(f"benchmark {name!r} missing from improved runs")
        sensitivity = 1.0 - improved[name].cycles / base.cycles
        if sensitivity >= noc_bound_threshold:
            label = "noc-bound"
        elif sensitivity >= moderate_threshold:
            label = "moderate"
        else:
            label = "compute-bound"
        out.append(BenchmarkClass(name, sensitivity, label))
    out.sort(key=lambda c: -c.sensitivity)
    return out


@dataclass(frozen=True)
class SchemeSummary:
    """Suite-level summary of one scheme against a baseline."""

    scheme: str
    mean_reduction: float
    best_benchmark: str
    best_reduction: float
    worst_benchmark: str
    worst_reduction: float
    wins: int  # benchmarks where the scheme beat the baseline
    total: int


def summarize_scheme(
    scheme: str,
    results: Mapping[Tuple[str, str], ExperimentResult],
    benchmarks: Sequence[str],
    baseline: str = "SingleBase",
    metric: str = "cycles",
) -> SchemeSummary:
    """Reduce a scheme x benchmark grid to a suite-level summary."""
    reductions: Dict[str, float] = {}
    for bench in benchmarks:
        base = getattr(results[(baseline, bench)], metric)
        value = getattr(results[(scheme, bench)], metric)
        reductions[bench] = 1.0 - value / base
    best = max(reductions, key=reductions.get)
    worst = min(reductions, key=reductions.get)
    return SchemeSummary(
        scheme=scheme,
        mean_reduction=mean(list(reductions.values())),
        best_benchmark=best,
        best_reduction=reductions[best],
        worst_benchmark=worst,
        worst_reduction=reductions[worst],
        wins=sum(1 for r in reductions.values() if r > 0),
        total=len(benchmarks),
    )


def crossover_benchmarks(
    scheme_a: str,
    scheme_b: str,
    results: Mapping[Tuple[str, str], ExperimentResult],
    benchmarks: Sequence[str],
    metric: str = "cycles",
) -> Tuple[List[str], List[str]]:
    """Split benchmarks by which of two schemes wins on ``metric``.

    Returns ``(a_wins, b_wins)``; ties count for neither.  This is how
    the paper discusses DA2Mesh vs SeparateBase: DA2Mesh wins the
    bandwidth-bound benchmarks and loses the serialisation-sensitive
    ones, averaging out.
    """
    a_wins, b_wins = [], []
    for bench in benchmarks:
        a = getattr(results[(scheme_a, bench)], metric)
        b = getattr(results[(scheme_b, bench)], metric)
        if a < b:
            a_wins.append(bench)
        elif b < a:
            b_wins.append(bench)
    return a_wins, b_wins
