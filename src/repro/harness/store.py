"""Content-addressed result store for completed sweep cells.

One entry per ``(scheme, benchmark, fully-resolved config, package
version)`` — the address is a hash over exactly the inputs that
determine the result bytes, so a lookup either returns the
bit-identical result any correct run would produce, or misses.  That
makes the store safe to share between sweeps, workers and hosts: a
16x16 design-space query ("give me scheme X at 16x16") is answered in
O(lookup) without re-simulating, and a worker that finds its leased
cell in the store can ack the stored result without running anything —
the determinism contract guarantees the bytes match what it would have
computed.

Backends:

* :class:`MemoryResultStore` — a dict, for tests and in-process use;
* :class:`DirectoryResultStore` — one fsynced JSON file per entry
  (atomic temp-file + rename + parent-directory fsync, the same
  durability discipline as the design cache), safe for concurrent
  writers because every entry is immutable under its address.

The package version is part of the address, so a release that could
change simulation behaviour silently invalidates every stored result
instead of serving stale bytes.  Corrupt entries are treated as
misses and evicted, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from .cache import _fsync_dir
from .experiment import ExperimentConfig, config_digest
from .metrics import ExperimentResult, result_from_dict, result_to_dict

STORE_SCHEMA = 1
STORE_ENV = "REPRO_STORE_DIR"
_DISABLED = ("", "0", "off", "none", "disabled")


def _version() -> str:
    from .. import __version__

    return __version__


def result_key(
    scheme: str,
    benchmark: str,
    config: ExperimentConfig,
    version: Optional[str] = None,
) -> str:
    """The content address of one cell's result."""
    version = version or _version()
    payload = f"{version}:{scheme}:{benchmark}:{config_digest(config)}"
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def make_record(
    scheme: str,
    benchmark: str,
    config: ExperimentConfig,
    result: ExperimentResult,
    seed_used: Optional[int] = None,
    attempts: int = 1,
    duration_s: float = 0.0,
) -> Dict[str, object]:
    """The plain-JSON store entry for one completed cell."""
    return {
        "schema": STORE_SCHEMA,
        "key": result_key(scheme, benchmark, config),
        "version": _version(),
        "scheme": scheme,
        "benchmark": benchmark,
        "width": config.width,
        "config_digest": config_digest(config),
        "seed": config.seed,
        "seed_used": seed_used,
        "attempts": attempts,
        "duration_s": duration_s,
        "result": result_to_dict(result),
    }


def record_result(record: Dict[str, object]) -> Optional[ExperimentResult]:
    """Rebuild the :class:`ExperimentResult` inside a store record."""
    data = record.get("result")
    if not isinstance(data, dict):
        return None
    try:
        return result_from_dict(data)
    except (TypeError, ValueError):
        return None


def _valid_record(record: object) -> bool:
    return (
        isinstance(record, dict)
        and record.get("schema") == STORE_SCHEMA
        and isinstance(record.get("key"), str)
        and isinstance(record.get("result"), dict)
    )


def _matches(
    record: Dict[str, object],
    scheme: Optional[str],
    benchmark: Optional[str],
    width: Optional[int],
    config_digest: Optional[str],
) -> bool:
    if scheme is not None and record.get("scheme") != scheme:
        return False
    if benchmark is not None and record.get("benchmark") != benchmark:
        return False
    if width is not None and record.get("width") != width:
        return False
    if config_digest is not None and (
        record.get("config_digest") != config_digest
    ):
        return False
    return True


class MemoryResultStore:
    """Dict-backed store (tests, single-process fleets)."""

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, object]] = {}

    def put(self, record: Dict[str, object]) -> None:
        if not _valid_record(record):
            raise ValueError("malformed store record")
        key = record["key"]
        self._entries[key] = json.loads(json.dumps(record))

    def get(self, key: str) -> Optional[Dict[str, object]]:
        record = self._entries.get(key)
        return json.loads(json.dumps(record)) if record is not None else None

    def query(
        self,
        scheme: Optional[str] = None,
        benchmark: Optional[str] = None,
        width: Optional[int] = None,
        config_digest: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        return sorted(
            (
                json.loads(json.dumps(record))
                for record in self._entries.values()
                if _matches(record, scheme, benchmark, width, config_digest)
            ),
            key=lambda r: (r["scheme"], r["benchmark"], r["key"]),
        )

    def __len__(self) -> int:
        return len(self._entries)


class DirectoryResultStore:
    """One immutable fsynced JSON file per entry under ``root``.

    ``get`` is O(1) (the filename is the address); ``query`` scans.
    Entries are only ever written whole (temp file + fsync + rename +
    directory fsync), so concurrent workers racing to store the same
    key land byte-identical bytes and readers can never observe a torn
    entry.
    """

    def __init__(self, root: object) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / f"result-{key}.json"

    def put(self, record: Dict[str, object]) -> None:
        if not _valid_record(record):
            raise ValueError("malformed store record")
        path = self._path(record["key"])
        data = json.dumps(record, sort_keys=True).encode("utf-8")
        tmp: Optional[str] = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), prefix=path.name, suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            tmp = None
            _fsync_dir(self.root)
        except OSError:
            # A read-only store degrades to a cache miss on the next
            # read; don't leave a half-written temp file behind.
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def get(self, key: str) -> Optional[Dict[str, object]]:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            record = None
        if not _valid_record(record) or record["key"] != key:
            try:
                path.unlink()  # corrupt entry: evict, never trust
            except OSError:
                pass
            return None
        return record

    def _iter_records(self) -> Iterator[Dict[str, object]]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("result-*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if _valid_record(record):
                yield record

    def query(
        self,
        scheme: Optional[str] = None,
        benchmark: Optional[str] = None,
        width: Optional[int] = None,
        config_digest: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        return sorted(
            (
                record for record in self._iter_records()
                if _matches(record, scheme, benchmark, width, config_digest)
            ),
            key=lambda r: (r["scheme"], r["benchmark"], r["key"]),
        )

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_records())


def default_store_dir() -> Optional[Path]:
    """Store location from the environment, or ``None`` when disabled.

    Resolution order: ``$REPRO_STORE_DIR`` (empty/``off``/``0``/
    ``none`` disables), then ``$XDG_CACHE_HOME/repro-equinox/results``,
    then ``~/.cache/repro-equinox/results``.
    """
    env = os.environ.get(STORE_ENV)
    if env is not None:
        if env.strip().lower() in _DISABLED:
            return None
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-equinox" / "results"


def resolve_store(spec: Optional[str]) -> Optional[DirectoryResultStore]:
    """A store from a CLI/config spec: a path, ``off``, or ``None``.

    ``None`` defers to the environment (:func:`default_store_dir`);
    the disabling sentinels return ``None``.
    """
    if spec is None:
        root = default_store_dir()
        return DirectoryResultStore(root) if root is not None else None
    if spec.strip().lower() in _DISABLED:
        return None
    return DirectoryResultStore(spec)
