"""Experiment harness: per-figure regeneration of the paper's evaluation."""

from . import cache, figures
from .experiment import (
    ExperimentConfig,
    build_fabric,
    default_config,
    run_experiment,
    run_suite,
)
from .metrics import (
    ExperimentResult,
    LatencyNs,
    format_table,
    geomean,
    mean,
    normalize,
    reduction_percent,
)

__all__ = [
    "cache",
    "figures",
    "ExperimentConfig",
    "build_fabric",
    "default_config",
    "run_experiment",
    "run_suite",
    "ExperimentResult",
    "LatencyNs",
    "format_table",
    "geomean",
    "mean",
    "normalize",
    "reduction_percent",
]
