"""Experiment harness: per-figure regeneration of the paper's evaluation."""

from . import cache, figures, runner
from .experiment import (
    ExperimentConfig,
    build_fabric,
    default_config,
    run_experiment,
    run_suite,
)
from .metrics import (
    ExperimentResult,
    LatencyNs,
    format_table,
    geomean,
    mean,
    normalize,
    reduction_percent,
)
from .runner import (
    CellOutcome,
    SweepCell,
    SweepReport,
    expand_grid,
    run_sweep,
    sweep,
)

__all__ = [
    "cache",
    "figures",
    "runner",
    "ExperimentConfig",
    "build_fabric",
    "default_config",
    "run_experiment",
    "run_suite",
    "ExperimentResult",
    "LatencyNs",
    "format_table",
    "geomean",
    "mean",
    "normalize",
    "reduction_percent",
    "CellOutcome",
    "SweepCell",
    "SweepReport",
    "expand_grid",
    "run_sweep",
    "sweep",
]
