"""Run one (scheme, benchmark, size) experiment and collect metrics.

This is the top of the stack: it wires a scheme's fabric, the GPU
system model and the workload profile together, runs to completion, and
reduces everything to the plain-data :class:`ExperimentResult` the
figure generators consume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Tuple

from ..core.grid import Grid
from ..gpu.system import System, SystemConfig
from ..noc.diagnostics import (
    resolve_validate_interval,
    validate_interval_from_env,
)
from ..noc.faults import FaultInjector, FaultPlan, FaultSpec, faults_from_env
from ..noc.types import PacketType
from ..power.area import fabric_area
from ..power.energy import fabric_energy
from ..schemes import get_config
from ..schemes.base import BASE_FREQUENCY_GHZ, Fabric
from ..telemetry import (
    SCHEMA_VERSION as TELEMETRY_SCHEMA,
    TelemetryRegistry,
    interval_from_env,
    resolve_interval,
)
from ..workloads import profiles
from . import cache
from .metrics import ExperimentResult, LatencyNs


@dataclass(frozen=True)
class ExperimentConfig:
    """Harness-level knobs shared across a batch of runs."""

    width: int = 8
    num_cbs: int = 8
    quota: int = 120
    mshrs: int = 32
    cb_capacity: int = 16
    seed: int = 0
    mcts_iterations: int = 150
    max_cycles: int = 400000
    # Conservation-audit interval in base cycles: 0 = off, 1 = the
    # default interval, N > 1 = every N cycles.  The REPRO_VALIDATE
    # env var supplies a default when this is 0 (so CI can arm every
    # worker of a sweep without threading a flag through).
    validate: int = 0
    # Stall-watchdog window override (0 = REPRO_WATCHDOG_CYCLES env,
    # else the model default).
    watchdog_cycles: int = 0
    # Deterministic fault schedule (noc.faults.FaultSpec tuple).  Empty
    # means the REPRO_FAULTS env var supplies a default plan (so CI can
    # arm a whole sweep without threading a flag through); an armed but
    # never-firing plan leaves results bit-identical.
    faults: Tuple[FaultSpec, ...] = ()
    # Tick discipline: "active" (skip workless components, fast-forward
    # quiescent gaps) or "dense" (walk everything — the differential
    # oracle).  Empty defers to REPRO_SCHEDULER, defaulting to active.
    # Both produce bit-identical stats fingerprints.
    scheduler: str = ""
    # Tick engine: "object" (per-object golden reference) or "vector"
    # (struct-of-arrays batched tick, repro.noc.vector).  Empty defers
    # to REPRO_ENGINE, defaulting to object.  Both produce bit-identical
    # stats fingerprints (enforced by the engine-parity differential
    # contract).
    engine: str = ""
    # Telemetry sampling interval in base cycles: 0 = off (the
    # REPRO_TELEMETRY env var supplies a default, like REPRO_VALIDATE),
    # 1 = the default interval, N > 1 = every N cycles.  Probes are
    # read-only: enabling telemetry keeps stats_fingerprint
    # bit-identical (differential-tested).
    telemetry: int = 0


def default_config() -> ExperimentConfig:
    """Table 1's configuration at harness scale."""
    return ExperimentConfig()


def config_digest(config: ExperimentConfig) -> str:
    """Short stable digest of a fully-resolved experiment config.

    Keys the sweep journal and the telemetry artifacts: a record is
    only trusted if the scheme, benchmark *and* every config knob
    (seed, quota, fault plan, ...) match the producing run exactly.
    """
    payload = json.dumps(asdict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def config_to_dict(config: ExperimentConfig) -> Dict[str, object]:
    """Plain-JSON form of a config (bus payloads, store records).

    Round-trips exactly through :func:`config_from_dict`: the rebuilt
    config has the same :func:`config_digest`, so a cell shipped over
    the work queue keys the same journal/store entries as a local one.
    """
    data = asdict(config)
    data["faults"] = [spec.to_dict() for spec in config.faults]
    return data


def config_from_dict(data: Dict[str, object]) -> ExperimentConfig:
    """Inverse of :func:`config_to_dict` (strict: unknown keys raise)."""
    if not isinstance(data, dict):
        raise ValueError(f"config must be an object, got {data!r}")
    known = {f.name for f in fields(ExperimentConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown config fields {sorted(unknown)}")
    payload = dict(data)
    payload["faults"] = tuple(
        FaultSpec.from_dict(spec) for spec in payload.get("faults", ())
    )
    return ExperimentConfig(**payload)


def build_fabric(
    scheme_name: str, config: ExperimentConfig
) -> Fabric:
    """Instantiate a scheme's fabric at the configured size."""
    scheme = get_config(scheme_name)
    grid = Grid(config.width)
    if scheme.equinox:
        design = cache.equinox_design(
            config.width,
            config.num_cbs,
            iterations_per_level=config.mcts_iterations,
            seed=config.seed,
        )
        return Fabric(
            scheme, grid, design.placement.nodes, equinox_design=design,
            scheduler=config.scheduler or None,
            engine=config.engine or None,
        )
    placement = cache.placement(
        scheme.placement_name, config.width, config.num_cbs
    )
    return Fabric(
        scheme, grid, placement.nodes, scheduler=config.scheduler or None,
        engine=config.engine or None,
    )


def _latency_ns(fabric: Fabric) -> LatencyNs:
    """Aggregate request/reply latency over the fabric's networks, in ns."""
    sums = {
        "request_queuing": 0.0,
        "request_non_queuing": 0.0,
        "reply_queuing": 0.0,
        "reply_non_queuing": 0.0,
    }
    counts = {"request": 0, "reply": 0}
    req_types = (PacketType.READ_REQUEST, PacketType.WRITE_REQUEST)
    rep_types = (PacketType.READ_REPLY, PacketType.WRITE_REPLY)
    for net, ratio, _role in fabric.networks:
        ns_per_cycle = 1.0 / (BASE_FREQUENCY_GHZ * ratio)
        for label, types in (("request", req_types), ("reply", rep_types)):
            for t in types:
                acc = net.stats.latency[t]
                if not acc.count:
                    continue
                counts[label] += acc.count
                sums[f"{label}_queuing"] += acc.queuing * ns_per_cycle
                sums[f"{label}_non_queuing"] += acc.non_queuing * ns_per_cycle
    return LatencyNs(
        request_queuing=(
            sums["request_queuing"] / counts["request"] if counts["request"] else 0.0
        ),
        request_non_queuing=(
            sums["request_non_queuing"] / counts["request"]
            if counts["request"]
            else 0.0
        ),
        reply_queuing=(
            sums["reply_queuing"] / counts["reply"] if counts["reply"] else 0.0
        ),
        reply_non_queuing=(
            sums["reply_non_queuing"] / counts["reply"] if counts["reply"] else 0.0
        ),
    )


def _reply_bits_fraction(fabric: Fabric) -> float:
    """Fraction of delivered NoC bits carried by reply packets."""
    from ..noc.types import packet_flits

    reply_bits = 0
    total_bits = 0
    rep_types = (PacketType.READ_REPLY, PacketType.WRITE_REPLY)
    for net, _ratio, _role in fabric.networks:
        for t in PacketType:
            # bits_delivered is aggregated; reconstruct per type from
            # counts and the network's flit width (packet size is fixed
            # per (type, width)).
            acc = net.stats.latency[t]
            bits = acc.count * packet_flits(t, net.flit_bytes) * net.flit_bytes * 8
            total_bits += bits
            if t in rep_types:
                reply_bits += bits
    return reply_bits / total_bits if total_bits else 0.0


def run_with_fabric(
    fabric: Fabric,
    benchmark_name: str,
    config: Optional[ExperimentConfig] = None,
    scheme_name: Optional[str] = None,
) -> ExperimentResult:
    """Run a pre-built fabric (used by ablations with custom designs)."""
    config = config or ExperimentConfig()
    profile = profiles.get(benchmark_name)
    validate = config.validate or validate_interval_from_env()
    fault_specs = tuple(config.faults) or faults_from_env()
    injector: Optional[FaultInjector] = None
    if fault_specs:
        if not fabric.supports_faults:
            raise ValueError(
                f"scheme {scheme_name or fabric.config.name!r} does not "
                f"support fault plans (topology "
                f"{fabric.config.topology!r} has no detour routing)"
            )
        injector = FaultInjector(fabric, FaultPlan(fault_specs))
    t_interval = resolve_interval(config.telemetry) or interval_from_env()
    registry: Optional[TelemetryRegistry] = None
    if t_interval > 0:
        registry = TelemetryRegistry(interval=t_interval)
    system = System(
        fabric,
        profile,
        SystemConfig(
            quota=config.quota,
            mshrs=config.mshrs,
            cb_capacity=config.cb_capacity,
            seed=config.seed,
            max_cycles=config.max_cycles,
            validate_interval=resolve_validate_interval(validate),
            watchdog_cycles=config.watchdog_cycles or None,
            fault_injector=injector,
            telemetry=registry,
        ),
    )
    result = system.run()
    energy = fabric_energy(fabric, result.cycles)
    area = fabric_area(fabric)
    digest = hashlib.sha256()
    for net, _ratio, _role in fabric.networks:
        digest.update(net.stats.fingerprint().encode())
    telemetry_record: Optional[Dict[str, object]] = None
    if registry is not None:
        from .. import __version__

        telemetry_record = {
            "schema": TELEMETRY_SCHEMA,
            "kind": "experiment",
            "version": __version__,
            "scheme": scheme_name or fabric.config.name,
            "benchmark": benchmark_name,
            "config_digest": config_digest(config),
            "scheduler": fabric.scheduler,
            "stats_fingerprint": digest.hexdigest(),
            **registry.export(),
        }
    return ExperimentResult(
        scheme=scheme_name or fabric.config.name,
        benchmark=benchmark_name,
        width=config.width,
        cycles=result.cycles,
        instructions=result.instructions,
        energy_nj=energy.total_nj,
        area_mm2=area.total_mm2,
        latency=_latency_ns(fabric),
        reply_bits_fraction=_reply_bits_fraction(fabric),
        pe_stall_cycles=result.pe_stall_cycles,
        cb_stall_cycles=result.cb_stall_cycles,
        stats_fingerprint=digest.hexdigest(),
        flits_dropped=sum(
            net.stats.flits_dropped for net, _ratio, _role in fabric.networks
        ),
        packets_recovered=sum(
            net.stats.packets_recovered
            for net, _ratio, _role in fabric.networks
        ),
        telemetry=telemetry_record,
    )


def run_experiment(
    scheme_name: str,
    benchmark_name: str,
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    """Execute one scheme x benchmark run and reduce it to plain metrics."""
    config = config or ExperimentConfig()
    fabric = build_fabric(scheme_name, config)
    return run_with_fabric(fabric, benchmark_name, config, scheme_name)


def run_suite(
    schemes: List[str],
    benchmarks: List[str],
    config: Optional[ExperimentConfig] = None,
    progress: bool = False,
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    journal: Optional[object] = None,
    resume: bool = False,
    store: Optional[object] = None,
) -> Dict[Tuple[str, str], ExperimentResult]:
    """Run a scheme x benchmark grid; ``jobs > 1`` fans out across cores.

    Thin wrapper over :mod:`~repro.harness.runner` preserving the
    classic mapping-shaped return value.  Unlike the runner's graceful
    per-cell error capture, a failed cell here raises, because callers
    index the mapping unconditionally.
    """
    from .runner import expand_grid, run_sweep

    cells = expand_grid(schemes, benchmarks, config)
    report = run_sweep(
        cells,
        jobs=jobs,
        progress=progress,
        cell_timeout=cell_timeout,
        retries=retries,
        journal=journal,
        resume=resume,
        store=store,
    )
    errors = report.errors()
    if errors:
        (scheme, benchmark), trace = next(iter(errors.items()))
        raise RuntimeError(
            f"{len(errors)} sweep cell(s) failed; first: "
            f"{scheme} x {benchmark}\n{trace}"
        )
    return report.results()
