"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``design``
    Run the EquiNox design flow and print (optionally save) the result.
``run``
    Run one scheme x benchmark experiment and print its metrics.
``sweep``
    Run several schemes over several benchmarks; print a normalised
    Figure-9-style table.
``figure``
    Regenerate one of the paper's light figures/tables.
``verify``
    Property-based verification: fuzz generated configurations against
    the invariant/liveness/differential contract, or replay a shrunk
    failure artifact.
``list``
    Show the available schemes and benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .core.equinox import design_equinox
from .core.mcts import SearchConfig
from .core.serialize import load_design, save_design
from .harness.experiment import ExperimentConfig, run_experiment, run_suite
from .harness.metrics import format_table, normalize
from .schemes import SCHEME_ORDER
from .workloads import TIERS as WORKLOAD_TIERS
from .workloads import names as benchmark_names
from .workloads import tier as workload_tier


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=8,
                        help="mesh dimension (default 8)")
    parser.add_argument("--cbs", type=int, default=8,
                        help="number of cache banks (default 8)")
    parser.add_argument("--seed", type=int, default=0)


def _add_validation(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--validate", nargs="?", const=1, default=0, type=int,
        metavar="N",
        help="run conservation audits every N cycles (bare flag = the "
             "default interval; same as REPRO_VALIDATE)",
    )
    parser.add_argument(
        "--watchdog-cycles", type=int, default=0, metavar="N",
        help="stall-watchdog window in base cycles (0 = "
             "REPRO_WATCHDOG_CYCLES env or the model default)",
    )
    parser.add_argument(
        "--faults", metavar="SPEC",
        help="fault plan: a JSON file path, or inline JSON (a list of "
             "fault specs or {\"faults\": [...]}); same format as "
             "REPRO_FAULTS",
    )
    parser.add_argument(
        "--scheduler", choices=["dense", "active"], default="",
        help="tick discipline: 'active' skips workless components and "
             "fast-forwards quiescent gaps, 'dense' walks everything "
             "(the differential oracle); default = REPRO_SCHEDULER env "
             "or active — both are bit-identical",
    )
    parser.add_argument(
        "--engine", choices=["object", "vector"], default="",
        help="tick engine: 'object' is the per-object golden "
             "reference, 'vector' the struct-of-arrays batched engine; "
             "default = REPRO_ENGINE env or object — both produce "
             "bit-identical stats fingerprints",
    )
    parser.add_argument(
        "--telemetry", nargs="?", const=1, default=0, type=int,
        metavar="N",
        help="sample read-only telemetry probes every N cycles (bare "
             "flag = the default interval; same as REPRO_TELEMETRY); "
             "results keep the exact same stats fingerprint",
    )
    parser.add_argument(
        "--telemetry-out", default="results/telemetry", metavar="DIR",
        help="directory for telemetry export artifacts "
             "(default results/telemetry)",
    )


def _cmd_design(args: argparse.Namespace) -> int:
    if args.load:
        design = load_design(args.load)
        print(f"loaded {args.load}")
    else:
        design = design_equinox(
            args.width,
            args.cbs,
            SearchConfig(iterations_per_level=args.iterations,
                         seed=args.seed),
        )
    print(design.summary())
    if args.save:
        path = save_design(design, args.save)
        print(f"saved to {path}")
    return 0


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    faults = ()
    spec = getattr(args, "faults", None)
    if spec:
        from .noc.faults import parse_faults_arg

        faults = parse_faults_arg(spec)
    return ExperimentConfig(
        width=args.width,
        num_cbs=args.cbs,
        quota=args.quota,
        seed=args.seed,
        mcts_iterations=args.iterations,
        validate=getattr(args, "validate", 0),
        watchdog_cycles=getattr(args, "watchdog_cycles", 0),
        faults=faults,
        scheduler=getattr(args, "scheduler", ""),
        engine=getattr(args, "engine", ""),
        telemetry=getattr(args, "telemetry", 0),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.scheme, args.benchmark,
                            _experiment_config(args))
    lat = result.latency
    rows = [
        ("cycles", float(result.cycles)),
        ("IPC", result.ipc),
        ("execution (ns)", result.execution_ns),
        ("NoC energy (nJ)", result.energy_nj),
        ("EDP (nJ*ns)", result.edp),
        ("NoC area (mm^2)", result.area_mm2),
        ("reply bit share", result.reply_bits_fraction),
        ("request latency (ns)", lat.request_total),
        ("reply latency (ns)", lat.reply_total),
    ]
    print(f"{args.scheme} x {args.benchmark} "
          f"({args.width}x{args.width}, quota {args.quota})")
    print(format_table(("Metric", "Value"), rows))
    if result.telemetry is not None:
        from .telemetry import experiment_filename, write_json

        path = Path(args.telemetry_out) / experiment_filename(
            result.scheme, result.benchmark,
            result.telemetry["config_digest"],
        )
        write_json(path, result.telemetry)
        print(f"telemetry written to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    store = None
    if args.store:
        from .harness.store import resolve_store

        store = resolve_store(args.store)
    schemes = args.schemes or SCHEME_ORDER
    benchmarks = args.benchmarks or workload_tier(args.tier or "smoke")
    results = run_suite(schemes, benchmarks, _experiment_config(args),
                        progress=True, jobs=args.jobs,
                        cell_timeout=args.cell_timeout,
                        retries=args.retries,
                        journal=args.journal,
                        resume=args.resume,
                        store=store)
    for metric, label in (("cycles", "Execution time"),
                          ("energy_nj", "Energy"), ("edp", "EDP")):
        rows = []
        for bench in benchmarks:
            values = {s: getattr(results[(s, bench)], metric)
                      for s in schemes}
            base = schemes[0]
            normed = normalize(values, base)
            rows.append(tuple([bench] + [normed[s] for s in schemes]))
        print(f"\n{label} (normalised to {schemes[0]})")
        print(format_table(tuple(["Benchmark"] + list(schemes)), rows))
    cell_records = [
        results[(s, b)].telemetry
        for s in schemes for b in benchmarks
        if results[(s, b)].telemetry is not None
    ]
    if cell_records:
        from .harness.experiment import config_digest
        from .telemetry import sweep_filename, sweep_records, write_jsonl

        digest = config_digest(_experiment_config(args))
        path = Path(args.telemetry_out) / sweep_filename(digest)
        write_jsonl(
            path, sweep_records(cell_records, __version__, digest)
        )
        print(f"\ntelemetry written to {path} "
              f"({len(cell_records)} cells)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .harness.bench import (
        compare_bench,
        format_bench,
        load_bench,
        run_bench,
        write_bench,
    )

    data = run_bench(
        scenarios=args.scenarios or None,
        repeat=args.repeat,
        scheduler=args.scheduler,
        engine=args.engine,
    )
    baseline = None
    if args.baseline:
        baseline = load_bench(args.baseline)
    print(format_bench(data, baseline))
    path = write_bench(args.output, data)
    print(f"bench results written to {path}")
    if baseline is not None:
        violations = compare_bench(data, baseline,
                                   tolerance=args.tolerance)
        if violations:
            print(f"\nbench gate FAILED vs {args.baseline}:",
                  file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 1
        print(f"bench gate passed vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .harness import figures

    config = ExperimentConfig(
        width=args.width, num_cbs=args.cbs, seed=args.seed,
        quota=args.quota, mcts_iterations=args.iterations,
    )
    producers = {
        "table1": lambda: figures.table1(config),
        "fig4": figures.figure4,
        "fig5": figures.figure5,
        "fig7": lambda: figures.figure7(config),
        "fig11": lambda: figures.figure11(config),
        "sec66": lambda: figures.section66(config),
    }
    print(producers[args.name]().render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .harness.report import write_report

    path = write_report(args.results, args.output)
    print(f"report written to {path}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify import replay, run_profile

    if args.replay:
        try:
            reproduced = replay(args.replay)
        except (ValueError, OSError) as exc:
            # Invalid/truncated/unreadable artifacts are a usage error
            # (exit 2), distinct from "bug still reproduces" (exit 1).
            print(f"error: cannot replay {args.replay}: {exc}")
            return 2
        if reproduced:
            print(f"FAIL: {args.replay} still reproduces")
            return 1
        print(f"ok: {args.replay} no longer reproduces")
        return 0
    report = run_profile(
        args.profile,
        artifact_dir=args.artifact_dir,
        seed=args.seed,
        log=lambda line: print(line, flush=True),
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_sweepd_submit(args: argparse.Namespace) -> int:
    from .harness.bus import BusPolicy
    from .harness.bus import SqliteBus
    from .harness.runner import expand_grid
    from .harness.service import submit

    schemes = args.schemes or SCHEME_ORDER
    benchmarks = args.benchmarks or ["gaussian", "hotspot", "kmeans"]
    cells = expand_grid(schemes, benchmarks, _experiment_config(args),
                        reseed_cells=args.reseed_cells)
    policy = BusPolicy(
        retries=max(0, args.retries or 0),
        backoff_s=args.backoff,
        redelivery_limit=args.redelivery_limit,
    )
    bus = SqliteBus(args.bus, policy=policy)
    task_ids = submit(bus, cells)
    print(f"submitted {len(task_ids)} cells to {args.bus} "
          f"({len(schemes)} schemes x {len(benchmarks)} benchmarks, "
          f"retries={policy.retries})")
    return 0


def _cmd_sweepd_worker(args: argparse.Namespace) -> int:
    from .harness.service import (
        WorkerOptions,
        open_submitted_bus,
        worker_loop,
    )
    from .harness.store import resolve_store

    bus = open_submitted_bus(args.bus)
    store = resolve_store(args.store)
    options = WorkerOptions(
        lease_s=args.lease,
        heartbeat_s=args.heartbeat,
        cell_timeout=args.cell_timeout or 0.0,
        drain=not args.oneshot,
        max_cells=args.max_cells,
        chaos_kill_after=args.chaos_kill_after,
    )
    stats = worker_loop(
        bus, store=store, worker_id=args.name, options=options,
        log=lambda line: print(line, flush=True),
    )
    print(f"worker done: {stats.executed} executed, {stats.acked} acked "
          f"({stats.store_hits} store hits), {stats.failed} failed "
          f"({stats.dead} dead-lettered), {stats.stale} stale")
    return 0


def _cmd_sweepd_status(args: argparse.Namespace) -> int:
    import json as json_mod

    from .harness.service import (
        dead_letter_dump,
        open_submitted_bus,
        status,
    )

    bus = open_submitted_bus(args.bus)
    snapshot = status(bus)
    if args.json:
        print(json_mod.dumps(snapshot, indent=2, sort_keys=True))
    else:
        counts = snapshot["counts"]
        state = "complete" if snapshot["complete"] else "in progress"
        print(f"{args.bus}: {snapshot['cells']} cells, {state} "
              f"(pending {counts['pending']}, leased {counts['leased']}, "
              f"done {counts['done']}, dead {counts['dead']})")
        for letter in snapshot["dead_letters"]:
            print(f"  dead: {letter['task_id']} "
                  f"({letter['reason']}, {letter['failures']} failures, "
                  f"{letter['deliveries']} deliveries)")
    if args.dumps:
        for record in bus.dead_letters():
            print(dead_letter_dump(record))
    return 0


def _cmd_sweepd_requeue(args: argparse.Namespace) -> int:
    from .harness.service import open_submitted_bus, requeue_dead

    bus = open_submitted_bus(args.bus)
    moved = requeue_dead(bus, args.task or None)
    print(f"requeued {moved} dead-lettered cell(s) with a fresh "
          "retry budget")
    return 0


def _cmd_sweepd_query(args: argparse.Namespace) -> int:
    import json as json_mod

    from .harness.store import record_result, resolve_store

    store = resolve_store(args.store)
    if store is None:
        print("error: result store disabled (set --store or "
              "REPRO_STORE_DIR)", file=sys.stderr)
        return 2
    records = store.query(
        scheme=args.scheme, benchmark=args.benchmark, width=args.width,
    )
    if args.json:
        print(json_mod.dumps(records, indent=2, sort_keys=True))
        return 0
    if not records:
        print("no stored results match")
        return 1
    rows = []
    for record in records:
        result = record_result(record)
        if result is None:
            continue
        rows.append((
            record["scheme"], record["benchmark"],
            f"{record['width']}x{record['width']}",
            float(result.cycles), result.ipc,
            result.stats_fingerprint[:12],
        ))
    print(format_table(
        ("Scheme", "Benchmark", "Mesh", "Cycles", "IPC", "Fingerprint"),
        rows,
    ))
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("schemes:")
    for name in SCHEME_ORDER:
        print(f"  {name}")
    print("benchmarks:")
    for name in benchmark_names():
        print(f"  {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EquiNox (HPCA 2020) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_design = sub.add_parser("design", help="run the EquiNox design flow")
    _add_common(p_design)
    p_design.add_argument("--iterations", type=int, default=150,
                          help="MCTS iterations per tree level")
    p_design.add_argument("--save", help="write the design to a JSON file")
    p_design.add_argument("--load", help="load a design instead of searching")
    p_design.set_defaults(func=_cmd_design)

    p_run = sub.add_parser("run", help="run one scheme x benchmark")
    _add_common(p_run)
    p_run.add_argument("--scheme", default="EquiNox", choices=SCHEME_ORDER)
    p_run.add_argument("--benchmark", default="kmeans")
    p_run.add_argument("--quota", type=int, default=100)
    p_run.add_argument("--iterations", type=int, default=150)
    _add_validation(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="scheme x benchmark grid")
    _add_common(p_sweep)
    p_sweep.add_argument("--schemes", nargs="*", choices=SCHEME_ORDER)
    p_sweep.add_argument("--benchmarks", nargs="*")
    p_sweep.add_argument(
        "--tier", choices=sorted(WORKLOAD_TIERS), default=None,
        help="named benchmark tier used when --benchmarks is absent: "
             "'smoke' is the cheap CI trio (the default), 'full' the "
             "29-benchmark paper suite, 'mesh32' a representative "
             "6-benchmark slice for 32x32 scale-up sweeps",
    )
    p_sweep.add_argument("--quota", type=int, default=60)
    p_sweep.add_argument("--iterations", type=int, default=100)
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the sweep grid "
                              "(default 1 = serial)")
    p_sweep.add_argument("--cell-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock limit per cell attempt "
                              "(default: REPRO_CELL_TIMEOUT or unbounded)")
    p_sweep.add_argument("--retries", type=int, default=None, metavar="N",
                         help="retry failed cells up to N times with "
                              "backoff and fresh deterministic seeds "
                              "(default: REPRO_RETRIES or 0)")
    p_sweep.add_argument("--journal", metavar="PATH",
                         help="checkpoint completed cells to an "
                              "append-only JSON-lines journal")
    p_sweep.add_argument("--resume", action="store_true",
                         help="restore successful cells from --journal "
                              "instead of recomputing them")
    p_sweep.add_argument("--store", metavar="DIR",
                         help="content-addressed result store: hits "
                              "skip execution, fresh results are "
                              "recorded (default: off)")
    _add_validation(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_sweepd = sub.add_parser(
        "sweepd",
        help="distributed sweep service over a shared SQLite work queue",
    )
    sd = p_sweepd.add_subparsers(dest="sweepd_command", required=True)

    d_submit = sd.add_parser(
        "submit", help="enqueue a scheme x benchmark grid onto a bus"
    )
    _add_common(d_submit)
    d_submit.add_argument("--bus", required=True, metavar="PATH",
                          help="SQLite bus file (created if absent)")
    d_submit.add_argument("--schemes", nargs="*", choices=SCHEME_ORDER)
    d_submit.add_argument("--benchmarks", nargs="*")
    d_submit.add_argument("--quota", type=int, default=60)
    d_submit.add_argument("--iterations", type=int, default=100)
    d_submit.add_argument("--reseed-cells", action="store_true",
                          help="derive a per-cell seed instead of "
                               "sharing the base seed")
    d_submit.add_argument("--retries", type=int, default=0, metavar="N",
                          help="cell failures tolerated before "
                               "dead-lettering (deterministic reseed "
                               "per retry; default 0)")
    d_submit.add_argument("--backoff", type=float, default=0.05,
                          metavar="SECONDS",
                          help="redelivery backoff base after a "
                               "failure (default 0.05)")
    d_submit.add_argument("--redelivery-limit", type=int, default=5,
                          metavar="N",
                          help="extra crash deliveries tolerated "
                               "beyond the retry budget before a cell "
                               "is presumed poisonous (default 5)")
    _add_validation(d_submit)
    d_submit.set_defaults(func=_cmd_sweepd_submit)

    d_worker = sd.add_parser(
        "worker", help="lease and execute cells until the bus drains"
    )
    d_worker.add_argument("--bus", required=True, metavar="PATH")
    d_worker.add_argument("--store", metavar="DIR",
                          help="content-addressed result store "
                               "(default: REPRO_STORE_DIR or the user "
                               "cache dir; 'off' disables)")
    d_worker.add_argument("--name", metavar="ID",
                          help="worker id shown in logs and lease "
                               "records (default: worker-<pid>)")
    d_worker.add_argument("--lease", type=float, default=60.0,
                          metavar="SECONDS",
                          help="lease duration; a worker silent this "
                               "long is presumed dead (default 60)")
    d_worker.add_argument("--heartbeat", type=float, default=5.0,
                          metavar="SECONDS",
                          help="lease renewal period while executing "
                               "(default 5)")
    d_worker.add_argument("--cell-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock limit per cell attempt "
                               "(default: REPRO_CELL_TIMEOUT or "
                               "unbounded)")
    d_worker.add_argument("--max-cells", type=int, default=0,
                          metavar="N",
                          help="stop after N executed cells "
                               "(default: unlimited)")
    d_worker.add_argument("--oneshot", action="store_true",
                          help="exit when no lease is immediately "
                               "available instead of polling until "
                               "the sweep completes")
    # Test-only crash injection (see docs/DISTRIBUTED.md): SIGKILL
    # self right after taking the N-th lease.
    d_worker.add_argument("--chaos-kill-after", type=int, default=0,
                          help=argparse.SUPPRESS)
    d_worker.set_defaults(func=_cmd_sweepd_worker)

    d_status = sd.add_parser(
        "status", help="queue counts and dead letters for one bus"
    )
    d_status.add_argument("--bus", required=True, metavar="PATH")
    d_status.add_argument("--json", action="store_true",
                          help="machine-readable snapshot")
    d_status.add_argument("--dumps", action="store_true",
                          help="also print dead-letter tracebacks and "
                               "stall dumps")
    d_status.set_defaults(func=_cmd_sweepd_status)

    d_requeue = sd.add_parser(
        "requeue",
        help="return dead-lettered cells to the queue for replay",
    )
    d_requeue.add_argument("--bus", required=True, metavar="PATH")
    d_requeue.add_argument("--task", nargs="*", metavar="ID",
                           help="specific task ids (default: all dead "
                                "letters)")
    d_requeue.set_defaults(func=_cmd_sweepd_requeue)

    d_query = sd.add_parser(
        "query",
        help="answer design-space queries from the result store "
             "in O(lookup)",
    )
    d_query.add_argument("--store", metavar="DIR",
                         help="store location (default: REPRO_STORE_DIR "
                              "or the user cache dir)")
    d_query.add_argument("--scheme", choices=SCHEME_ORDER)
    d_query.add_argument("--benchmark")
    d_query.add_argument("--width", type=int,
                         help="mesh dimension filter (e.g. 16 for "
                              "16x16)")
    d_query.add_argument("--json", action="store_true")
    d_query.set_defaults(func=_cmd_sweepd_query)

    p_bench = sub.add_parser(
        "bench", help="run the perf scenarios; gate against a baseline"
    )
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="take the best of N runs (default 3)")
    p_bench.add_argument("--scheduler", choices=["dense", "active"],
                         default="active",
                         help="tick discipline to benchmark "
                              "(default active)")
    p_bench.add_argument("--engine", choices=["object", "vector"],
                         default=None,
                         help="force one tick engine for every scenario "
                              "(default: each scenario's own — the "
                              "*_vector twins run vectorised)")
    p_bench.add_argument("--scenarios", nargs="*", metavar="NAME",
                         help="subset of scenarios to run "
                              "(default: all)")
    p_bench.add_argument("--output", default="BENCH.json",
                         help="where to write the results "
                              "(default BENCH.json)")
    p_bench.add_argument("--baseline", metavar="PATH",
                         help="gate against this BENCH.json: exit 1 on "
                              "any checksum change or a cycles/s drop "
                              "past --tolerance")
    p_bench.add_argument("--tolerance", type=float, default=0.25,
                         metavar="FRAC",
                         help="allowed fractional cycles/s regression "
                              "(default 0.25)")
    p_bench.set_defaults(func=_cmd_bench)

    p_fig = sub.add_parser("figure", help="regenerate a light paper figure")
    _add_common(p_fig)
    p_fig.add_argument("name", choices=["table1", "fig4", "fig5", "fig7",
                                        "fig11", "sec66"])
    p_fig.add_argument("--quota", type=int, default=60)
    p_fig.add_argument("--iterations", type=int, default=100)
    p_fig.set_defaults(func=_cmd_figure)

    p_report = sub.add_parser(
        "report", help="collect results/ into one markdown report"
    )
    p_report.add_argument("--results", default="results")
    p_report.add_argument("--output", default="results/REPORT.md")
    p_report.set_defaults(func=_cmd_report)

    p_verify = sub.add_parser(
        "verify",
        help="property-based verification: fuzz configs, audit "
             "invariants, replay shrunk failures",
    )
    p_verify.add_argument(
        "--profile", choices=["fast", "deep"], default="fast",
        help="fuzzing budget: 'fast' is the tier-1 profile, 'deep' the "
             "dedicated CI job (default fast)",
    )
    p_verify.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed: decorrelates generated workload seeds, "
             "deterministic for a fixed value (default 0)",
    )
    p_verify.add_argument(
        "--artifact-dir", default="results/verify", metavar="DIR",
        help="where shrunk failure artifacts are written "
             "(default results/verify)",
    )
    p_verify.add_argument(
        "--replay", metavar="FILE",
        help="re-run one failure artifact instead of fuzzing; exits 1 "
             "if it still reproduces",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_list = sub.add_parser("list", help="show schemes and benchmarks")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
