"""Last-level cache bank (CB) model.

A CB accepts requests ejected from the request network (subject to a
finite transaction buffer — the source of the backpressure the paper's
Figure 10 discusses), serves hits after the L2 pipeline latency, sends
misses to its memory controller, and enqueues replies into its reply-
network NI.  A transaction occupies a buffer slot from acceptance until
its reply packet has begun injection, so a congested reply network
stalls request ejection and the congestion propagates backwards —
the parking-lot effect.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional, Tuple

from ..mem.controller import MemoryController
from ..mem.hbm import HbmTiming
from ..noc.types import PacketType
from ..workloads.profiles import WorkloadProfile
from .transaction import Transaction

DEFAULT_CAPACITY = 16
DEFAULT_L2_LATENCY = 12


class CacheBank:
    """One L2 bank + MC + HBM stack behind one NoC node."""

    def __init__(
        self,
        node: int,
        profile: WorkloadProfile,
        fabric: "object",
        seed: int,
        capacity: int = DEFAULT_CAPACITY,
        l2_latency: int = DEFAULT_L2_LATENCY,
        timing: Optional[HbmTiming] = None,
    ) -> None:
        self.node = node
        self.profile = profile
        self.fabric = fabric
        self.capacity = capacity
        self.l2_latency = l2_latency
        self.memory = MemoryController(timing)
        self._rng = random.Random((seed << 16) ^ (node * 40503 % 2**31))
        self._ready: List[Tuple[int, int, Transaction]] = []  # (cycle, seq, txn)
        self._seq = 0
        # Replies enqueued to the NI but not yet injecting: (txn, packet).
        self._in_flight: List[Tuple[Transaction, object]] = []
        self.occupancy = 0
        # Stats.
        self.requests_accepted = 0
        self.l2_hits = 0
        self.l2_misses = 0
        self.stall_cycles = 0  # cycles a request waited because we were full

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        self._release_injected()
        self._accept_requests(cycle)
        self._collect_memory(cycle)
        self._emit_replies(cycle)

    # ------------------------------------------------------------------
    def _accept_requests(self, cycle: int) -> None:
        while self.occupancy < self.capacity:
            transaction = self.fabric.pop_request(self.node)
            if transaction is None:
                return
            transaction.accepted = cycle
            self.occupancy += 1
            self.requests_accepted += 1
            hit = self._rng.random() < self.profile.l2_hit_rate
            transaction.l2_hit = hit
            if transaction.is_read:
                if hit:
                    self.l2_hits += 1
                    self._schedule_ready(cycle + self.l2_latency, transaction)
                else:
                    self.l2_misses += 1
                    self.memory.submit(
                        transaction, is_read=True,
                        row_hit=transaction.row_hit, cycle=cycle,
                    )
            else:
                # Writes are absorbed by the write-back L2 and acked after
                # the pipeline latency; a miss also spills a line to
                # memory (posted, consuming stack bandwidth only).
                if hit:
                    self.l2_hits += 1
                else:
                    self.l2_misses += 1
                    self.memory.submit(
                        ("writeback", transaction.tid), is_read=False,
                        row_hit=transaction.row_hit, cycle=cycle,
                    )
                self._schedule_ready(cycle + self.l2_latency, transaction)
        # Count stall pressure: a request was available but no capacity.
        if self.occupancy >= self.capacity:
            self.stall_cycles += 1

    def _schedule_ready(self, ready_cycle: int, transaction: Transaction) -> None:
        self._seq += 1
        heapq.heappush(self._ready, (ready_cycle, self._seq, transaction))

    def _collect_memory(self, cycle: int) -> None:
        for access in self.memory.tick(cycle):
            if isinstance(access.token, Transaction):
                self._schedule_ready(cycle, access.token)
            # Posted writebacks complete silently.

    def _emit_replies(self, cycle: int) -> None:
        while self._ready and self._ready[0][0] <= cycle:
            _, _, transaction = heapq.heappop(self._ready)
            ptype = (
                PacketType.READ_REPLY
                if transaction.is_read
                else PacketType.WRITE_REPLY
            )
            transaction.reply_sent = cycle
            packet = self.fabric.send_reply(
                self.node, transaction.pe, ptype, transaction
            )
            self._in_flight.append((transaction, packet))

    def _release_injected(self) -> None:
        """Free buffer slots of replies that have started injecting."""
        if not self._in_flight:
            return
        keep = []
        for transaction, packet in self._in_flight:
            if packet.injected is not None:
                self.occupancy -= 1
            else:
                keep.append((transaction, packet))
        self._in_flight = keep

    # ------------------------------------------------------------------
    def timer_only(self) -> bool:
        """Whether this bank can only be woken by its own timers.

        Requires the fabric to be quiescent (no request can arrive, no
        reply NI can start injecting between now and the next event);
        under that premise the bank's remaining work is entirely
        timer-driven and :meth:`next_event_cycle` bounds it.
        """
        return not self._in_flight

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle this bank can act (None = fully idle).

        Only meaningful when the fabric is quiescent and
        :meth:`timer_only` holds; ``_in_flight`` replies depend on NI
        injection progress, which is not a timer.
        """
        nxt: Optional[int] = None
        if self._ready:
            nxt = self._ready[0][0]
        mem = self.memory.next_event_cycle(cycle)
        if mem is not None and (nxt is None or mem < nxt):
            nxt = mem
        if nxt is None:
            return None
        return max(nxt, cycle + 1)

    def fast_forward(self, cycles: int) -> None:
        """Account ``cycles`` skipped no-op cycles.

        With the fabric quiescent no request can arrive, so the only
        per-cycle side effect a dense walk would have produced is the
        full-buffer stall counter.
        """
        if self.occupancy >= self.capacity:
            self.stall_cycles += cycles

    def idle(self) -> bool:
        return (
            self.occupancy == 0
            and not self._ready
            and not self._in_flight
            and self.memory.idle()
        )
