"""Memory transactions: the unit of work flowing PE -> CB -> memory -> PE."""

from __future__ import annotations

from typing import Optional


class Transaction:
    """One memory instruction's lifetime across the system.

    Timestamps are in base (PE-clock) cycles; per-network packet
    latencies are recorded by the networks themselves.
    """

    __slots__ = (
        "tid",
        "pe",
        "cb",
        "is_read",
        "row_hit",
        "issued",
        "accepted",
        "reply_sent",
        "completed",
        "l2_hit",
    )

    def __init__(
        self,
        tid: int,
        pe: int,
        cb: int,
        is_read: bool,
        row_hit: bool,
        issued: int,
    ) -> None:
        self.tid = tid
        self.pe = pe
        self.cb = cb
        self.is_read = is_read
        self.row_hit = row_hit
        self.issued = issued
        self.accepted: Optional[int] = None    # CB popped the request
        self.reply_sent: Optional[int] = None  # CB enqueued the reply
        self.completed: Optional[int] = None   # PE received the reply
        self.l2_hit: Optional[bool] = None

    @property
    def round_trip(self) -> int:
        if self.completed is None:
            raise ValueError(f"transaction {self.tid} incomplete")
        return self.completed - self.issued

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        op = "R" if self.is_read else "W"
        return f"Txn({self.tid} {op} pe{self.pe}->cb{self.cb})"
