"""Processing element (SM) model.

A PE is a memory-instruction source with finite MSHRs: it issues up to
one memory instruction per cycle according to its workload generator,
stalls when its MSHRs are full, and retires an instruction when the
matching reply returns.  A PE is *done* when its instruction quota is
exhausted and every outstanding reply has arrived — execution time is
the cycle the last PE finishes.

Inter-PE communication is (deliberately) absent: throughput processors
exhibit almost none (paper section 2.1).
"""

from __future__ import annotations

from typing import List, Optional

from ..noc.types import PacketType
from ..workloads.generator import RequestGenerator
from ..workloads.profiles import WorkloadProfile
from .transaction import Transaction

DEFAULT_MSHRS = 32


class ProcessingElement:
    """One SM: issues memory instructions, tracks outstanding replies."""

    def __init__(
        self,
        node: int,
        profile: WorkloadProfile,
        num_cbs: int,
        quota: int,
        seed: int,
        pe_index: int,
        mshrs: int = DEFAULT_MSHRS,
    ) -> None:
        self.node = node
        self.profile = profile
        self.quota = quota
        self.remaining = quota
        self.outstanding = 0
        self.mshrs = mshrs
        self.generator = RequestGenerator(profile, num_cbs, seed, pe_index)
        self.finished_cycle: Optional[int] = None
        self.stall_cycles = 0  # cycles blocked on full MSHRs or dependencies
        self._issued = 0
        self._stash = None  # generated request waiting on a dependency
        self._last: Optional[Transaction] = None  # most recently issued

    # ------------------------------------------------------------------
    def try_issue(self, cycle: int, tid: int,
                  cb_nodes: List[int]) -> Optional[Transaction]:
        """Maybe issue one memory instruction this cycle."""
        if self.remaining <= 0:
            return None
        if self.outstanding >= self.mshrs:
            self.stall_cycles += 1
            return None
        if self._stash is not None:
            request = self._stash
        else:
            request = self.generator.maybe_issue()
        if request is None:
            return None
        if request.dependent and self._last is not None and (
            self._last.completed is None
        ):
            # Dependent instruction: serialise on the previous reply.
            self._stash = request
            self.stall_cycles += 1
            return None
        self._stash = None
        self.remaining -= 1
        self.outstanding += 1
        self._issued += 1
        transaction = Transaction(
            tid=tid,
            pe=self.node,
            cb=cb_nodes[request.cb_index],
            is_read=request.is_read,
            row_hit=request.row_hit,
            issued=cycle,
        )
        self._last = transaction
        return transaction

    def timer_only(self) -> bool:
        """Whether this PE cannot act until an external event.

        True exactly when :meth:`try_issue` is a pure stall: quota
        exhausted, MSHRs full, or a stashed dependent instruction
        waiting on the previous reply.  In every other state the issue
        path consumes generator randomness each cycle, so those cycles
        must be simulated, not skipped.
        """
        if self.remaining <= 0:
            return True
        if self.outstanding >= self.mshrs:
            return True
        return (
            self._stash is not None
            and self._stash.dependent
            and self._last is not None
            and self._last.completed is None
        )

    def fast_forward(self, cycles: int) -> None:
        """Account ``cycles`` skipped cycles (only valid when timer-only).

        A timer-only PE with quota left is stalling (MSHRs or a
        dependency), so each skipped cycle increments ``stall_cycles``
        exactly as :meth:`try_issue` would have; a finished PE accrues
        nothing.
        """
        if self.remaining > 0:
            self.stall_cycles += cycles

    def receive_reply(self, transaction: Transaction, cycle: int) -> None:
        if transaction.pe != self.node:
            raise ValueError("reply delivered to the wrong PE")
        transaction.completed = cycle
        self.outstanding -= 1
        if self.outstanding < 0:
            raise RuntimeError("PE outstanding count went negative")
        if self.done and self.finished_cycle is None:
            self.finished_cycle = cycle

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.remaining == 0 and self.outstanding == 0

    @property
    def issued(self) -> int:
        return self._issued

    @staticmethod
    def request_type(transaction: Transaction) -> PacketType:
        return (
            PacketType.READ_REQUEST
            if transaction.is_read
            else PacketType.WRITE_REQUEST
        )
