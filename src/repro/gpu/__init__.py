"""GPU substrate: PEs, cache banks and the full-system model."""

from .cachebank import CacheBank
from .pe import ProcessingElement
from .system import SimulationStall, System, SystemConfig, SystemResult
from .transaction import Transaction

__all__ = [
    "CacheBank",
    "ProcessingElement",
    "SimulationStall",
    "System",
    "SystemConfig",
    "SystemResult",
    "Transaction",
]
