"""The full-chip model: PEs + cache banks + fabric + memory.

``System.run`` executes one benchmark on one scheme and returns a
:class:`SystemResult` with everything the harness needs: execution
cycles, IPC, per-network statistics, memory utilisation, and the
transaction population for latency analysis.

Termination: every PE exhausts its instruction quota and receives all
replies.  A watchdog raises :class:`SimulationStall` if nothing makes
progress for a configurable window (a protocol deadlock would
otherwise hang the harness silently); the exception carries a full
diagnostic dump — per-router occupancy, VC owners, NI backlogs, the
conservation-audit report and the oldest stuck packet's position.
With validation enabled (``SystemConfig.validate_interval`` /
``REPRO_VALIDATE``), every network is also audited periodically so a
credit leak or arbitration bug surfaces as a named violation long
before the watchdog window elapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..mem.hbm import HbmTiming
from ..noc.diagnostics import Validator, stall_dump, watchdog_cycles_from_env
from ..schemes.base import Fabric
from ..workloads.profiles import WorkloadProfile
from .cachebank import CacheBank
from .pe import ProcessingElement
from .transaction import Transaction

DEFAULT_QUOTA = 150
WATCHDOG_CYCLES = 20000


class SimulationStall(RuntimeError):
    """No progress for the watchdog window; carries a diagnostic dump."""

    def __init__(self, message: str, dump: str = "") -> None:
        self.dump = dump
        super().__init__(f"{message}\n{dump}" if dump else message)


@dataclass
class SystemConfig:
    """Per-run knobs of the full-system model."""

    quota: int = DEFAULT_QUOTA           # memory instructions per PE
    mshrs: int = 32
    cb_capacity: int = 16
    l2_latency: int = 12
    seed: int = 0
    max_cycles: int = 400000
    timing: Optional[HbmTiming] = None
    # Conservation-audit interval in base cycles (0 = off).  Audits are
    # read-only; enabling them must not change simulated behaviour.
    validate_interval: int = 0
    # Stall-watchdog window in base cycles (None = REPRO_WATCHDOG_CYCLES
    # env override, else the WATCHDOG_CYCLES default).
    watchdog_cycles: Optional[int] = None
    # Optional FaultInjector (noc.faults), already bound to the fabric;
    # its on_cycle hook fires due fail/heal events at base-cycle
    # boundaries, before any component ticks.
    fault_injector: Optional[object] = None
    # Optional telemetry registry (repro.telemetry.TelemetryRegistry),
    # sampled every ``telemetry.interval`` base cycles.  Probes are
    # read-only, so an enabled run stays bit-identical to a disabled
    # one; disabled costs one ``is None`` test per cycle.
    telemetry: Optional[object] = None


@dataclass
class SystemResult:
    """Outcome of one full-system run."""

    cycles: int
    instructions: int
    transactions: List[Transaction]
    fabric: Fabric
    pe_stall_cycles: int
    cb_stall_cycles: int

    @property
    def ipc(self) -> float:
        """Memory instructions completed per cycle (whole chip)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def mean_round_trip(self) -> float:
        done = [t for t in self.transactions if t.completed is not None]
        if not done:
            return 0.0
        return sum(t.round_trip for t in done) / len(done)


class System:
    """One scheme x workload instance, ready to run."""

    def __init__(
        self,
        fabric: Fabric,
        profile: WorkloadProfile,
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.fabric = fabric
        self.profile = profile
        self.config = config or SystemConfig()
        cfg = self.config
        placement = list(fabric.placement)
        self.pes: Dict[int, ProcessingElement] = {}
        for index, node in enumerate(fabric.pes):
            self.pes[node] = ProcessingElement(
                node=node,
                profile=profile,
                num_cbs=len(placement),
                quota=cfg.quota,
                seed=cfg.seed,
                pe_index=index,
                mshrs=cfg.mshrs,
            )
        self.banks: Dict[int, CacheBank] = {
            node: CacheBank(
                node=node,
                profile=profile,
                fabric=fabric,
                seed=cfg.seed,
                capacity=cfg.cb_capacity,
                l2_latency=cfg.l2_latency,
                timing=cfg.timing,
            )
            for node in placement
        }
        self.transactions: List[Transaction] = []
        self.cycle = 0
        # Base cycles skipped by quiescence fast-forward (active
        # scheduler only; 0 under the dense oracle by construction).
        self.fast_forwarded_cycles = 0
        telemetry = cfg.telemetry
        if telemetry is not None and not telemetry.enabled:
            telemetry = None  # NullTelemetry: nothing to sample
        self.telemetry = telemetry
        if telemetry is not None:
            self._register_telemetry(telemetry)

    # ------------------------------------------------------------------
    def _register_telemetry(self, registry: "object") -> None:
        """Register system-level probes (fabric and NI probes included).

        Skipped fast-forward gaps are not sampled: every sample lands on
        a simulated base cycle, so the series are deterministic for a
        fixed (seed, config, scheduler).
        """
        self.fabric.register_telemetry(registry)
        for node, bank in self.banks.items():
            registry.register_series(
                f"hbm.cb{node}.queue_depth",
                lambda bank=bank: bank.memory.queue_depth(),
            )
        registry.register_series(
            "hbm.queue_depth",
            lambda: sum(
                bank.memory.queue_depth() for bank in self.banks.values()
            ),
        )
        registry.register_series(
            "pe.instructions_issued",
            lambda: sum(pe.issued for pe in self.pes.values()),
        )
        registry.register_final(
            "system.fast_forwarded_cycles",
            lambda: self.fast_forwarded_cycles,
        )
        registry.register_final("system.cycles", lambda: self.cycle)
        registry.register_final(
            "system.pe_stall_cycles",
            lambda: sum(pe.stall_cycles for pe in self.pes.values()),
        )
        registry.register_final(
            "system.cb_stall_cycles",
            lambda: sum(bank.stall_cycles for bank in self.banks.values()),
        )

    # ------------------------------------------------------------------
    def _skippable_cycles(
        self,
        cycle: int,
        pes: List[ProcessingElement],
        banks: List[CacheBank],
        injector: Optional[object],
        validator: Optional[Validator],
        last_progress_seen: int,
        watchdog_window: int,
        max_cycles: int,
    ) -> int:
        """How many upcoming base cycles are provable no-ops (0 = none).

        A cycle is skippable when every network is quiescent and every
        PE and CB is timer-only, so the next state change comes from a
        computable event: a memory/L2 completion, a scheduled fault, a
        periodic audit, or the watchdog deadline.  The skip lands
        *exactly on* the earliest such event, so the landed cycle is
        simulated identically to the dense run — including a watchdog
        trip at the very same cycle a dense run would report.
        """
        if not self.fabric.quiescent():
            return 0
        for pe in pes:
            if not pe.timer_only():
                return 0
        for bank in banks:
            if not bank.timer_only():
                return 0
        # First cycle the watchdog comparison can fire (or extend).
        nxt = last_progress_seen + watchdog_window + 1
        if nxt > max_cycles:
            nxt = max_cycles
        for bank in banks:
            ev = bank.next_event_cycle(cycle)
            if ev is not None and ev < nxt:
                nxt = ev
        if injector is not None:
            ev = injector.next_event_cycle()
            if ev is not None and ev < nxt:
                nxt = ev
        if validator is not None:
            audit = cycle + validator.interval - cycle % validator.interval
            if audit < nxt:
                nxt = audit
        return nxt - cycle - 1

    def run(self) -> SystemResult:
        cfg = self.config
        cb_nodes = list(self.fabric.placement)
        pes = list(self.pes.values())
        banks = list(self.banks.values())
        tid = 0
        last_progress_seen = 0
        watchdog_window = cfg.watchdog_cycles or watchdog_cycles_from_env(
            WATCHDOG_CYCLES
        )
        networks = [net for net, _ratio, _role in self.fabric.networks]
        validator: Optional[Validator] = None
        if cfg.validate_interval > 0:
            validator = Validator(networks, interval=cfg.validate_interval)
        injector = cfg.fault_injector
        fast_forward = self.fabric.scheduler == "active"
        telemetry = self.telemetry
        t_interval = telemetry.interval if telemetry is not None else 0
        while self.cycle < cfg.max_cycles:
            self.cycle += 1
            cycle = self.cycle
            # 0. Fault injection fires between ticks, so every audit
            #    invariant holds when faults are applied or healed.
            if injector is not None:
                injector.on_cycle(cycle)
            # 1. PEs issue new requests and absorb replies.
            for pe in pes:
                transaction = pe.try_issue(cycle, tid + 1, cb_nodes)
                if transaction is not None:
                    tid += 1
                    self.transactions.append(transaction)
                    self.fabric.send_request(
                        transaction.pe,
                        transaction.cb,
                        ProcessingElement.request_type(transaction),
                        transaction,
                    )
                while True:
                    reply = self.fabric.pop_reply(pe.node)
                    if reply is None:
                        break
                    pe.receive_reply(reply, cycle)
            # 2. Networks move flits.
            self.fabric.tick()
            # 3. CBs accept requests, talk to memory, emit replies.
            for bank in banks:
                bank.tick(cycle)
            # 3.5 Telemetry sampling (read-only, interval-gated).
            if telemetry is not None and cycle % t_interval == 0:
                telemetry.sample(cycle)
            # 4. Periodic conservation audit (validation mode only).
            if validator is not None:
                validator.on_cycle(cycle)
            # 5. Termination and watchdog.
            if all(pe.done for pe in pes):
                break
            progress = self.fabric.last_progress()
            if progress > last_progress_seen:
                last_progress_seen = progress
            elif cycle - last_progress_seen > watchdog_window:
                if not any(
                    not bank.memory.idle() for bank in banks
                ):
                    dump = (
                        validator.dump() if validator is not None
                        else stall_dump(networks)
                    )
                    raise SimulationStall(
                        f"no network progress since base cycle "
                        f"{last_progress_seen} (watchdog window "
                        f"{watchdog_window})",
                        dump=dump,
                    )
                last_progress_seen = cycle  # memory still working; extend
            # 6. Quiescence fast-forward (active scheduler): when the
            #    fabric is empty and every PE and CB is waiting on a
            #    timer, every cycle until the next timer event is a
            #    provable no-op — jump the clock instead of spinning.
            if fast_forward:
                skip = self._skippable_cycles(
                    cycle, pes, banks, injector, validator,
                    last_progress_seen, watchdog_window, cfg.max_cycles,
                )
                if skip > 0:
                    self.cycle += skip
                    self.fast_forwarded_cycles += skip
                    self.fabric.fast_forward(skip)
                    for pe in pes:
                        pe.fast_forward(skip)
                    for bank in banks:
                        bank.fast_forward(skip)
        if telemetry is not None:
            # Final-state sample (deduplicated if the loop just sampled).
            telemetry.sample(self.cycle)
        return SystemResult(
            cycles=self.cycle,
            instructions=sum(pe.issued for pe in pes),
            transactions=self.transactions,
            fabric=self.fabric,
            pe_stall_cycles=sum(pe.stall_cycles for pe in pes),
            cb_stall_cycles=sum(bank.stall_cycles for bank in banks),
        )
