"""(8) ring_router: the ring-router NoC baseline.

Wu et al., "A Ring Router Microarchitecture for Network-on-Chips":
every node is a ring *station* on two counter-rotating rings that visit
the whole chip in serpentine order.  A station forwards one flit per
cycle along its ring (the single-cycle traversal of the paper's
bufferless bypass path); a flit that loses arbitration waits in the
station's small side buffer — here the input VC FIFO of the loop link.
Injection picks the rotation with the shorter forward distance.

Interposer mapping: the serpentine closing link (last station back to
the first) is a long express wire; on the interposer model it is a
single-cycle interposer trace, the same physical resource as an
EquiNox CB-to-EIR link.  Request and reply traffic ride separate ring
pairs, and the two VCs per station implement the wrap-point dateline
(see :mod:`repro.noc.loops`), not a traffic-class split.
"""

from __future__ import annotations

from .base import SchemeConfig


def config() -> SchemeConfig:
    return SchemeConfig(
        name="ring_router",
        network_type="separate",
        placement_name="diamond",
        topology="ring",
    )
