"""(1) SingleBase: the single-network baseline.

Request and reply traffic share one physical mesh; a VC is dedicated to
each message class (2 VCs/port total, Table 1) for protocol deadlock
freedom.  CB placement is Diamond and routing is minimal adaptive, as
in the paper's baseline.
"""

from __future__ import annotations

from .base import SchemeConfig


def config() -> SchemeConfig:
    return SchemeConfig(
        name="SingleBase",
        network_type="single",
        placement_name="diamond",
    )
