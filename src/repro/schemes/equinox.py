"""(7) EquiNox: the proposed scheme.

Separate networks, N-Queen CB placement chosen by the hot-zone scoring
policy, EIR groups selected by MCTS, and the modified five-buffer CB NI
with shortest-path buffer selection.  The EIR links live in the
interposer RDL and each selected EIR router gains one input port.
"""

from __future__ import annotations

from .base import SchemeConfig


def config() -> SchemeConfig:
    return SchemeConfig(
        name="EquiNox",
        network_type="separate",
        placement_name="nqueen",
        equinox=True,
    )
