"""Scheme configuration and the fabric that realises it.

A :class:`SchemeConfig` captures everything that distinguishes the seven
compared designs (paper section 5): single vs separate physical
networks, VC monopolisation, the interposer CMesh overlay, the DA2Mesh
narrow reply subnets, MultiPort CB routers, and EquiNox's EIRs.

A :class:`Fabric` instantiates the networks and NIs for one
configuration and provides the transaction-level send/receive interface
consumed by the GPU system model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.equinox import EquiNoxDesign
from ..core.grid import Grid
from ..noc.interface import (
    EquiNoxInterface,
    MultiPortInterface,
    NetworkInterface,
)
from ..noc.loops import (
    LoopInterface,
    LoopState,
    ring_loops,
    routerless_loops,
)
from ..noc.network import Network, network_class, resolve_engine, resolve_scheduler
from ..noc.topology import CmeshEnvelope, CmeshMap, build_cmesh
from ..noc.types import Packet, PacketType, packet_flits

BASE_FREQUENCY_GHZ = 1.126
"""PE / NoC base clock (Table 1)."""


@dataclass(frozen=True)
class SchemeConfig:
    """Static description of one compared scheme."""

    name: str
    network_type: str  # "single" | "separate"
    placement_name: str = "diamond"
    flit_bytes: int = 16
    num_vcs: int = 2
    routing: str = "oddeven"
    monopolize: bool = False
    monopolize_injection: bool = False
    cmesh: bool = False
    cmesh_flit_bytes: int = 32
    cmesh_threshold: int = 3
    da2mesh: bool = False
    da2mesh_subnets: int = 8
    da2mesh_clock_ratio: float = 2.5
    multiport: int = 1
    equinox: bool = False
    # Physical topology: "mesh" (all paper schemes), or the loop
    # baselines "ring" (Wu's ring-router NoC) and "routerless" (Lin's
    # loop-covered routerless NoC).
    topology: str = "mesh"

    def __post_init__(self) -> None:
        if self.network_type not in ("single", "separate"):
            raise ValueError("network_type must be 'single' or 'separate'")
        if self.equinox and self.network_type != "separate":
            raise ValueError("EquiNox is a separate-network scheme")
        if self.da2mesh and self.network_type != "separate":
            raise ValueError("DA2Mesh splits the reply network of a "
                             "separate-network design")
        if self.topology not in ("mesh", "ring", "routerless"):
            raise ValueError(
                "topology must be 'mesh', 'ring' or 'routerless'"
            )
        if self.topology != "mesh":
            if self.network_type != "separate":
                raise ValueError(
                    "loop topologies use separate request/reply networks"
                )
            if (
                self.cmesh
                or self.da2mesh
                or self.multiport > 1
                or self.equinox
                or self.monopolize
                or self.monopolize_injection
            ):
                raise ValueError(
                    "loop topologies cannot combine with mesh overlays "
                    "or NI variants"
                )
            if self.num_vcs < 2:
                raise ValueError(
                    "loop topologies need >= 2 VCs for the dateline"
                )


class Fabric:
    """All networks and NIs of one scheme instance on one grid."""

    def __init__(
        self,
        config: SchemeConfig,
        grid: Grid,
        placement: Sequence[int],
        equinox_design: Optional[EquiNoxDesign] = None,
        max_packet_flits: Optional[int] = None,
        scheduler: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.config = config
        self.grid = grid
        # Tick discipline shared by every network of this fabric
        # ("active" skips workless components, "dense" is the oracle).
        self.scheduler = resolve_scheduler(scheduler)
        # Tick engine shared by every network of this fabric ("object"
        # is the golden reference; "vector" the bit-identical SoA
        # engine).
        self.engine = resolve_engine(engine)
        NetCls = network_class(self.engine)
        self.placement = tuple(placement)
        self.equinox_design = equinox_design
        self.cb_set = frozenset(placement)
        self.pes = tuple(n for n in grid.nodes() if n not in self.cb_set)
        self._pid = 0
        # networks: (network, clock_ratio, role) with role in
        # {"request", "reply", "both", "cmesh"}.
        self.networks: List[Tuple[Network, float, str]] = []
        self._ratio_acc: List[float] = []

        data_flits = packet_flits(PacketType.READ_REPLY, config.flit_bytes)
        vc_cap = max_packet_flits or data_flits

        # --- Loop topologies (ring / routerless) -------------------------
        # Two separate loop-wired networks.  The VC pair implements the
        # loop dateline, not a traffic-class partition, so packets are
        # all class 0 and vc_classes pins injection to VC 0 (the
        # dateline's precondition); routers pick the dateline VC via
        # route_override.
        self.loop_states: Dict[str, LoopState] = {}
        if config.topology != "mesh":
            if self.engine != "object":
                raise ValueError(
                    f"topology {config.topology!r} is only implemented by "
                    f"the object engine (got {self.engine!r})"
                )
            make_loops = (
                ring_loops if config.topology == "ring" else routerless_loops
            )
            self.request_net = NetCls(
                "request",
                grid,
                config.flit_bytes,
                num_vcs=config.num_vcs,
                vc_capacity=vc_cap,
                routing_algorithm=config.routing,
                vc_classes=[(0,)],
                scheduler=self.scheduler,
                loops=make_loops(grid),
            )
            self._add_network(self.request_net, 1.0, "request")
            self.reply_net = NetCls(
                "reply",
                grid,
                config.flit_bytes,
                num_vcs=config.num_vcs,
                vc_capacity=vc_cap,
                routing_algorithm=config.routing,
                vc_classes=[(0,)],
                scheduler=self.scheduler,
                loops=make_loops(grid),
            )
            self._add_network(self.reply_net, 1.0, "reply")
            self.loop_states["request"] = LoopState(self.request_net)
            self.loop_states["reply"] = LoopState(self.reply_net)
        elif config.network_type == "single":
            vc_classes = [(0,), (1,)]
            net = NetCls(
                "single",
                grid,
                config.flit_bytes,
                num_vcs=config.num_vcs,
                vc_capacity=vc_cap,
                routing_algorithm=config.routing,
                vc_classes=vc_classes,
                monopolize=config.monopolize,
                monopolize_injection=config.monopolize_injection,
                scheduler=self.scheduler,
            )
            self.request_net = net
            self.reply_net = net
            self._add_network(net, 1.0, "both")
        else:
            self.request_net = NetCls(
                "request",
                grid,
                config.flit_bytes,
                num_vcs=config.num_vcs,
                vc_capacity=vc_cap,
                routing_algorithm=config.routing,
                vc_classes=[tuple(range(config.num_vcs))],
                scheduler=self.scheduler,
            )
            self._add_network(self.request_net, 1.0, "request")
            if not config.da2mesh:
                self.reply_net = NetCls(
                    "reply",
                    grid,
                    config.flit_bytes,
                    num_vcs=config.num_vcs,
                    vc_capacity=vc_cap,
                    routing_algorithm=config.routing,
                    vc_classes=[tuple(range(config.num_vcs))],
                    scheduler=self.scheduler,
                )
                self._add_network(self.reply_net, 1.0, "reply")
            else:
                self.reply_net = None

        # --- DA2Mesh reply subnets --------------------------------------
        self.reply_subnets: List[Network] = []
        if config.da2mesh:
            narrow_bytes = max(1, config.flit_bytes // config.da2mesh_subnets)
            # Buffers keep the same *bit* budget as the wide network, so
            # a narrow VC holds few narrow flits and a data packet spans
            # many routers — the serialisation cost the paper describes.
            narrow_cap = max(
                2, vc_cap * narrow_bytes // config.flit_bytes + 1
            )
            narrow_eject = 2 * packet_flits(PacketType.READ_REPLY, narrow_bytes)
            for i in range(config.da2mesh_subnets):
                subnet = NetCls(
                    f"reply-sub{i}",
                    grid,
                    narrow_bytes,
                    num_vcs=config.num_vcs,
                    vc_capacity=narrow_cap,
                    routing_algorithm=config.routing,
                    vc_classes=[tuple(range(config.num_vcs))],
                    clock_ratio=config.da2mesh_clock_ratio,
                    eject_capacity=narrow_eject,
                    scheduler=self.scheduler,
                )
                self.reply_subnets.append(subnet)
                self._add_network(subnet, config.da2mesh_clock_ratio, "reply")
        self._da2_rr: Dict[int, int] = {cb: 0 for cb in placement}
        self._da2_pop_rr: Dict[int, int] = {}

        # --- Interposer CMesh overlay ------------------------------------
        self.cmesh_net: Optional[Network] = None
        self.cmap: Optional[CmeshMap] = None
        if config.cmesh:
            data_flits_cm = packet_flits(
                PacketType.READ_REPLY, config.cmesh_flit_bytes
            )
            self.cmesh_net, self.cmap, self._cmesh_eject = build_cmesh(
                grid,
                config.cmesh_flit_bytes,
                num_vcs=config.num_vcs,
                vc_capacity=data_flits_cm,
                routing_algorithm=config.routing,
                vc_classes=[(0,), (1,)],
                scheduler=self.scheduler,
                engine=self.engine,
            )
            self._add_network(
                self.cmesh_net, 1.0, "cmesh"
            )
            # A CB tile's mesh NI and CMesh NI share one serialisation
            # core at the *base* width: the ported CPU overlay adds
            # injection paths, it does not widen the GPU's L2 datapath
            # (unlike MultiPort/EquiNox, which re-engineer the CB NI).
            # PE tiles keep independent cores — their small requests
            # never stress the NI datapath in any scheme.
            from ..noc.interface import SerializationCore

            self._cb_cores: Dict[int, SerializationCore] = {
                cb: SerializationCore() for cb in placement
            }
            self.cmesh_nis: Dict[int, NetworkInterface] = {}
            for tile in grid.nodes():
                cnode = self.cmap.cmesh_node(tile)
                if tile in self._cb_cores:
                    self.cmesh_nis[tile] = NetworkInterface(
                        self.cmesh_net, cnode, core=self._cb_cores[tile],
                        core_bytes=config.flit_bytes,
                    )
                else:
                    self.cmesh_nis[tile] = NetworkInterface(
                        self.cmesh_net, cnode
                    )

        # --- NIs ----------------------------------------------------------
        def _cb_core(cb: int):
            if self.cmesh_net is None:
                return None
            return self._cb_cores[cb]

        def _cb_core_bytes() -> int:
            from ..noc.interface import BASE_CORE_BYTES

            if self.cmesh_net is not None:
                return config.flit_bytes
            return BASE_CORE_BYTES

        if config.topology != "mesh":
            # Loop NIs stamp the selected lane (wire selection) at
            # injection; everything downstream is lane-following.
            self.request_nis: Dict[int, NetworkInterface] = {
                pe: LoopInterface(
                    self.request_net, pe, self.loop_states["request"]
                )
                for pe in self.pes
            }
            self.reply_nis: Dict[int, object] = {
                cb: LoopInterface(
                    self.reply_net, cb, self.loop_states["reply"]
                )
                for cb in placement
            }
            self._pop_toggle = {}
            return
        self.request_nis = {
            pe: NetworkInterface(self.request_net, pe) for pe in self.pes
        }
        self.reply_nis = {}
        for cb in placement:
            if config.da2mesh:
                # One NI per subnet, but a single serialisation core per
                # CB: the MC-side NI logic is shared hardware.
                from ..noc.interface import SerializationCore

                shared_core = SerializationCore()
                self.reply_nis[cb] = [
                    NetworkInterface(
                        subnet, cb, core=shared_core,
                        core_bytes=config.flit_bytes,
                    )
                    for subnet in self.reply_subnets
                ]
            elif config.equinox:
                assert equinox_design is not None
                self.reply_nis[cb] = EquiNoxInterface(
                    self.reply_net, cb, equinox_design.eir_design
                )
            elif config.multiport > 1:
                self.reply_nis[cb] = MultiPortInterface(
                    self.reply_net, cb, num_ports=config.multiport
                )
            else:
                self.reply_nis[cb] = NetworkInterface(
                    self.reply_net, cb, core=_cb_core(cb),
                    core_bytes=_cb_core_bytes(),
                )
            if config.multiport > 1:
                # MultiPort also widens request-network ejection at CBs.
                for _ in range(config.multiport - 1):
                    self.request_net.add_eject_port(cb)
        self._pop_toggle: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def supports_faults(self) -> bool:
        """Whether fault plans may target this fabric.

        Loop topologies have no adaptive detour to route around a dead
        link — a severed loop strands every lane through it — so fault
        injection is a declared non-capability there, enforced where
        plans are armed (``run_with_fabric``) and generated
        (``repro.verify``).
        """
        return self.config.topology == "mesh"

    # ------------------------------------------------------------------
    def _add_network(self, net: Network, ratio: float, role: str) -> None:
        self.networks.append((net, ratio, role))
        self._ratio_acc.append(0.0)

    def _next_pid(self) -> int:
        self._pid += 1
        return self._pid

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _use_cmesh(self, src: int, dst: int,
                   mesh_ni: Optional[NetworkInterface] = None) -> bool:
        """Whether a packet should take the interposer overlay.

        Distance-eligible traffic (>= threshold mesh hops) prefers the
        CMesh, but falls back to the base mesh when the overlay-side NI
        is more backed up — the load-balanced injection policy of
        interposer-overlay designs.
        """
        if (
            self.cmesh_net is None
            or self.grid.hops(src, dst) < self.config.cmesh_threshold
        ):
            return False
        if mesh_ni is None:
            return True
        # Headroom rule: take the overlay while its NI has at most one
        # packet waiting; once the overlay backs up, spill to the mesh.
        return self.cmesh_nis[src].pressure() <= 2

    def send_request(self, pe: int, cb: int, ptype: PacketType,
                     token: object) -> Packet:
        """Inject a request packet from a PE toward a CB."""
        if self._use_cmesh(pe, cb, self.request_nis[pe]):
            return self._send_cmesh(pe, cb, ptype, token, vc_class=0)
        size = packet_flits(ptype, self.request_net.flit_bytes)
        vc_class = 0
        packet = Packet(self._next_pid(), ptype, pe, cb, size, 0,
                        vc_class=vc_class, token=token)
        self.request_nis[pe].enqueue(packet)
        return packet

    def send_reply(self, cb: int, pe: int, ptype: PacketType,
                   token: object) -> Packet:
        """Inject a reply packet from a CB toward a PE."""
        if self.cmesh_net is not None and self._use_cmesh(
            cb, pe, self.reply_nis[cb]
        ):
            return self._send_cmesh(cb, pe, ptype, token, vc_class=1)
        if self.config.da2mesh:
            idx = self._da2_rr[cb]
            self._da2_rr[cb] = (idx + 1) % len(self.reply_subnets)
            subnet = self.reply_subnets[idx]
            ni = self.reply_nis[cb][idx]
            size = packet_flits(ptype, subnet.flit_bytes)
            packet = Packet(self._next_pid(), ptype, cb, pe, size, 0,
                            vc_class=0, token=token)
            ni.enqueue(packet)
            return packet
        vc_class = 1 if self.config.network_type == "single" else 0
        size = packet_flits(ptype, self.reply_net.flit_bytes)
        packet = Packet(self._next_pid(), ptype, cb, pe, size, 0,
                        vc_class=vc_class, token=token)
        self.reply_nis[cb].enqueue(packet)
        return packet

    def _send_cmesh(self, src: int, dst: int, ptype: PacketType,
                    token: object, vc_class: int) -> Packet:
        assert self.cmesh_net is not None and self.cmap is not None
        envelope = CmeshEnvelope(real_src=src, real_dst=dst, inner=token)
        csrc = self.cmap.cmesh_node(src)
        cdst = self.cmap.cmesh_node(dst)
        size = packet_flits(ptype, self.cmesh_net.flit_bytes)
        packet = Packet(self._next_pid(), ptype, csrc, cdst, size, 0,
                        vc_class=vc_class, token=envelope)
        self.cmesh_nis[src].enqueue(packet)
        return packet

    # ------------------------------------------------------------------
    # Receiving (transaction level; network stats already recorded)
    # ------------------------------------------------------------------
    def pop_request(self, cb: int) -> Optional[object]:
        """One arrived request transaction at ``cb``, if any."""
        toggle = self._pop_toggle.get(cb, 0)
        sources = [self._pop_request_mesh, self._pop_cmesh]
        for k in range(len(sources)):
            token = sources[(toggle + k) % len(sources)](cb)
            if token is not None:
                self._pop_toggle[cb] = (toggle + k + 1) % len(sources)
                return token
        return None

    def _pop_request_mesh(self, cb: int) -> Optional[object]:
        packet = self.request_net.pop_delivered(cb)
        return packet.token if packet else None

    def _pop_cmesh(self, tile: int) -> Optional[object]:
        if self.cmesh_net is None:
            return None
        cnode = self.cmap.cmesh_node(tile)
        port = self._cmesh_eject[(cnode, self.cmap.local_index(tile))]
        packet = self.cmesh_net.pop_delivered(cnode, port=port)
        return packet.token.inner if packet else None

    def pop_reply(self, pe: int) -> Optional[object]:
        """One arrived reply transaction at ``pe``, if any."""
        if self.config.da2mesh:
            start = self._da2_pop_rr.get(pe, 0)
            n = len(self.reply_subnets)
            for k in range(n):
                subnet = self.reply_subnets[(start + k) % n]
                packet = subnet.pop_delivered(pe)
                if packet is not None:
                    self._da2_pop_rr[pe] = (start + k + 1) % n
                    return packet.token
        else:
            packet = self.reply_net.pop_delivered(pe)
            if packet is not None:
                return packet.token
        token = self._pop_cmesh(pe)
        if token is not None:
            return token
        return None

    # ------------------------------------------------------------------
    # Clocking and quiescence
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance every network by one base cycle (honouring ratios)."""
        for i, (net, ratio, _role) in enumerate(self.networks):
            self._ratio_acc[i] += ratio
            while self._ratio_acc[i] >= 1.0:
                net.tick()
                self._ratio_acc[i] -= 1.0

    def idle(self) -> bool:
        return all(net.idle() for net, _r, _role in self.networks)

    def quiescent(self) -> bool:
        """Every network is provably empty (fast-forward eligible)."""
        return all(net.quiescent() for net, _r, _role in self.networks)

    def fast_forward(self, cycles: int) -> None:
        """Skip ``cycles`` base cycles of a fully quiescent fabric.

        Replays the clock-ratio accumulator arithmetic cycle by cycle
        (cheap: no component is visited) so the float accumulator state
        and every network's ``cycle``/``stats.cycles`` counters end up
        bit-identical to ticking the same span of empty cycles.
        """
        acc = self._ratio_acc
        networks = self.networks
        for _ in range(cycles):
            for i, (net, ratio, _role) in enumerate(networks):
                acc[i] += ratio
                while acc[i] >= 1.0:
                    net.skip_cycle()
                    acc[i] -= 1.0

    def last_progress(self) -> int:
        """Most recent base cycle any network moved a flit (approximate)."""
        out = 0
        for net, ratio, _role in self.networks:
            out = max(out, int(net.last_progress / ratio))
        return out

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def register_telemetry(self, registry: "object") -> None:
        """Register every network's probes plus per-CB reply backlogs.

        Network prefixes are ``net.<name>`` (``net.request``,
        ``net.reply``, ``net.reply-sub3``, ...); NIs register through
        their network (EquiNox CB NIs contribute the per-EIR series).
        All probes are read-only: telemetry cannot perturb a run.
        """
        for net, _ratio, _role in self.networks:
            net.register_telemetry(registry, f"net.{net.name}")
        for cb in self.placement:
            registry.register_series(
                f"cb{cb}.reply_backlog",
                lambda cb=cb: self.reply_backlog(cb),
            )

    # ------------------------------------------------------------------
    # Stats access
    # ------------------------------------------------------------------
    def request_networks(self) -> List[Tuple[Network, float]]:
        return [
            (net, ratio)
            for net, ratio, role in self.networks
            if role in ("request", "both", "cmesh")
        ]

    def reply_networks(self) -> List[Tuple[Network, float]]:
        return [
            (net, ratio)
            for net, ratio, role in self.networks
            if role in ("reply", "both", "cmesh")
        ]

    def networks_by_role(self, role: str) -> List[Network]:
        """Networks a fault role name applies to (fault injection).

        ``reply``/``request`` match the corresponding dedicated networks
        plus a shared single network; ``any`` matches everything,
        overlays included.
        """
        roles = {
            "reply": ("reply", "both"),
            "request": ("request", "both"),
            "any": ("request", "reply", "both", "cmesh"),
        }[role]
        return [
            net for net, _ratio, net_role in self.networks
            if net_role in roles
        ]

    def reply_backlog(self, cb: int) -> int:
        """Packets queued in CB ``cb``'s reply NI(s) awaiting buffers."""
        ni = self.reply_nis[cb]
        if isinstance(ni, list):
            return sum(sub.backlog() for sub in ni)
        return ni.backlog()
