"""(5) DA2Mesh [Kim et al., ICCD 2012].

A separate-network scheme whose reply network is split into eight
narrow subnets with 1/8 flit width, clocked at 2.5x the base frequency
(the paper's configuration of this comparison point).  The narrow flits
raise serialisation latency for data packets — the effect the paper
identifies as limiting DA2Mesh's average gain.
"""

from __future__ import annotations

from .base import SchemeConfig


def config() -> SchemeConfig:
    return SchemeConfig(
        name="DA2Mesh",
        network_type="separate",
        placement_name="diamond",
        da2mesh=True,
        da2mesh_subnets=8,
        da2mesh_clock_ratio=2.5,
    )
