"""(2) VC-Mono [Jang et al., DAC 2015]: VC monopolisation.

A single-network scheme where a router grants all of its VCs to one
message class while no packet of the other class is present at that
router, improving VC utilisation during the request-heavy and
reply-heavy phases of GPU kernels.
"""

from __future__ import annotations

from .base import SchemeConfig


def config() -> SchemeConfig:
    return SchemeConfig(
        name="VC-Mono",
        network_type="single",
        placement_name="diamond",
        monopolize=True,
        monopolize_injection=True,
    )
