"""The nine compared schemes and the fabric builder.

The seven paper schemes (section 5, Figure-9 order) plus two
independent loop-topology baselines from the literature: ``ring_router``
(Wu's ring-router NoC) and ``routerless`` (Lin's routerless NoC).
Each entry is a :class:`SchemeSpec` carrying the config factory and the
scheme's capabilities — which tick engines implement it and whether
fault plans may target it — consumed by the harness and the verify
campaign.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from . import (
    da2mesh,
    equinox,
    interposer_cmesh,
    multiport,
    ring_router,
    routerless,
    separate_base,
    single_base,
    vc_mono,
)
from .base import BASE_FREQUENCY_GHZ, Fabric, SchemeConfig


@dataclass(frozen=True)
class SchemeSpec:
    """One scheme's factory plus its capability flags."""

    name: str
    factory: Callable[[], SchemeConfig]
    # Whether fault plans may target this scheme (loop topologies have
    # no detour routing, so a severed loop strands its lanes).
    supports_faults: bool = True
    # Tick engines implementing this scheme; the first is the default.
    engines: Tuple[str, ...] = ("object", "vector")


SCHEMES: Dict[str, SchemeSpec] = {
    spec.name: spec
    for spec in (
        SchemeSpec("SingleBase", single_base.config),
        SchemeSpec("VC-Mono", vc_mono.config),
        SchemeSpec("Interposer-CMesh", interposer_cmesh.config),
        SchemeSpec("SeparateBase", separate_base.config),
        SchemeSpec("DA2Mesh", da2mesh.config),
        SchemeSpec("MultiPort", multiport.config),
        SchemeSpec("EquiNox", equinox.config),
        SchemeSpec(
            "ring_router",
            ring_router.config,
            supports_faults=False,
            engines=("object",),
        ),
        SchemeSpec(
            "routerless",
            routerless.config,
            supports_faults=False,
            engines=("object",),
        ),
    )
}
"""Spec per scheme, keyed by name: the paper's seven in Figure-9 order,
then the loop baselines."""

SCHEME_ORDER: List[str] = list(SCHEMES)


def get_spec(name: str) -> SchemeSpec:
    try:
        return SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; known: {SCHEME_ORDER}"
        ) from None


def get_config(name: str) -> SchemeConfig:
    return get_spec(name).factory()


__all__ = [
    "BASE_FREQUENCY_GHZ",
    "Fabric",
    "SchemeConfig",
    "SchemeSpec",
    "SCHEMES",
    "SCHEME_ORDER",
    "get_config",
    "get_spec",
]
