"""The seven compared schemes (paper section 5) and the fabric builder."""

from typing import Callable, Dict, List

from . import (
    da2mesh,
    equinox,
    interposer_cmesh,
    multiport,
    separate_base,
    single_base,
    vc_mono,
)
from .base import BASE_FREQUENCY_GHZ, Fabric, SchemeConfig

SCHEMES: Dict[str, Callable[[], SchemeConfig]] = {
    "SingleBase": single_base.config,
    "VC-Mono": vc_mono.config,
    "Interposer-CMesh": interposer_cmesh.config,
    "SeparateBase": separate_base.config,
    "DA2Mesh": da2mesh.config,
    "MultiPort": multiport.config,
    "EquiNox": equinox.config,
}
"""Factory per scheme, keyed by the paper's names, in Figure-9 order."""

SCHEME_ORDER: List[str] = list(SCHEMES)


def get_config(name: str) -> SchemeConfig:
    try:
        return SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; known: {SCHEME_ORDER}"
        ) from None


__all__ = [
    "BASE_FREQUENCY_GHZ",
    "Fabric",
    "SchemeConfig",
    "SCHEMES",
    "SCHEME_ORDER",
    "get_config",
]
