"""(9) routerless: the routerless (loop-covered) NoC baseline.

Lin et al., "Optimizing Routerless Network-on-Chip Designs": replace
routers with a precomputed set of overlapping unidirectional loops that
together cover every source/destination pair.  There is no per-hop
route computation — injection *selects a wire* (the minimal-distance
loop through source and destination) and the packet follows it to the
destination.  The loop set here is the layered slab-rectangle
construction of :func:`repro.noc.loops.routerless_loops`, whose
all-pairs coverage is checked property-style in the test suite.

Interposer mapping: each loop is a dedicated wiring track; loops whose
rectangle touches the chip boundary correspond to interposer-routed
perimeter tracks, interior loops to on-chip metal.  Request and reply
traffic use separate loop sets, and the two VCs per hop implement each
loop's dateline (see :mod:`repro.noc.loops`).
"""

from __future__ import annotations

from .base import SchemeConfig


def config() -> SchemeConfig:
    return SchemeConfig(
        name="routerless",
        network_type="separate",
        placement_name="diamond",
        topology="routerless",
    )
