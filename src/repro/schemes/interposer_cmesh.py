"""(3) Interposer-CMesh [Jerger et al., MICRO 2014].

A single-network scheme augmented with a concentrated mesh whose links
are routed in the interposer: every 2x2 tile block shares one CMesh
router, CMesh links are 256-bit, and traffic travelling 3 hops or more
prefers the overlay.  The CMesh routers have ~2x the ports of a basic
router (4 concentration ports plus mesh ports), which is what drives
this scheme's area and its 32,768-µbump budget (paper sections 6.5-6.6).
"""

from __future__ import annotations

from .base import SchemeConfig


def config() -> SchemeConfig:
    return SchemeConfig(
        name="Interposer-CMesh",
        network_type="single",
        placement_name="diamond",
        cmesh=True,
        cmesh_flit_bytes=32,
        cmesh_threshold=2,
    )
