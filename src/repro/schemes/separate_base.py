"""(4) SeparateBase: the separate-network baseline.

Request and reply traffic run on two physical meshes (2 VCs each),
doubling injection bandwidth and isolating the classes, at the cost of
a second network's area and static power.  Diamond placement, minimal
adaptive routing.
"""

from __future__ import annotations

from .base import SchemeConfig


def config() -> SchemeConfig:
    return SchemeConfig(
        name="SeparateBase",
        network_type="separate",
        placement_name="diamond",
    )
