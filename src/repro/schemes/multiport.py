"""(6) MultiPort [Bakhoda et al., MICRO 2010].

A separate-network scheme in which every CB-connected router has
multiple injection ports on the reply network (and matching extra
ejection ports on the request network), widening the interface between
the memory side and the NoC.  The injected traffic still funnels
through the single CB router and its hot zone — the contention the
paper contrasts EIRs against.
"""

from __future__ import annotations

from .base import SchemeConfig


def config(num_ports: int = 4) -> SchemeConfig:
    return SchemeConfig(
        name="MultiPort",
        network_type="separate",
        placement_name="diamond",
        multiport=num_ports,
    )
