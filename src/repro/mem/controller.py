"""Memory controller: the FR-FCFS front-end between a CB and its stack.

Each cache bank owns one controller (Table 1: 8 MCs, FR-FCFS), which in
this model simply relays line accesses into the stack and collects
completions, adding a fixed controller pipeline latency on each side.
The PHY between the MC and the stack is folded into that constant.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .hbm import HbmStack, HbmTiming, MemoryAccess

MC_PIPELINE_CYCLES = 4
"""Controller + PHY crossing latency per direction."""


class MemoryController:
    """One FR-FCFS memory controller fronting one HBM stack."""

    def __init__(self, timing: Optional[HbmTiming] = None,
                 pipeline: int = MC_PIPELINE_CYCLES) -> None:
        self.stack = HbmStack(timing)
        self.pipeline = pipeline
        self._inbound: List[MemoryAccess] = []  # waiting out the pipeline
        self._outbound: List[MemoryAccess] = []

    def submit(self, token: object, is_read: bool, row_hit: bool,
               cycle: int) -> None:
        """Accept a line access from the cache bank."""
        access = MemoryAccess(
            token=token, is_read=is_read, row_hit=row_hit,
            submit_cycle=cycle,
        )
        access.complete_cycle = cycle + self.pipeline  # enters stack then
        self._inbound.append(access)

    def tick(self, cycle: int) -> List[MemoryAccess]:
        """Advance one cycle; return accesses whose data is back at the CB."""
        still_waiting = []
        for access in self._inbound:
            if access.complete_cycle <= cycle:
                self.stack.submit(access)
            else:
                still_waiting.append(access)
        self._inbound = still_waiting
        for access in self.stack.tick(cycle):
            access.complete_cycle = cycle + self.pipeline
            self._outbound.append(access)
        done = [a for a in self._outbound if a.complete_cycle <= cycle]
        if done:
            self._outbound = [
                a for a in self._outbound if a.complete_cycle > cycle
            ]
        return done

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle this controller can act (None = idle).

        The minimum over inbound/outbound pipeline completions and the
        stack's own next event, floored at ``cycle + 1`` — everything
        here is timer-driven, so between this cycle and the returned
        one every controller tick is a no-op.
        """
        nxt: Optional[float] = self.stack.next_event_cycle(cycle)
        for access in self._inbound:
            if nxt is None or access.complete_cycle < nxt:
                nxt = access.complete_cycle
        for access in self._outbound:
            if nxt is None or access.complete_cycle < nxt:
                nxt = access.complete_cycle
        if nxt is None:
            return None
        return max(math.ceil(nxt), cycle + 1)

    def queue_depth(self) -> int:
        """Accesses queued ahead of service (pipeline + stack queues)."""
        return len(self._inbound) + self.stack.queue_depth()

    def pending(self) -> int:
        return len(self._inbound) + len(self._outbound) + self.stack.pending()

    def idle(self) -> bool:
        return self.pending() == 0
