"""Memory substrate: HBM stack timing and FR-FCFS controllers."""

from .controller import MC_PIPELINE_CYCLES, MemoryController
from .hbm import HbmStack, HbmTiming, MemoryAccess

__all__ = [
    "MC_PIPELINE_CYCLES",
    "MemoryController",
    "HbmStack",
    "HbmTiming",
    "MemoryAccess",
]
