"""HBM stack timing model (the Ramulator-equivalent substrate).

Each cache bank pairs with one HBM stack (Table 1: 8 stacks, 256 GB/s
each, 4 memory dies per stack).  A stack exposes several pseudo-channels
that serve accesses independently; an access pays a row-activation cost
on a row-buffer miss, a CAS cost, and occupies the channel's data bus
for the line transfer.

What the NoC study needs from the memory model is (a) reply generation
far faster than one injection port can drain — the premise of the paper
— and (b) latency/bandwidth that respond to row locality and queue
depth.  Both emerge from this channel/bus model.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..noc.types import CACHE_LINE_BYTES


@dataclass(frozen=True)
class HbmTiming:
    """Stack timing in core cycles (1.126 GHz core clock).

    The defaults approximate HBM2: 256 GB/s per stack shared by eight
    pseudo-channels gives ~28.4 B/cycle per channel, so a 64 B line
    occupies a channel bus for ~2.25 cycles.
    """

    channels: int = 8
    bytes_per_cycle_per_channel: float = 28.4
    t_cas: int = 14          # column access, row already open
    t_row_miss: int = 38     # precharge + activate + column access
    queue_depth: int = 32    # per-channel scheduler window

    @property
    def transfer_cycles(self) -> float:
        return CACHE_LINE_BYTES / self.bytes_per_cycle_per_channel

    @property
    def peak_bytes_per_cycle(self) -> float:
        return self.channels * self.bytes_per_cycle_per_channel


class MemoryAccess:
    """One line access submitted by a cache bank.

    A plain slotted class rather than a dataclass: accesses are the
    highest-volume heap objects of a memory-bound run, and ``__slots__``
    with defaulted dataclass fields would need Python >= 3.10.
    """

    __slots__ = ("token", "is_read", "row_hit", "submit_cycle", "channel",
                 "complete_cycle")

    def __init__(
        self,
        token: object,
        is_read: bool,
        row_hit: bool,
        submit_cycle: int,
        channel: int = -1,
        complete_cycle: float = 0.0,
    ) -> None:
        self.token = token
        self.is_read = is_read
        self.row_hit = row_hit
        self.submit_cycle = submit_cycle
        self.channel = channel
        self.complete_cycle = complete_cycle


class HbmStack:
    """One HBM stack: per-channel FR-FCFS-approximating scheduling.

    Requests queue per channel; when the channel bus frees, the oldest
    row-hit request is served first (the FR part), else the oldest
    request (the FCFS part).  Row hit/miss is carried on the access (the
    workload profile's row-locality parameter decides it), standing in
    for full address-mapped bank state.
    """

    def __init__(self, timing: Optional[HbmTiming] = None) -> None:
        self.timing = timing or HbmTiming()
        self._queues: List[List[MemoryAccess]] = [
            [] for _ in range(self.timing.channels)
        ]
        self._bus_free: List[float] = [0.0] * self.timing.channels
        self._completions: List[Tuple[float, int, MemoryAccess]] = []
        self._seq = 0
        self._rr = 0
        # Aggregate stats.
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.busy_cycles = 0.0

    # ------------------------------------------------------------------
    def submit(self, access: MemoryAccess) -> None:
        """Queue an access; channel chosen round-robin (address hash)."""
        access.channel = self._rr
        self._rr = (self._rr + 1) % self.timing.channels
        self._queues[access.channel].append(access)
        if access.is_read:
            self.reads += 1
        else:
            self.writes += 1
        if access.row_hit:
            self.row_hits += 1

    def tick(self, cycle: int) -> List[MemoryAccess]:
        """Advance one core cycle; return accesses completing now."""
        timing = self.timing
        for ch, queue in enumerate(self._queues):
            if not queue or self._bus_free[ch] > cycle:
                continue
            # FR-FCFS within the scheduler window: first ready row hit,
            # else the oldest request.
            window = queue[: timing.queue_depth]
            pick = next((a for a in window if a.row_hit), window[0])
            queue.remove(pick)
            access_latency = timing.t_cas if pick.row_hit else timing.t_row_miss
            transfer = timing.transfer_cycles
            start = max(self._bus_free[ch], float(cycle))
            pick.complete_cycle = start + access_latency + transfer
            self._bus_free[ch] = start + transfer
            self.busy_cycles += transfer
            self._seq += 1
            heapq.heappush(
                self._completions, (pick.complete_cycle, self._seq, pick)
            )
        done: List[MemoryAccess] = []
        while self._completions and self._completions[0][0] <= cycle:
            done.append(heapq.heappop(self._completions)[2])
        return done

    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future core cycle this stack can act (None = idle).

        Valid between ticks: completion pops happen at the ceiling of
        their float completion time, and a queued channel serves as
        soon as its bus frees.  Used to bound quiescence fast-forward.
        """
        nxt: Optional[float] = None
        if self._completions:
            nxt = self._completions[0][0]
        for ch, queue in enumerate(self._queues):
            if queue and (nxt is None or self._bus_free[ch] < nxt):
                nxt = self._bus_free[ch]
        if nxt is None:
            return None
        return max(math.ceil(nxt), cycle + 1)

    def queue_depth(self) -> int:
        """Accesses waiting in the per-channel scheduler queues.

        Excludes in-flight completions: this is the backlog the FR-FCFS
        front-end still has to serve — the telemetry signal that shows a
        reply burst building up behind a CB.
        """
        return sum(len(q) for q in self._queues)

    def pending(self) -> int:
        return sum(len(q) for q in self._queues) + len(self._completions)

    def idle(self) -> bool:
        return self.pending() == 0

    def utilization(self, cycles: int) -> float:
        """Fraction of aggregate bus-cycles spent transferring data."""
        if cycles <= 0:
            return 0.0
        return self.busy_cycles / (cycles * self.timing.channels)
