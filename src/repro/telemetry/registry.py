"""The metrics registry: counters, gauges and windowed time series.

Components register probes at construction time; the harness samples
the registry at a configurable base-cycle interval.  Three probe kinds
cover the paper's time-varying quantities:

* **finals** — lazily-evaluated counters, read once at export time
  (per-EIR injected-flit totals, fast-forwarded cycles).  Zero cost
  during the run.
* **series** — a callable sampled every interval into a bounded window
  of ``(cycle, value)`` pairs (NI buffer occupancy, HBM queue depth,
  in-flight flits).
* **residency** — sampled membership counts over a fixed index space
  (which routers were in the active set, per sample).

Everything the registry does is *read-only* with respect to the
simulation: enabling telemetry must keep ``stats_fingerprint``
bit-identical, and the differential test in ``tests/test_telemetry.py``
pins that.  When telemetry is disabled the harness carries ``None``
(one ``is None`` test per cycle); :data:`NULL_TELEMETRY` additionally
provides a no-op registry object for call sites that want the API
without the conditionals.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional

SCHEMA_VERSION = 1
"""Version of the exported telemetry record layout."""

TELEMETRY_ENV = "REPRO_TELEMETRY"

DEFAULT_INTERVAL = 100
"""Base cycles between samples when telemetry is enabled bare (``=1``)."""

DEFAULT_WINDOW = 4096
"""Samples a series retains by default (oldest evicted first)."""


def resolve_interval(value: int) -> int:
    """Normalise a ``--telemetry``/``REPRO_TELEMETRY`` value.

    ``0`` (or negative) disables telemetry, ``1`` enables it at
    :data:`DEFAULT_INTERVAL`, any larger integer is the sampling
    interval itself — the same convention ``--validate`` uses.
    """
    if value <= 0:
        return 0
    if value == 1:
        return DEFAULT_INTERVAL
    return value


def interval_from_env(default: int = 0) -> int:
    """Sampling interval requested via ``REPRO_TELEMETRY`` (0 = off)."""
    raw = os.environ.get(TELEMETRY_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return resolve_interval(value)


class SeriesSampler:
    """One windowed time series: ``fn()`` sampled into a bounded deque."""

    __slots__ = ("name", "fn", "cycles", "values")

    def __init__(
        self,
        name: str,
        fn: Callable[[], float],
        window: Optional[int] = DEFAULT_WINDOW,
    ) -> None:
        self.name = name
        self.fn = fn
        self.cycles = deque(maxlen=window)
        self.values = deque(maxlen=window)

    def sample(self, cycle: int) -> None:
        self.cycles.append(cycle)
        self.values.append(self.fn())

    def export(self) -> Dict[str, list]:
        return {"cycles": list(self.cycles), "values": list(self.values)}


class ResidencyProbe:
    """Sampled membership counts over ``size`` indices.

    Each sample increments ``counts[i]`` for every index ``i`` the
    callable reports as occupied; ``counts[i] / samples`` is then the
    fraction of samples index ``i`` was resident (e.g. a router's
    active-set residency).
    """

    __slots__ = ("name", "size", "fn", "samples", "counts")

    def __init__(
        self, name: str, size: int, fn: Callable[[], Iterable[int]]
    ) -> None:
        self.name = name
        self.size = size
        self.fn = fn
        self.samples = 0
        self.counts = [0] * size

    def sample(self, _cycle: int) -> None:
        self.samples += 1
        counts = self.counts
        for index in self.fn():
            counts[index] += 1

    def export(self) -> Dict[str, object]:
        return {"samples": self.samples, "counts": list(self.counts)}


class TelemetryRegistry:
    """A live metrics registry for one simulation run."""

    enabled = True

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        window: Optional[int] = DEFAULT_WINDOW,
    ) -> None:
        if interval <= 0:
            raise ValueError("telemetry interval must be positive; use "
                             "None (no registry) to disable telemetry")
        self.interval = interval
        self.window = window
        self.samples = 0
        self._last_sample_cycle: Optional[int] = None
        self._series: List[SeriesSampler] = []
        self._residency: List[ResidencyProbe] = []
        self._finals: List[tuple] = []  # (name, fn)
        self.counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Registration (components call these at construction)
    # ------------------------------------------------------------------
    def register_series(
        self,
        name: str,
        fn: Callable[[], float],
        window: Optional[int] = None,
    ) -> SeriesSampler:
        """Sample ``fn()`` every interval into a bounded window."""
        sampler = SeriesSampler(name, fn, window or self.window)
        self._series.append(sampler)
        return sampler

    def register_residency(
        self, name: str, size: int, fn: Callable[[], Iterable[int]]
    ) -> ResidencyProbe:
        """Count per-index membership of ``fn()``'s result per sample."""
        probe = ResidencyProbe(name, size, fn)
        self._residency.append(probe)
        return probe

    def register_final(self, name: str, fn: Callable[[], float]) -> None:
        """Evaluate ``fn()`` once at export time into a counter."""
        self._finals.append((name, fn))

    def set_counter(self, name: str, value: float) -> None:
        """Record a scalar outcome directly (end-of-run totals)."""
        self.counters[name] = value

    # ------------------------------------------------------------------
    # Sampling (the harness drives this)
    # ------------------------------------------------------------------
    def due(self, cycle: int) -> bool:
        return cycle % self.interval == 0

    def sample(self, cycle: int) -> None:
        """Take one sample at ``cycle`` (same-cycle repeats are no-ops)."""
        if cycle == self._last_sample_cycle:
            return
        self._last_sample_cycle = cycle
        self.samples += 1
        for sampler in self._series:
            sampler.sample(cycle)
        for probe in self._residency:
            probe.sample(cycle)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self) -> Dict[str, object]:
        """The registry's content as plain, JSON-ready data.

        Deterministic for a deterministic simulation: no wall-clock
        times, pids or dict-order dependence (keys are emitted sorted
        by the JSON writer).
        """
        counters = dict(self.counters)
        for name, fn in self._finals:
            counters[name] = fn()
        return {
            "interval": self.interval,
            "samples": self.samples,
            "counters": counters,
            "series": {s.name: s.export() for s in self._series},
            "residency": {p.name: p.export() for p in self._residency},
        }


class NullTelemetry:
    """A no-op registry: every call is accepted, nothing is recorded.

    Lets call sites register probes and sample unconditionally while
    paying only attribute lookups — the disabled-path contract the
    overhead test pins.
    """

    enabled = False
    interval = 0
    samples = 0

    def register_series(self, name, fn, window=None):  # noqa: ARG002
        return None

    def register_residency(self, name, size, fn):  # noqa: ARG002
        return None

    def register_final(self, name, fn):  # noqa: ARG002
        return None

    def set_counter(self, name, value):  # noqa: ARG002
        return None

    def due(self, cycle) -> bool:  # noqa: ARG002
        return False

    def sample(self, cycle) -> None:  # noqa: ARG002
        return None

    def export(self) -> Dict[str, object]:
        return {
            "interval": 0,
            "samples": 0,
            "counters": {},
            "series": {},
            "residency": {},
        }


NULL_TELEMETRY = NullTelemetry()
"""Shared no-op registry instance."""
