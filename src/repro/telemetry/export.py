"""Deterministic telemetry artifacts: JSON/JSONL writers and aggregation.

One experiment exports one *record* (a plain dict built from the
registry by the harness); a sweep exports one JSONL file — a header
line, one record per cell, and a trailing sweep-summary line.  Records
are serialised with sorted keys and compact separators, so two runs of
the same deterministic simulation produce **byte-identical** artifacts
regardless of process boundaries or cache state (the export-determinism
test pins this).

Artifacts are keyed like the design disk cache: the file name carries
the experiment-config digest and every record carries the package
version, so a stale artifact is never mistaken for a current one.

Schema reference: ``docs/TELEMETRY.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .registry import SCHEMA_VERSION

PathLike = Union[str, Path]


def dumps_record(record: Dict[str, object]) -> str:
    """One record as a canonical single-line JSON string (no newline)."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def write_json(path: PathLike, record: Dict[str, object]) -> Path:
    """Write one record as a canonical JSON file (trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_record(record) + "\n")
    return path


def write_jsonl(
    path: PathLike, records: Iterable[Dict[str, object]]
) -> Path:
    """Write records as JSON lines (one canonical record per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [dumps_record(record) for record in records]
    path.write_text("\n".join(lines) + "\n" if lines else "")
    return path


def read_jsonl(path: PathLike) -> List[Dict[str, object]]:
    """Parse a JSONL artifact; blank lines are ignored."""
    records: List[Dict[str, object]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def experiment_filename(
    scheme: str, benchmark: str, config_digest: str
) -> str:
    """Canonical artifact name for one experiment's telemetry record."""
    return f"run-{scheme}-{benchmark}-{config_digest}.json"


def sweep_filename(config_digest: str) -> str:
    """Canonical artifact name for one sweep's telemetry JSONL."""
    return f"sweep-{config_digest}.jsonl"


# ----------------------------------------------------------------------
# Aggregation (sweep-level report)
# ----------------------------------------------------------------------
def _series_mean(record: Dict[str, object], name: str) -> Optional[float]:
    series = record.get("series", {}).get(name)
    if not series:
        return None
    values = series.get("values") or []
    if not values:
        return None
    return sum(values) / len(values)


def _eir_balance(counters: Dict[str, float]) -> Optional[float]:
    """min/max ratio of per-EIR injected flits (1.0 = perfectly even).

    Counters named ``eir.cb<N>.eir<M>.flits_sent`` are grouped per CB;
    the reported figure is the worst (smallest) per-CB min/max ratio —
    the load-balance claim of the paper's Figures 4/7 in one number.
    """
    groups: Dict[str, List[float]] = {}
    for name, value in counters.items():
        if not name.startswith("eir.cb") or not name.endswith(".flits_sent"):
            continue
        cb = name.split(".")[1]
        groups.setdefault(cb, []).append(float(value))
    worst: Optional[float] = None
    for values in groups.values():
        if len(values) < 2:
            continue
        top = max(values)
        ratio = (min(values) / top) if top else 1.0
        if worst is None or ratio < worst:
            worst = ratio
    return worst


def summarize_record(record: Dict[str, object]) -> Dict[str, object]:
    """Reduce one experiment record to the sweep-report row."""
    counters = record.get("counters", {})
    injected = sum(
        value for name, value in counters.items()
        if name.startswith("net.") and name.endswith(".flits_injected")
    )
    delivered = sum(
        value for name, value in counters.items()
        if name.startswith("net.") and name.endswith(".packets_delivered")
    )
    row: Dict[str, object] = {
        "scheme": record.get("scheme"),
        "benchmark": record.get("benchmark"),
        "samples": record.get("samples", 0),
        "flits_injected": injected,
        "packets_delivered": delivered,
        "fast_forwarded_cycles": counters.get(
            "system.fast_forwarded_cycles", 0
        ),
    }
    balance = _eir_balance(counters)
    if balance is not None:
        row["eir_balance"] = balance
    depth = _series_mean(record, "hbm.queue_depth")
    if depth is not None:
        row["hbm_queue_depth_mean"] = depth
    return row


def aggregate_sweep(
    records: Iterable[Dict[str, object]], config_digest: str = ""
) -> Dict[str, object]:
    """Fold per-cell telemetry records into one sweep-summary record."""
    rows = [summarize_record(record) for record in records]
    return {
        "schema": SCHEMA_VERSION,
        "kind": "sweep_summary",
        "config_digest": config_digest,
        "cells": rows,
        "total_flits_injected": sum(r["flits_injected"] for r in rows),
        "total_packets_delivered": sum(
            r["packets_delivered"] for r in rows
        ),
    }


def sweep_records(
    cell_records: List[Dict[str, object]],
    version: str,
    config_digest: str = "",
) -> List[Dict[str, object]]:
    """Assemble the full JSONL line sequence for one sweep artifact."""
    header = {
        "schema": SCHEMA_VERSION,
        "kind": "sweep",
        "version": version,
        "config_digest": config_digest,
        "cells": len(cell_records),
    }
    summary = aggregate_sweep(cell_records, config_digest)
    return [header, *cell_records, summary]
