"""Telemetry: a lightweight metrics registry with time-series export.

See :mod:`repro.telemetry.registry` for the live registry components
register probes into, and :mod:`repro.telemetry.export` for the
deterministic JSON/JSONL artifact layer.  ``docs/TELEMETRY.md``
documents the exported schema; the README's "Observability" section
documents the ``--telemetry`` / ``REPRO_TELEMETRY`` knobs.
"""

from .export import (
    aggregate_sweep,
    dumps_record,
    experiment_filename,
    read_jsonl,
    summarize_record,
    sweep_filename,
    sweep_records,
    write_json,
    write_jsonl,
)
from .registry import (
    DEFAULT_INTERVAL,
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    TELEMETRY_ENV,
    NullTelemetry,
    ResidencyProbe,
    SeriesSampler,
    TelemetryRegistry,
    interval_from_env,
    resolve_interval,
)

__all__ = [
    "DEFAULT_INTERVAL",
    "NULL_TELEMETRY",
    "SCHEMA_VERSION",
    "TELEMETRY_ENV",
    "NullTelemetry",
    "ResidencyProbe",
    "SeriesSampler",
    "TelemetryRegistry",
    "interval_from_env",
    "resolve_interval",
    "aggregate_sweep",
    "dumps_record",
    "experiment_filename",
    "read_jsonl",
    "summarize_record",
    "sweep_filename",
    "sweep_records",
    "write_json",
    "write_jsonl",
]
