"""Property verification harness: randomized invariant mining.

Generates valid-by-construction configurations (topology, scheme,
workload, scheduler, telemetry, fault plans), runs short simulations
with the full audit set asserted every cycle, checks bounded liveness
and delivery accounting, and differentially checks that pure knobs
(scheduler discipline, telemetry, armed-but-never-firing fault plans)
never change ``stats_fingerprint``.  A dedicated engine-parity
property runs every generated case — firing fault plans included —
under both the object and vector tick engines and requires
bit-identical fingerprints.  Failures shrink to a minimal case and
serialize as replayable artifacts (``repro verify --replay``).

See ``docs/VERIFY.md`` for the invariant catalogue and workflow.
"""

from .artifact import (
    ARTIFACT_SCHEMA,
    KNOWN_PROPERTIES,
    PROPERTY_DIFFERENTIAL,
    PROPERTY_ENGINE_PARITY,
    PROPERTY_INVARIANTS,
    artifact_bytes,
    artifact_filename,
    build_artifact,
    load_artifact,
    replay,
    sanitize_error,
    write_failure,
)
from .differential import (
    DifferentialFailure,
    base_case,
    check_differential_case,
    check_engine_parity_case,
    differential_variants,
    engine_counterpart,
)
from .harness import (
    DEEP,
    FAILURE_EXCEPTIONS,
    FAST,
    PROFILES,
    PropertyOutcome,
    VerifyProfile,
    VerifyReport,
    run_profile,
)
from .invariants import (
    HERMETIC_ENV,
    CaseRun,
    VerifyFailure,
    check_invariants_case,
    end_state_problems,
    hermetic_env,
    run_case,
)
from .space import (
    DEFAULT_MAX_CYCLES,
    DEFAULT_WATCHDOG,
    VerifyCase,
)
from .strategies import (
    DEEP_WIDTHS,
    FAST_WIDTHS,
    cases,
    fault_plans,
    fault_specs,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "DEEP",
    "DEEP_WIDTHS",
    "DEFAULT_MAX_CYCLES",
    "DEFAULT_WATCHDOG",
    "FAILURE_EXCEPTIONS",
    "FAST",
    "FAST_WIDTHS",
    "HERMETIC_ENV",
    "KNOWN_PROPERTIES",
    "PROFILES",
    "PROPERTY_DIFFERENTIAL",
    "PROPERTY_ENGINE_PARITY",
    "PROPERTY_INVARIANTS",
    "CaseRun",
    "DifferentialFailure",
    "PropertyOutcome",
    "VerifyCase",
    "VerifyFailure",
    "VerifyProfile",
    "VerifyReport",
    "artifact_bytes",
    "artifact_filename",
    "base_case",
    "build_artifact",
    "cases",
    "check_differential_case",
    "check_engine_parity_case",
    "check_invariants_case",
    "differential_variants",
    "engine_counterpart",
    "end_state_problems",
    "fault_plans",
    "fault_specs",
    "hermetic_env",
    "load_artifact",
    "replay",
    "run_case",
    "run_profile",
    "sanitize_error",
    "write_failure",
]
