"""Profile driver: run the properties over a budget of generated cases.

Two profiles ship:

* ``fast`` — the tier-1 profile: small meshes, ~270 generated configs
  across three properties (invariants, differential purity, object vs
  vector engine parity), finishes in a couple of minutes.  A pytest
  wrapper runs it in the normal test suite, so every CI matrix entry
  fuzzes.
* ``deep`` — the dedicated CI-job profile: wider meshes (including the
  paper's 8x8), several hundred configs.

Both are **deterministic**: hypothesis runs with ``derandomize=True``
and no example database, so a given (profile, seed) pair always
generates the same cases in the same order and a failure artifact is
byte-identical run-to-run.  The campaign ``seed`` decorrelates the
workload seeds inside the generated cases without breaking that
determinism.

Shrinking is captured by recording every failing example as hypothesis
minimizes; the last recorded failure is the minimal one and becomes
the replay artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from hypothesis import HealthCheck, Phase, given, settings

from . import artifact as artifact_mod
from ..gpu.system import SimulationStall
from ..noc.validation import NetworkAuditError
from .differential import check_differential_case, check_engine_parity_case
from .invariants import check_invariants_case
from .space import VerifyCase
from .strategies import DEEP_WIDTHS, FAST_WIDTHS, cases

#: Exception types that count as a *property failure* (and therefore
#: shrink to a replay artifact) rather than a harness crash: explicit
#: check violations plus the simulator's own per-cycle audit and
#: stall-watchdog errors, which subclass RuntimeError — not
#: AssertionError — and are documented to propagate out of
#: :func:`~repro.verify.invariants.run_case`.
FAILURE_EXCEPTIONS = (AssertionError, NetworkAuditError, SimulationStall)


@dataclass(frozen=True)
class VerifyProfile:
    """One fuzzing budget: example counts per property + width pool."""

    name: str
    invariant_examples: int
    differential_examples: int
    engine_examples: int
    widths: Tuple[int, ...]
    # 0 keeps the VerifyCase default cycle bound.
    max_cycles: int = 0

    @property
    def total_examples(self) -> int:
        return (
            self.invariant_examples
            + self.differential_examples
            + self.engine_examples
        )


FAST = VerifyProfile(
    name="fast",
    invariant_examples=130,
    differential_examples=80,
    engine_examples=60,
    widths=FAST_WIDTHS,
)
DEEP = VerifyProfile(
    name="deep",
    invariant_examples=320,
    differential_examples=160,
    engine_examples=120,
    widths=DEEP_WIDTHS,
)
PROFILES: Dict[str, VerifyProfile] = {p.name: p for p in (FAST, DEEP)}

_SETTINGS_KWARGS = dict(
    deadline=None,
    derandomize=True,
    database=None,
    print_blob=False,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
        HealthCheck.large_base_example,
    ],
    phases=(Phase.generate, Phase.shrink),
    # One minimal counterexample per property: without this hypothesis
    # may raise an ExceptionGroup bundling several distinct bugs, and
    # "the last recorded failure is the minimal one" no longer holds.
    report_multiple_bugs=False,
)


@dataclass
class PropertyOutcome:
    """Result of driving one property for one profile."""

    prop: str
    examples: int = 0
    failure: Optional[VerifyCase] = None
    error: str = ""
    artifact_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class VerifyReport:
    """Everything one campaign produced."""

    profile: str
    seed: int
    outcomes: List[PropertyOutcome] = field(default_factory=list)

    @property
    def cases_run(self) -> int:
        return sum(o.examples for o in self.outcomes)

    @property
    def failures(self) -> List[PropertyOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"verify profile={self.profile} seed={self.seed}: "
            f"{self.cases_run} cases across {len(self.outcomes)} "
            f"properties — "
            + ("all passed" if self.ok else f"{len(self.failures)} FAILED")
        ]
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else "FAIL"
            line = f"  [{status}] {outcome.prop}: {outcome.examples} cases"
            if outcome.artifact_path is not None:
                line += f" -> {outcome.artifact_path}"
            lines.append(line)
            if not outcome.ok:
                first = outcome.error.strip().splitlines()
                if first:
                    lines.append(f"         {first[0][:200]}")
        return "\n".join(lines)


def _drive(
    prop: str,
    check: Callable[[VerifyCase], object],
    strategy,
    max_examples: int,
    log: Callable[[str], None],
) -> PropertyOutcome:
    """Run one property under hypothesis, capturing the shrunk minimum.

    The inner test records every failing example while hypothesis
    shrinks; the last recorded pair is the minimal counterexample (the
    final re-run hypothesis performs before raising).
    """
    outcome = PropertyOutcome(prop=prop)
    failures: List[Tuple[VerifyCase, str]] = []

    @settings(max_examples=max_examples, **_SETTINGS_KWARGS)
    @given(case=strategy)
    def property_test(case: VerifyCase) -> None:
        if not failures:
            # Count generated examples only: once a failure is recorded
            # every further execution is a shrink-phase re-run and must
            # not inflate the report's case count.
            outcome.examples += 1
            if outcome.examples % 50 == 0:
                log(f"  ... {prop}: {outcome.examples} cases")
        try:
            check(case)
        except FAILURE_EXCEPTIONS as exc:
            failures.append((case, f"{type(exc).__name__}: {exc}"))
            raise

    try:
        property_test()
    except Exception:
        # Hypothesis re-raises the minimal example's failure last.  Any
        # recorded failure (AssertionError, NetworkAuditError,
        # SimulationStall — however hypothesis wraps it) becomes the
        # outcome; an exception with nothing recorded is a harness
        # crash, not a property failure, and must propagate.
        if not failures:
            raise
        case, error = failures[-1]
        outcome.failure = case
        outcome.error = error
    return outcome


def run_profile(
    profile: Union[str, VerifyProfile],
    artifact_dir: Union[str, Path, None] = None,
    seed: int = 0,
    log: Callable[[str], None] = lambda _line: None,
) -> VerifyReport:
    """Run every property at ``profile``'s budget; write failure artifacts."""
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown verify profile {profile!r}; "
                f"known: {sorted(PROFILES)}"
            ) from None
    report = VerifyReport(profile=profile.name, seed=seed)
    plan = [
        (
            artifact_mod.PROPERTY_INVARIANTS,
            check_invariants_case,
            cases(
                widths=profile.widths,
                base_seed=seed,
                with_faults=True,
                max_cycles=profile.max_cycles,
            ),
            profile.invariant_examples,
        ),
        (
            artifact_mod.PROPERTY_DIFFERENTIAL,
            check_differential_case,
            cases(
                widths=profile.widths,
                base_seed=seed,
                with_faults=False,
                max_cycles=profile.max_cycles,
            ),
            profile.differential_examples,
        ),
        (
            artifact_mod.PROPERTY_ENGINE_PARITY,
            check_engine_parity_case,
            # Faults stay ON: the engine-parity contract covers firing
            # fault plans, not just the fault-stripped differential
            # baseline.
            cases(
                widths=profile.widths,
                base_seed=seed + 1,
                with_faults=True,
                max_cycles=profile.max_cycles,
            ),
            profile.engine_examples,
        ),
    ]
    for prop, check, strategy, budget in plan:
        log(f"verify: {prop} ({budget} examples, profile={profile.name})")
        outcome = _drive(prop, check, strategy, budget, log)
        if outcome.failure is not None and artifact_dir is not None:
            outcome.artifact_path = artifact_mod.write_failure(
                artifact_dir, prop, outcome.failure, outcome.error
            )
        report.outcomes.append(outcome)
    return report
