"""Per-cycle invariant checking and bounded liveness for one case.

:func:`check_invariants_case` is the core property the fuzzer drives:
it runs a case's short simulation with the **full**
:func:`~repro.noc.validation.audit_network` invariant set asserted
every base cycle (flit/packet/credit conservation over every link, VC
ownership, active-set ground truth), then applies the end-state
contract:

* **bounded liveness** — the run terminates well inside ``max_cycles``
  (every PE's quota issued and every reply received) and no stall
  window ever exceeds ``watchdog_cycles``; a violation raises with the
  stall diagnosis attached;
* **delivery accounting** — at the end every network is idle, every
  injected flit is ejected or in the ``flits_dropped`` fault ledger,
  and every created packet is delivered;
* **fault inertness** — if the case's plan never actually fired, the
  fault ledgers must be exactly zero.

All checks raise :class:`VerifyFailure` (or let the simulator's own
``NetworkAuditError`` / ``SimulationStall`` propagate); the harness
turns whichever exception reaches it into a shrunk replay artifact.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..gpu.system import System, SystemConfig, SystemResult
from ..harness.experiment import build_fabric
from ..noc.faults import FaultInjector, FaultPlan
from ..noc.validation import audit_network
from ..schemes.base import Fabric
from ..telemetry import TelemetryRegistry
from ..workloads import profiles
from .space import VerifyCase

#: Environment knobs that would otherwise leak into a verification run
#: (the harness resolves empty config fields from these).  Hermetic
#: runs are non-negotiable: a property failure must replay identically
#: on a machine with none of them set.
HERMETIC_ENV = (
    "REPRO_FAULTS",
    "REPRO_VALIDATE",
    "REPRO_WATCHDOG_CYCLES",
    "REPRO_TELEMETRY",
    "REPRO_SCHEDULER",
    "REPRO_ENGINE",
    "REPRO_CELL_TIMEOUT",
    "REPRO_RETRIES",
)


@contextmanager
def hermetic_env() -> Iterator[None]:
    """Temporarily clear every REPRO_* knob that could perturb a run."""
    saved = {}
    for name in HERMETIC_ENV:
        if name in os.environ:
            saved[name] = os.environ.pop(name)
    try:
        yield
    finally:
        os.environ.update(saved)


class VerifyFailure(AssertionError):
    """A verification property failed for one concrete case."""

    def __init__(self, case: VerifyCase, problems: List[str]) -> None:
        self.case = case
        self.problems = list(problems)
        summary = "\n  ".join(self.problems)
        super().__init__(
            f"{len(self.problems)} verification failure(s) for "
            f"[{case.label()}]:\n  {summary}"
        )


@dataclass
class CaseRun:
    """A completed case simulation plus everything the checks inspect."""

    case: VerifyCase
    fabric: Fabric
    result: SystemResult
    injector: Optional[FaultInjector]
    stats_fingerprint: str
    transactions_completed: int
    transactions_total: int

    @property
    def fired(self) -> bool:
        return self.injector is not None and self.injector.applied > 0


def fingerprint(fabric: Fabric) -> str:
    """sha256 over every network's counter snapshot (harness contract)."""
    import hashlib

    digest = hashlib.sha256()
    for net, _ratio, _role in fabric.networks:
        digest.update(net.stats.fingerprint().encode())
    return digest.hexdigest()


def run_case(
    case: VerifyCase, validate_every: int = 1
) -> CaseRun:
    """Run one case with audits every ``validate_every`` base cycles.

    Unlike the sweep harness this passes the audit interval to the
    validator *raw* (1 really means every cycle), runs hermetically
    with respect to ``REPRO_*`` env knobs, and keeps the live fabric
    for post-run inspection.  ``NetworkAuditError`` and
    ``SimulationStall`` propagate to the caller.
    """
    with hermetic_env():
        config = case.experiment_config()
        fabric = build_fabric(case.scheme, config)
        injector: Optional[FaultInjector] = None
        if case.faults:
            injector = FaultInjector(fabric, FaultPlan(case.faults))
        registry: Optional[TelemetryRegistry] = None
        if case.telemetry > 0:
            registry = TelemetryRegistry(interval=case.telemetry)
        system = System(
            fabric,
            profiles.get(case.benchmark),
            SystemConfig(
                quota=case.quota,
                seed=case.seed,
                max_cycles=case.max_cycles,
                validate_interval=validate_every,
                watchdog_cycles=case.watchdog_cycles,
                fault_injector=injector,
                telemetry=registry,
            ),
        )
        result = system.run()
    completed = sum(
        1 for t in result.transactions if t.completed is not None
    )
    return CaseRun(
        case=case,
        fabric=fabric,
        result=result,
        injector=injector,
        stats_fingerprint=fingerprint(fabric),
        transactions_completed=completed,
        transactions_total=len(result.transactions),
    )


# ----------------------------------------------------------------------
# End-state contract
# ----------------------------------------------------------------------
def end_state_problems(run: CaseRun) -> List[str]:
    """Violations of the liveness/accounting contract after a run."""
    problems: List[str] = []
    case = run.case
    if run.result.cycles >= case.max_cycles:
        pending = run.transactions_total - run.transactions_completed
        problems.append(
            f"liveness: run hit the {case.max_cycles}-cycle bound with "
            f"{pending} of {run.transactions_total} transactions "
            f"outstanding"
        )
    if run.transactions_completed != run.transactions_total:
        problems.append(
            f"liveness: {run.transactions_total - run.transactions_completed}"
            f" transaction(s) never completed"
        )
    for net, _ratio, _role in run.fabric.networks:
        if not net.idle():
            problems.append(
                f"net.{net.name}: not idle after termination "
                f"({net.in_flight()} flits still in flight)"
            )
        report = audit_network(net)
        if not report.ok:
            problems.extend(
                f"net.{net.name}: {p}" for p in report.problems
            )
        stats = net.stats
        if stats.flits_injected != stats.flits_ejected + stats.flits_dropped:
            problems.append(
                f"net.{net.name}: flit accounting — injected "
                f"{stats.flits_injected} != ejected {stats.flits_ejected} "
                f"+ dropped {stats.flits_dropped}"
            )
        if stats.packets_created != stats.packets_delivered:
            problems.append(
                f"net.{net.name}: packet accounting — created "
                f"{stats.packets_created} != delivered "
                f"{stats.packets_delivered}"
            )
        if not run.fired and (stats.flits_dropped or stats.packets_recovered):
            problems.append(
                f"net.{net.name}: fault ledger nonzero without a fired "
                f"fault (dropped {stats.flits_dropped}, recovered "
                f"{stats.packets_recovered})"
            )
    return problems


def check_invariants_case(
    case: VerifyCase, validate_every: int = 1
) -> CaseRun:
    """The fuzzer's core property: per-cycle audits + end-state contract.

    Raises on any violation; returns the completed :class:`CaseRun`
    otherwise (differential checks reuse it).
    """
    run = run_case(case, validate_every=validate_every)
    problems = end_state_problems(run)
    if problems:
        raise VerifyFailure(case, problems)
    return run


def deliveries_bounded(run: CaseRun) -> Tuple[int, int]:
    """(worst round-trip cycles, completed transactions) for reporting."""
    worst = 0
    for t in run.result.transactions:
        if t.completed is not None:
            worst = max(worst, t.round_trip)
    return worst, run.transactions_completed
