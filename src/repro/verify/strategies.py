"""Hypothesis strategies that generate valid-by-construction cases.

Every strategy here produces configurations the fabric builders accept
without further filtering — the constraints live in the generators, not
in ``assume`` calls, so shrinking stays fast and the example budget is
spent on real simulations:

* mesh widths and CB counts respect the placement rules probed from
  :mod:`repro.core.placement` (square grids, ``num_cbs <= width``, even
  widths for the concentrated-mesh overlay);
* fault specs only name links/buffers that exist on the generated grid
  (plus deliberate wildcards, which the injector resolves in design
  order), and every spec that can fire inside the run is transient —
  EquiNox's redundancy argument covers losing *some* injectors, not a
  plan that permanently severs a tile, so permanent faults are fuzzed
  separately via armed-but-never-firing plans;
* workload profiles are drawn from the real 29-benchmark suite.

Widths are weighted toward 4 so the per-cycle-audited fast profile
stays cheap; the deep profile widens the distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from hypothesis import strategies as st

from ..noc.faults import FaultSpec
from ..schemes import SCHEME_ORDER, get_spec
from ..workloads import profiles
from .space import VerifyCase

#: Width pool for the fast profile, weighted toward the cheapest mesh.
FAST_WIDTHS: Tuple[int, ...] = (4, 4, 4, 4, 5, 6)
#: Width pool for the deep profile (adds the paper's 8x8).
DEEP_WIDTHS: Tuple[int, ...] = (4, 4, 5, 6, 6, 8)

#: Latest base cycle a generated fault may fire at (well inside the
#: simulated window so its effects and heal are fully exercised).
FAULT_FIRE_MAX = 1200
#: Transient-fault heal delay bounds (cycles after the fire).
HEAL_DELAY = (1, 300)


def benchmarks() -> st.SearchStrategy[str]:
    """All 29 real benchmark names."""
    return st.sampled_from(profiles.names())


def schemes() -> st.SearchStrategy[str]:
    """All 9 compared schemes (loop baselines included)."""
    return st.sampled_from(SCHEME_ORDER)


@st.composite
def _mesh(draw, widths: Sequence[int], scheme: str) -> Tuple[int, int]:
    """A (width, num_cbs) pair valid for ``scheme``."""
    pool = [w for w in widths if w % 2 == 0] if (
        scheme == "Interposer-CMesh"
    ) else list(widths)
    if not pool:
        raise ValueError(
            f"width pool {tuple(widths)} has no even entry, so no valid "
            f"{scheme} mesh can be generated (even width required)"
        )
    width = draw(st.sampled_from(pool))
    num_cbs = draw(st.integers(2, width))
    return width, num_cbs


@st.composite
def fault_specs(
    draw,
    width: int,
    max_cycles: int,
    transient_only: bool = True,
) -> FaultSpec:
    """One fault spec that names real structure on a ``width`` mesh.

    ``transient_only`` forces a heal cycle onto any spec that can fire
    inside the run, keeping generated cases live-by-construction; the
    armed-but-never-firing differential plans exercise permanence.
    """
    kind = draw(
        st.sampled_from(
            ["eir_link", "eir_link_wild", "ni_buffer", "mesh_link",
             "router_port"]
        )
    )
    at_cycle = draw(st.integers(0, min(FAULT_FIRE_MAX, max_cycles // 2)))
    heal_cycle: Optional[int] = at_cycle + draw(
        st.integers(HEAL_DELAY[0], HEAL_DELAY[1])
    )
    if not transient_only and draw(st.booleans()):
        heal_cycle = None
    net = draw(st.sampled_from(["reply", "request", "any"]))
    node = draw(st.integers(0, width * width - 1))
    x, y = node % width, node // width
    if kind == "eir_link_wild":
        # Wildcard: the injector picks the next unused EIR link in
        # design order (matches nothing outside EquiNox — also worth
        # fuzzing: unmatched specs must be inert).
        return FaultSpec(
            kind="eir_link", net="reply",
            at_cycle=at_cycle, heal_cycle=heal_cycle,
        )
    if kind == "ni_buffer":
        return FaultSpec(
            kind="ni_buffer", node=node, buffer=draw(st.integers(0, 3)),
            net=net, at_cycle=at_cycle, heal_cycle=heal_cycle,
        )
    if kind == "mesh_link":
        # A real neighbour: east unless on the east edge, else north,
        # else (the north-east corner) west.
        if x + 1 < width:
            peer = node + 1
        elif y > 0:
            peer = node - width
        else:
            peer = node - 1
        return FaultSpec(
            kind="mesh_link", node=node, peer=peer,
            net=net, at_cycle=at_cycle, heal_cycle=heal_cycle,
        )
    if kind == "router_port":
        # Port 0 is east, 1 is west (routing.PORT_E/PORT_W): every node
        # on a width>=3 mesh has one of the two, so the spec always
        # expands to a real bidirectional link.
        port = 0 if x + 1 < width else 1
        return FaultSpec(
            kind="router_port", node=node, port=port,
            net=net, at_cycle=at_cycle, heal_cycle=heal_cycle,
        )
    # Targeted eir_link: name a CB/EIR pair that may or may not exist —
    # the injector must treat a non-existent pair as unmatched/inert.
    peer = draw(st.integers(0, width * width - 1))
    return FaultSpec(
        kind="eir_link", node=node, peer=peer, net="reply",
        at_cycle=at_cycle, heal_cycle=heal_cycle,
    )


@st.composite
def fault_plans(
    draw, width: int, max_cycles: int, max_specs: int = 3
) -> Tuple[FaultSpec, ...]:
    """An ordered plan of 0..``max_specs`` valid transient specs."""
    count = draw(st.integers(0, max_specs))
    return tuple(
        draw(fault_specs(width, max_cycles)) for _ in range(count)
    )


@st.composite
def _cases(
    draw,
    widths: Sequence[int],
    base_seed: int,
    with_faults: bool,
    max_cycles: int,
) -> VerifyCase:
    scheme = draw(schemes())
    spec = get_spec(scheme)
    width, num_cbs = draw(_mesh(widths, scheme))
    kwargs = {}
    if max_cycles:
        kwargs["max_cycles"] = max_cycles
    case = VerifyCase(
        scheme=scheme,
        benchmark=draw(benchmarks()),
        width=width,
        num_cbs=num_cbs,
        quota=draw(st.integers(2, 10)),
        seed=(draw(st.integers(0, 2**16 - 1)) + base_seed) % 2**20,
        scheduler=draw(st.sampled_from(["active", "dense"])),
        # Only engines that actually implement the scheme (loop
        # topologies are object-only).
        engine=draw(st.sampled_from(list(spec.engines))),
        telemetry=draw(st.sampled_from([0, 0, 1, 3])),
        **kwargs,
    )
    if (
        with_faults
        and spec.supports_faults
        and draw(st.integers(0, 9)) < 4
    ):
        case = case.with_variant(
            faults=draw(fault_plans(width, case.max_cycles))
        )
    return case


def cases(
    widths: Sequence[int] = FAST_WIDTHS,
    base_seed: int = 0,
    with_faults: bool = True,
    max_cycles: int = 0,
) -> st.SearchStrategy[VerifyCase]:
    """A complete valid :class:`VerifyCase`.

    ``base_seed`` decorrelates whole fuzzing campaigns (CLI ``--seed``)
    while staying deterministic for a fixed value; ``with_faults``
    gates fault-plan generation (differential checks supply their own
    plans); ``max_cycles`` of 0 keeps the space default.

    The width pool is validated *here*, at strategy construction, so a
    custom pool with no even entry (Interposer-CMesh needs one) fails
    with a clear ValueError before any campaign starts — not with an
    opaque ``sampled_from([])`` error mid-run.
    """
    widths = tuple(widths)
    if not widths:
        raise ValueError("verify width pool must not be empty")
    if not any(w % 2 == 0 for w in widths):
        raise ValueError(
            f"width pool {widths} has no even entry; Interposer-CMesh "
            f"needs an even mesh width — add one or drop the scheme"
        )
    return _cases(
        widths=widths,
        base_seed=base_seed,
        with_faults=with_faults,
        max_cycles=max_cycles,
    )
