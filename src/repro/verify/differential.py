"""Cross-product differential checks on ``stats_fingerprint``.

The simulator promises that several whole families of configuration
knobs are *observationally pure*: they may change wall-clock cost or
produce extra artifacts, but never the simulated behaviour.  For any
base case the following variants must produce a bit-identical
``stats_fingerprint`` (the sha256 over every network's full counter
snapshot):

``dense``
    The dense scheduler oracle vs the default active-set scheduler
    (with its quiescence fast-forward).
``telemetry``
    Telemetry sampling enabled vs disabled — probes are read-only.
``armed``
    A fault plan that is armed (binds real structure, passes
    validation) but provably never fires inside the run, vs no plan.
``all``
    All three perturbations at once — catches interactions the
    pairwise checks miss.

The engine-parity contract is the strongest promise of the family and
gets its own property (:func:`check_engine_parity_case`): the
struct-of-arrays vector engine (:mod:`repro.noc.vector`) must be
bit-identical to the per-object golden model on the case *verbatim* —
firing fault plans included, under either scheduler — not just on the
fault-stripped differential baseline.

A divergence raises :class:`DifferentialFailure` naming the variant,
which the harness shrinks and serializes like any other failure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..schemes import get_spec
from .invariants import run_case
from .space import VerifyCase


class DifferentialFailure(AssertionError):
    """A supposedly-pure knob changed the simulated behaviour."""

    def __init__(
        self,
        case: VerifyCase,
        base_fingerprint: str,
        divergent: List[Tuple[str, str]],
    ) -> None:
        self.case = case
        self.base_fingerprint = base_fingerprint
        self.divergent = list(divergent)
        names = ", ".join(name for name, _ in self.divergent)
        lines = "\n  ".join(
            f"{name}: {fp} != base {base_fingerprint}"
            for name, fp in self.divergent
        )
        super().__init__(
            f"stats_fingerprint diverged under [{names}] for "
            f"[{case.label()}]:\n  {lines}"
        )


def differential_variants(case: VerifyCase) -> Dict[str, VerifyCase]:
    """The variant map checked against the normalized base case."""
    base = base_case(case)
    other = "dense" if base.scheduler == "active" else "active"
    telemetry = case.telemetry or 2
    variants = {
        "scheduler": base.with_variant(scheduler=other),
        "telemetry": base.with_variant(telemetry=telemetry),
    }
    if get_spec(case.scheme).supports_faults:
        # Armed-plan purity only applies to schemes that accept fault
        # plans at all; a no-fault-capability scheme rejects even a
        # never-firing plan at arm time (by design, and tested).
        variants["armed-faults"] = base.with_variant(
            faults=base.armed_faults()
        )
        variants["all"] = base.with_variant(
            scheduler=other,
            telemetry=telemetry,
            faults=base.armed_faults(),
        )
    else:
        variants["all"] = base.with_variant(
            scheduler=other, telemetry=telemetry
        )
    return variants


def base_case(case: VerifyCase) -> VerifyCase:
    """Normalize a generated case into the differential baseline.

    Fault plans that can actually fire are stripped — a firing fault
    legitimately changes behaviour, so the differential baseline keeps
    only the topology/workload knobs and checks the pure ones around
    it.
    """
    return case.with_variant(faults=(), telemetry=0)


def check_differential_case(case: VerifyCase) -> str:
    """Run the base case and all variants; raise on any divergence.

    Runs without per-cycle audits (``validate_every=0``) — purity is
    about externally observable counters, and the invariant property
    already audits the same space.  Returns the base fingerprint.
    """
    base = base_case(case)
    base_run = run_case(base, validate_every=0)
    divergent: List[Tuple[str, str]] = []
    for name, variant in differential_variants(case).items():
        variant_run = run_case(variant, validate_every=0)
        if variant_run.stats_fingerprint != base_run.stats_fingerprint:
            divergent.append((name, variant_run.stats_fingerprint))
    if divergent:
        raise DifferentialFailure(
            case, base_run.stats_fingerprint, divergent
        )
    return base_run.stats_fingerprint


def engine_counterpart(case: VerifyCase) -> VerifyCase:
    """The same case on the other tick engine."""
    other = "vector" if case.engine == "object" else "object"
    return case.with_variant(engine=other)


def check_engine_parity_case(case: VerifyCase) -> str:
    """Run the case verbatim under both engines; raise on divergence.

    Unlike :func:`check_differential_case` this does *not* normalize
    through :func:`base_case`: firing fault plans, telemetry sampling
    and the generated scheduler all stay in place, because the vector
    engine claims equivalence on the full config space, not just the
    pure-knob baseline.  Returns the fingerprint both engines agree on.
    """
    base_run = run_case(case, validate_every=0)
    if len(get_spec(case.scheme).engines) < 2:
        # Object-only schemes have no counterpart engine: the parity
        # property holds vacuously, but the base run still exercised
        # the case (liveness, accounting, watchdog).
        return base_run.stats_fingerprint
    twin = engine_counterpart(case)
    twin_run = run_case(twin, validate_every=0)
    if twin_run.stats_fingerprint != base_run.stats_fingerprint:
        raise DifferentialFailure(
            case,
            base_run.stats_fingerprint,
            [(f"engine={twin.engine}", twin_run.stats_fingerprint)],
        )
    return base_run.stats_fingerprint
