"""The verification configuration space: one generated case = one run.

A :class:`VerifyCase` is the unit the property harness generates,
shrinks and replays: everything a short simulation needs — scheme,
benchmark, mesh size, CB count, workload seed, scheduler discipline,
telemetry sampling and a (possibly empty) fault plan — expressed as
plain data with a canonical JSON form.  The canonical form feeds the
replay artifacts (:mod:`repro.verify.artifact`) and the case digest, so
a CI failure names a config that reproduces locally byte-for-byte.

Validity is enforced at construction (`__post_init__`), mirroring the
real constraints of the fabric builders: square grids only, ``num_cbs
<= width`` (diamond/N-Queen placements), an even width for the
concentrated-mesh overlay, and fault specs that pass
:class:`~repro.noc.faults.FaultSpec` validation.  The hypothesis
strategies in :mod:`repro.verify.strategies` only ever produce valid
cases; the checks here are the safety net for hand-written replays.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Tuple

from ..harness.experiment import ExperimentConfig
from ..noc.faults import FaultSpec
from ..schemes import SCHEME_ORDER, get_spec
from ..workloads.profiles import BY_NAME

#: Default simulated-cycle bound: liveness means finishing well inside it.
DEFAULT_MAX_CYCLES = 6000
#: Default stall-watchdog window: generously above any transient-fault
#: heal window the strategies generate, so only a genuine deadlock trips.
DEFAULT_WATCHDOG = 2500
#: MCTS budget for EquiNox cases: tiny meshes need only a shallow search.
DEFAULT_MCTS_ITERATIONS = 4


@dataclass(frozen=True)
class VerifyCase:
    """One generated verification configuration (plain, canonical data)."""

    scheme: str
    benchmark: str
    width: int
    num_cbs: int
    quota: int
    seed: int
    scheduler: str = "active"
    # Tick engine: "object" (per-object golden reference) or "vector"
    # (struct-of-arrays batched tick).  Both must produce bit-identical
    # stats fingerprints; the engine-parity property enforces it.
    engine: str = "object"
    # Telemetry sampling interval in base cycles (0 = off).  Passed to
    # the registry verbatim (1 really means every cycle here).
    telemetry: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    max_cycles: int = DEFAULT_MAX_CYCLES
    watchdog_cycles: int = DEFAULT_WATCHDOG
    mcts_iterations: int = DEFAULT_MCTS_ITERATIONS

    def __post_init__(self) -> None:
        if self.scheme not in SCHEME_ORDER:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; known: {SCHEME_ORDER}"
            )
        spec = get_spec(self.scheme)
        if self.faults and not spec.supports_faults:
            # Even an armed-but-never-firing plan is rejected at
            # arm time for a no-fault-capability scheme, so the
            # differential harness must not generate one here.
            raise ValueError(
                f"scheme {self.scheme!r} does not support fault plans"
            )
        if self.engine not in spec.engines:
            raise ValueError(
                f"scheme {self.scheme!r} is not implemented by the "
                f"{self.engine!r} engine (supported: {spec.engines})"
            )
        if self.benchmark not in BY_NAME:
            raise ValueError(f"unknown benchmark {self.benchmark!r}")
        if self.width < 3:
            raise ValueError("width must be >= 3")
        if not 1 <= self.num_cbs <= self.width:
            raise ValueError(
                f"num_cbs {self.num_cbs} outside [1, width={self.width}]"
            )
        if self.scheme == "Interposer-CMesh" and self.width % 2:
            raise ValueError("Interposer-CMesh needs an even mesh width")
        if self.quota < 1:
            raise ValueError("quota must be >= 1")
        if self.scheduler not in ("active", "dense"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.engine not in ("object", "vector"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.telemetry < 0:
            raise ValueError("telemetry interval must be >= 0")
        if self.max_cycles < 100:
            raise ValueError("max_cycles must be >= 100")
        if self.watchdog_cycles < 1:
            raise ValueError("watchdog_cycles must be >= 1")
        object.__setattr__(self, "faults", tuple(self.faults))

    # ------------------------------------------------------------------
    @property
    def faulted(self) -> bool:
        """Whether any spec can fire inside the simulated window."""
        return any(s.at_cycle <= self.max_cycles for s in self.faults)

    def experiment_config(self) -> ExperimentConfig:
        """The harness-level config this case corresponds to."""
        return ExperimentConfig(
            width=self.width,
            num_cbs=self.num_cbs,
            quota=self.quota,
            seed=self.seed,
            mcts_iterations=self.mcts_iterations,
            max_cycles=self.max_cycles,
            watchdog_cycles=self.watchdog_cycles,
            faults=self.faults,
            scheduler=self.scheduler,
            engine=self.engine,
        )

    def label(self) -> str:
        """Short human-readable identity for progress lines and reports."""
        bits = [
            f"{self.scheme} x {self.benchmark}",
            f"{self.width}x{self.width}",
            f"cbs={self.num_cbs}",
            f"quota={self.quota}",
            f"seed={self.seed}",
            self.scheduler,
        ]
        if self.engine != "object":
            bits.append(self.engine)
        if self.telemetry:
            bits.append(f"telemetry={self.telemetry}")
        if self.faults:
            bits.append(f"faults={len(self.faults)}")
        return " ".join(bits)

    # ------------------------------------------------------------------
    # Canonical plain-data form (replay artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["faults"] = [spec.to_dict() for spec in self.faults]
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "VerifyCase":
        if not isinstance(data, dict):
            raise ValueError(f"verify case must be an object, got {data!r}")
        payload = dict(data)
        raw_faults = payload.pop("faults", [])
        if not isinstance(raw_faults, (list, tuple)):
            raise ValueError("verify case 'faults' must be a list")
        faults = tuple(FaultSpec.from_dict(item) for item in raw_faults)
        required = {
            "scheme", "benchmark", "width", "num_cbs", "quota", "seed",
        }
        optional = {
            "scheduler", "engine", "telemetry", "max_cycles",
            "watchdog_cycles", "mcts_iterations",
        }
        unknown = set(payload) - required - optional
        if unknown:
            raise ValueError(f"unknown verify case fields {sorted(unknown)}")
        missing = required - set(payload)
        if missing:
            # A truncated or hand-edited artifact must fail the same
            # ValueError way as every other validation, not leak a
            # TypeError from the dataclass constructor.
            raise ValueError(
                f"verify case missing required fields {sorted(missing)}"
            )
        return VerifyCase(faults=faults, **payload)

    def digest(self) -> str:
        """Short stable digest of the canonical form (artifact keying)."""
        from ..telemetry import dumps_record

        payload = dumps_record(self.to_dict())
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    def with_variant(self, **changes: object) -> "VerifyCase":
        """A copy with some knobs changed (differential variants)."""
        return replace(self, **changes)

    def armed_faults(self) -> Tuple[FaultSpec, ...]:
        """A plan that is armed but provably never fires in this run.

        Every spec is shifted past ``max_cycles`` (heals stay ordered),
        and a wildcard EIR-link + NI-buffer pair is added so even a
        case generated without faults gets a non-empty armed plan.  The
        differential contract says running with this plan must be
        bit-identical to running with no plan at all.
        """
        beyond = self.max_cycles + 1
        shifted = []
        for spec in self.faults:
            heal = None
            if spec.heal_cycle is not None:
                heal = beyond + 1 + (spec.heal_cycle - spec.at_cycle)
            shifted.append(
                replace(spec, at_cycle=beyond + 1, heal_cycle=heal)
            )
        shifted.append(FaultSpec(kind="eir_link", at_cycle=beyond))
        # Nodes 0 and 1 are adjacent on every grid, so this spec always
        # binds a real link — the armed plan is never vacuously empty.
        shifted.append(
            FaultSpec(kind="mesh_link", node=0, peer=1, at_cycle=beyond)
        )
        return tuple(shifted)
