"""Replayable failure artifacts: a CI failure is a one-command repro.

When a property fails, the harness serializes the *shrunk* minimal
case as canonical JSON (the same ``sort_keys`` / tight-separator form
the telemetry exporter uses, so artifacts diff cleanly and hash
stably) together with the property name and a sanitized error text.
``repro verify --replay <file>`` re-runs exactly that property on
exactly that case.

Artifacts are byte-identical across runs of the same failure: the
error text is scrubbed of memory addresses (``repr`` of live routers
and buffers embeds ``0x...`` ids) and nothing time- or host-dependent
is recorded.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Union

from .. import __version__
from ..telemetry import dumps_record, write_json
from .space import VerifyCase

ARTIFACT_SCHEMA = 1

#: Properties a replay can re-run, by artifact ``property`` name.
PROPERTY_INVARIANTS = "invariants"
PROPERTY_DIFFERENTIAL = "differential"
PROPERTY_ENGINE_PARITY = "engine-parity"
KNOWN_PROPERTIES = (
    PROPERTY_INVARIANTS, PROPERTY_DIFFERENTIAL, PROPERTY_ENGINE_PARITY
)

_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def sanitize_error(text: str, limit: int = 4000) -> str:
    """Strip run-dependent bytes (object addresses) and bound the size."""
    cleaned = _ADDRESS.sub("0x...", text)
    if len(cleaned) > limit:
        cleaned = cleaned[:limit] + " ...[truncated]"
    return cleaned


def build_artifact(
    prop: str, case: VerifyCase, error: str
) -> Dict[str, object]:
    if prop not in KNOWN_PROPERTIES:
        raise ValueError(
            f"unknown verify property {prop!r}; known: {KNOWN_PROPERTIES}"
        )
    return {
        "schema": ARTIFACT_SCHEMA,
        "kind": "verify_repro",
        "version": __version__,
        "property": prop,
        "error": sanitize_error(error),
        "case": case.to_dict(),
        "case_digest": case.digest(),
    }


def artifact_filename(prop: str, case: VerifyCase) -> str:
    return f"verify-{prop}-{case.digest()}.json"


def write_failure(
    directory: Union[str, Path], prop: str, case: VerifyCase, error: str
) -> Path:
    """Serialize one shrunk failure; returns the artifact path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = build_artifact(prop, case, error)
    return write_json(directory / artifact_filename(prop, case), record)


def load_artifact(path: Union[str, Path]) -> Dict[str, object]:
    """Parse and validate a replay artifact."""
    import json

    raw = Path(path).read_text()
    record = json.loads(raw)
    if not isinstance(record, dict):
        raise ValueError(f"artifact {path} is not a JSON object")
    if record.get("kind") != "verify_repro":
        raise ValueError(
            f"artifact {path} has kind {record.get('kind')!r}, "
            f"expected 'verify_repro'"
        )
    schema = record.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"artifact {path} has schema {schema!r}, supported: "
            f"{ARTIFACT_SCHEMA}"
        )
    prop = record.get("property")
    if prop not in KNOWN_PROPERTIES:
        raise ValueError(
            f"artifact {path} names unknown property {prop!r}"
        )
    case = VerifyCase.from_dict(record.get("case"))
    digest = record.get("case_digest")
    if digest is not None and digest != case.digest():
        raise ValueError(
            f"artifact {path} case_digest {digest!r} does not match the "
            f"embedded case ({case.digest()}); file edited or corrupted"
        )
    record["case"] = case
    return record


def replay(path: Union[str, Path]) -> bool:
    """Re-run the artifact's property on its case.

    Returns ``True`` when the failure still reproduces (the property
    raises), ``False`` when the case now passes — i.e. the bug is
    fixed.  Unknown/invalid artifacts raise ``ValueError``.

    "Still reproduces" means any of the harness's failure exceptions —
    explicit check violations *and* the simulator's per-cycle audit and
    stall-watchdog errors — exactly the ``FAILURE_EXCEPTIONS`` set the
    campaign records.
    """
    from .differential import (
        check_differential_case,
        check_engine_parity_case,
    )
    from .harness import FAILURE_EXCEPTIONS
    from .invariants import check_invariants_case

    record = load_artifact(path)
    case = record["case"]
    prop = record["property"]
    try:
        if prop == PROPERTY_INVARIANTS:
            check_invariants_case(case)
        elif prop == PROPERTY_ENGINE_PARITY:
            check_engine_parity_case(case)
        else:
            check_differential_case(case)
    except FAILURE_EXCEPTIONS:
        return True
    return False


def artifact_bytes(prop: str, case: VerifyCase, error: str) -> bytes:
    """The exact bytes :func:`write_failure` persists (determinism tests)."""
    return (dumps_record(build_artifact(prop, case, error)) + "\n").encode()
