"""A physical network: routers, links, event scheduling and delivery.

The network owns its clock (``cycle``), its routers, the in-flight flit
and credit events, the network interfaces that inject traffic, and the
per-node receive queues that ejected packets land in.  Multiple
networks (request/reply, CMesh overlay, DA2Mesh subnets) coexist in one
system and are ticked by the fabric at their own clock ratios.

Event model: router arbitration is processed per-router within a cycle,
but every effect (flit arrival downstream, credit return upstream) is
scheduled at least one cycle in the future, so intra-cycle processing
order cannot leak between routers.

Scheduling: two tick disciplines produce bit-identical behaviour.  The
*dense* scheduler walks every router and NI each cycle (the
differential-testing oracle); the *active* scheduler (default) visits
only armed components — routers holding flits and NIs with queued
packets or loaded buffers — and relies on every work-creating event
(flit arrival, NI enqueue, fault requeue) waking the affected
component.  Round-robin pointers advance only on wins, so skipping a
workless component is exactly equivalent to visiting it.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.grid import Grid
from . import routing
from .router import OutputPort, Router
from .stats import NetworkStats
from .types import Flit, Packet

SCHEDULER_ENV = "REPRO_SCHEDULER"
SCHEDULERS = ("dense", "active")

ENGINE_ENV = "REPRO_ENGINE"
ENGINES = ("object", "vector")


def resolve_scheduler(value: Optional[str] = None) -> str:
    """Normalise a scheduler choice (arg > ``REPRO_SCHEDULER`` > active)."""
    if not value:
        value = os.environ.get(SCHEDULER_ENV, "")
    value = (value or "active").strip().lower()
    if value not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {value!r}; expected one of {SCHEDULERS}"
        )
    return value


def resolve_engine(value: Optional[str] = None) -> str:
    """Normalise a tick-engine choice (arg > ``REPRO_ENGINE`` > object).

    ``object`` is the golden-reference per-object simulator; ``vector``
    is the struct-of-arrays engine (:mod:`repro.noc.vector`), proven
    bit-identical by the engine-parity differential contract.
    """
    if not value:
        value = os.environ.get(ENGINE_ENV, "")
    value = (value or "object").strip().lower()
    if value not in ENGINES:
        raise ValueError(
            f"unknown engine {value!r}; expected one of {ENGINES}"
        )
    return value


def network_class(engine: Optional[str] = None):
    """The :class:`Network` subclass implementing ``engine``."""
    if resolve_engine(engine) == "vector":
        from .vector import VectorNetwork

        return VectorNetwork
    return Network


class Network:
    """One physical NoC (mesh or concentrated mesh)."""

    engine = "object"

    def __init__(
        self,
        name: str,
        grid: Grid,
        flit_bytes: int,
        num_vcs: int = 2,
        vc_capacity: int = 5,
        routing_algorithm: str = "oddeven",
        vc_classes: Optional[Sequence[Sequence[int]]] = None,
        clock_ratio: float = 1.0,
        eject_capacity: Optional[int] = None,
        monopolize: bool = False,
        monopolize_injection: bool = False,
        interposer_mesh_links: bool = False,
        scheduler: Optional[str] = None,
        loops: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        self.name = name
        self.scheduler = resolve_scheduler(scheduler)
        self._active_scheduler = self.scheduler == "active"
        self.grid = grid
        self.flit_bytes = flit_bytes
        self.num_vcs = num_vcs
        self.vc_capacity = vc_capacity
        self.clock_ratio = clock_ratio
        self.monopolize_injection = monopolize_injection
        self.interposer_mesh_links = interposer_mesh_links
        if vc_classes is None:
            vc_classes = [tuple(range(num_vcs))]
        self.vc_classes = [tuple(c) for c in vc_classes]
        if eject_capacity is None:
            # The receive buffer must hold at least one full packet or a
            # long packet could never finish ejecting (credits only
            # return when the whole packet is consumed).
            eject_capacity = 2 * vc_capacity
        self.eject_capacity = eject_capacity
        self.cycle = 0
        self.stats = NetworkStats(grid.size, flit_bytes)
        self.routers: List[Router] = []
        for node in grid.nodes():
            self.routers.append(
                Router(
                    node=node,
                    grid=grid,
                    network=self,
                    num_vcs=num_vcs,
                    vc_capacity=vc_capacity,
                    routing_algorithm=routing_algorithm,
                    vc_classes=self.vc_classes,
                    eject_capacity=eject_capacity,
                    monopolize=monopolize,
                )
            )
        # Loop topologies (ring/routerless) replace the mesh links with
        # precomputed unidirectional loops; each loop hop is its own
        # point-to-point link.  Wiring must precede the upstream map.
        self.loops: Optional[List[Tuple[int, ...]]] = None
        self.loop_ports: List[List[int]] = []
        if loops is None:
            self._wire_mesh()
        else:
            self._wire_loops(loops)
        # Optional hook replacing the mesh hop count in the zero-load
        # latency model: called as hook(packet, inject, node).  Loop
        # topologies supply the along-loop distance.
        self.hop_fn = None
        # Optional hook giving the dateline VC a buffered flit must
        # occupy at a node (loop topologies); the audit uses it instead
        # of the class-partition check, which loops do not obey.
        self.loop_vc_fn = None
        # (node, in_port) -> upstream OutputPort, for credit return.
        self.upstream: Dict[Tuple[int, int], OutputPort] = {}
        for router in self.routers:
            for port, (nbr, nbr_port) in router.neighbors.items():
                self.upstream[(nbr, nbr_port)] = router.outputs[port]
        self._arrivals: Dict[int, List[Tuple]] = {}
        self._credits: Dict[int, List[Tuple[OutputPort, int]]] = {}
        # Active-set state: router nodes holding flits, and the
        # registration indices of NIs with pending work.  Maintained
        # only under the active scheduler; the dense scheduler walks
        # everything unconditionally and serves as the oracle.
        self.active: set = set()
        self._active_nis: set = set()
        # Set (and never cleared) by the fault injector once any fault
        # actually fires in this network.  Routers then forbid sending
        # a flit back out its arrival port — a move only a fault detour
        # can make attractive — so fault-free runs stay bit-identical.
        self.faults_fired = False
        self.nis: List["object"] = []  # NetworkInterface instances
        # (node, eject_port) -> deque of (packet, eject OutputPort).
        self.receive_queues: Dict[Tuple[int, int], Deque[Tuple[Packet, OutputPort]]] = {}
        self._pop_rr: Dict[int, int] = {}  # per-node eject-port rotation
        # Delivered packets queued per node (all eject ports): lets
        # pop_delivered return immediately for the common empty case.
        self._delivered: Dict[int, int] = {}
        self._delivered_total = 0
        self.last_progress = 0  # cycle of the most recent committed move
        # Optional injection hook: called as hook(buffer, flit, cycle)
        # when an NI buffer sends a head flit.  Tracers attach here; the
        # disabled path costs one attribute test per head flit.
        self.on_inject = None
        # Optional observation hooks, fired by *every* engine: on_move
        # for each committed crossbar traversal, on_deliver for each
        # sink arrival (tail or not).  Tracers attach here instead of
        # monkey-patching _commit/_deliver so the vector engine's
        # batched commit path can honour them too.
        self.on_move = None
        self.on_deliver = None

    def _wire_mesh(self) -> None:
        for node in self.grid.nodes():
            x, y = self.grid.coord(node)
            for port in range(routing.NUM_MESH_PORTS):
                dx, dy = routing.port_delta(port)
                if self.grid.contains(x + dx, y + dy):
                    nbr = self.grid.node(x + dx, y + dy)
                    self.routers[node].connect(port, nbr, routing.opposite(port))

    def _wire_loops(self, loops: Sequence[Sequence[int]]) -> None:
        """Wire precomputed unidirectional loops instead of mesh links.

        ``loop_ports[lane][i]`` is the output port that ``loops[lane][i]``
        uses to forward along ``lane``; the mesh ports 0..3 stay unwired
        (and therefore always empty), so the tick loop skips them for free.
        """
        self.loops = [tuple(lane) for lane in loops]
        self.loop_ports = []
        for lane in self.loops:
            ports: List[int] = []
            length = len(lane)
            for i, node in enumerate(lane):
                nxt = lane[(i + 1) % length]
                out_port = self.routers[node].add_output_port(
                    self.num_vcs, self.vc_capacity
                )
                in_port = self.routers[nxt].add_input_port()
                self.routers[node].connect(out_port, nxt, in_port)
                ports.append(out_port)
            self.loop_ports.append(ports)

    # ------------------------------------------------------------------
    # Configuration helpers
    # ------------------------------------------------------------------
    def add_injection_port(self, node: int) -> int:
        """Add an NI-facing input port to ``node``'s router."""
        return self.routers[node].add_input_port()

    def add_eject_port(self, node: int, capacity: Optional[int] = None) -> int:
        """Add an extra ejection port (MultiPort / concentration).

        Defaults to the network's configured ``eject_capacity`` so extra
        ports match the depth of the ports built at construction time
        (a ``vc_capacity``-derived default here would silently give
        concentrated-mesh ports the wrong depth whenever the network
        was constructed with an explicit ``eject_capacity``).
        """
        if capacity is None:
            capacity = self.eject_capacity
        return self.routers[node].add_eject_port(capacity)

    def register_ni(self, ni: "object") -> None:
        ni._net_index = len(self.nis)
        self.nis.append(ni)

    def wake_ni(self, ni: "object") -> None:
        """Resync an NI's armed state after a mutation outside its tick.

        Call *after* the mutation (enqueue, credit return to a stalled
        link, fault quarantine/heal/requeue): the NI is armed exactly
        when it has work, keeping the armed set equal to the set of NIs
        with work — the scheduler audit's invariant.
        """
        if self._active_scheduler:
            if ni.has_work():
                self._active_nis.add(ni._net_index)
            else:
                self._active_nis.discard(ni._net_index)

    # ------------------------------------------------------------------
    # Telemetry (read-only probes; see repro.telemetry)
    # ------------------------------------------------------------------
    def register_telemetry(self, registry: "object", prefix: str) -> None:
        """Register this network's probes into a telemetry registry.

        Everything registered here only *reads* simulator state, so a
        telemetry-enabled run keeps ``stats_fingerprint`` bit-identical
        to a telemetry-off run (pinned by the differential test).
        """
        stats = self.stats

        if self._active_scheduler:
            def active_nodes():
                return self.active
        else:
            # Dense oracle: the equivalent ground truth is the set of
            # routers currently holding flits.
            def active_nodes():
                return [r.node for r in self.routers if r.flit_count]

        registry.register_series(f"{prefix}.in_flight", self.in_flight)
        registry.register_series(
            f"{prefix}.flits_injected", lambda: stats.flits_injected
        )
        registry.register_series(
            f"{prefix}.flits_ejected", lambda: stats.flits_ejected
        )
        registry.register_series(
            f"{prefix}.ni_backlog",
            lambda: sum(ni.backlog() for ni in self.nis),
        )
        registry.register_series(
            f"{prefix}.ni_buffer_flits",
            lambda: sum(ni.buffer_occupancy() for ni in self.nis),
        )
        registry.register_series(
            f"{prefix}.active_routers", lambda: len(active_nodes())
        )
        registry.register_residency(
            f"{prefix}.router_active", self.grid.size, active_nodes
        )
        for name in NetworkStats.TELEMETRY_COUNTERS:
            registry.register_final(
                f"{prefix}.{name}", lambda name=name: getattr(stats, name)
            )
        registry.register_final(
            f"{prefix}.peak_router_flits",
            lambda: max((r.peak_flits for r in self.routers), default=0),
        )
        for ni in self.nis:
            ni.register_telemetry(registry, prefix)

    # ------------------------------------------------------------------
    # Event scheduling (used by routers and NIs)
    # ------------------------------------------------------------------
    def schedule_flit(
        self, cycle: int, node: int, port: int, vc: int, flit: Flit
    ) -> None:
        self._arrivals.setdefault(cycle, []).append((node, port, vc, flit))

    def schedule_credit(self, cycle: int, port: OutputPort, vc: int) -> None:
        self._credits.setdefault(cycle, []).append((port, vc))

    def reclaim_scheduled_flits(self, node: int, port: int) -> List[Flit]:
        """Remove and return flits in flight toward ``(node, port)``.

        Fault-injection support: when a link fails, the flits already on
        the wire are pulled back in arrival order so the injector can
        restore them upstream and account for them in the dropped-flit
        ledger (keeping the conservation audits balanced).
        """
        reclaimed: List[Flit] = []
        for cycle in sorted(self._arrivals):
            events = self._arrivals[cycle]
            kept = [ev for ev in events if ev[0] != node or ev[1] != port]
            if len(kept) == len(events):
                continue
            reclaimed.extend(
                ev[3] for ev in events if ev[0] == node and ev[1] == port
            )
            if kept:
                self._arrivals[cycle] = kept
            else:
                del self._arrivals[cycle]
        return reclaimed

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def pop_delivered(self, node: int, port: Optional[int] = None) -> Optional[Packet]:
        """Consume one delivered packet at ``node`` (frees its buffer credits).

        With ``port`` given, only that ejection port's queue is drained
        (concentrated meshes dedicate a port per attached tile);
        otherwise the node's ejection ports are scanned round-robin.
        """
        if not self._delivered.get(node):
            return None
        rotate = False
        if port is not None:
            ports = [port]
        else:
            ports = self.routers[node].eject_ports
            if len(ports) > 1:
                rotate = True
                start = self._pop_rr.get(node, 0)
                ports = ports[start:] + ports[:start]
        for k, p in enumerate(ports):
            queue = self.receive_queues.get((node, p))
            if queue:
                packet, eject_port = queue.popleft()
                eject_port.credits[0] += packet.size
                self._delivered[node] -= 1
                self._delivered_total -= 1
                if rotate:
                    # Advance past the port that actually served, and
                    # only on a successful pop — rotating on empty scans
                    # (or by a fixed step) starves later ports whenever
                    # load is asymmetric across eject ports.
                    self._pop_rr[node] = (start + k + 1) % len(ports)
                return packet
        return None

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the network by one of its own clock cycles."""
        self.cycle += 1
        cycle = self.cycle
        self.stats.cycles += 1

        active = self._active_scheduler

        for port, vc in self._credits.pop(cycle, ()):  # credit returns
            port.credits[vc] += 1
            if port.waker is not None:
                port.waker()

        for node, port, vc, flit in self._arrivals.pop(cycle, ()):
            if port < 0:  # ejection sink arrival; -port-1 is the eject port
                self._deliver(node, -port - 1, flit, cycle)
            else:
                self.routers[node].accept(port, vc, flit, cycle)
                self.stats.buffer_writes += 1
                if active:
                    self.active.add(node)

        # NIs.  All effects (flit onto a link, core reservation) are
        # local to the NI or scheduled >= 1 cycle ahead, and an NI only
        # gains work outside its own tick via enqueue, fault requeue, or
        # a credit returning to a stalled injection link — all of which
        # wake it — so visiting only armed NIs (in registration order,
        # matching the dense walk over ``nis``) is bit-identical to
        # visiting all of them: ticking a credit-stalled NI is a no-op.
        if active:
            if self._active_nis:
                idle_nis: List[int] = []
                nis = self.nis
                for idx in sorted(self._active_nis):
                    ni = nis[idx]
                    ni.tick(cycle)
                    if not ni.has_work():
                        idle_nis.append(idx)
                for idx in idle_nis:
                    self._active_nis.discard(idx)
            routers = self.routers
            finished: List[int] = []
            for node in sorted(self.active):
                router = routers[node]
                moves = router.tick(cycle)
                for in_port, in_vc, out_port, out_vc, flit in moves:
                    self._commit(
                        router, in_port, in_vc, out_port, out_vc, flit, cycle
                    )
                if router.flit_count == 0:
                    finished.append(node)
            for node in finished:
                self.active.discard(node)
            return

        # Dense oracle: unconditionally walk every NI and router.  A
        # workless component's tick is a no-op (rr pointers advance only
        # on wins), so this is behaviourally identical to the active
        # path — and catches any missed wake as a fingerprint mismatch.
        for ni in self.nis:
            ni.tick(cycle)
        for router in self.routers:
            moves = router.tick(cycle)
            for in_port, in_vc, out_port, out_vc, flit in moves:
                self._commit(
                    router, in_port, in_vc, out_port, out_vc, flit, cycle
                )

    def _commit(
        self,
        router: Router,
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        flit: Flit,
        cycle: int,
    ) -> None:
        if self.on_move is not None:
            self.on_move(router.node, in_port, in_vc, out_port, out_vc, flit, cycle)
        # A traversal occupies the router for at least one cycle; waits
        # in the input buffer add on top (the Figure-4 heat metric).
        self.stats.record_move(router.node, cycle - flit.buffered_at + 1)
        up = self.upstream.get((router.node, in_port))
        if up is not None:
            self.schedule_credit(cycle + 1, up, in_vc)
        if out_port in router.neighbors:
            nbr, nbr_port = router.neighbors[out_port]
            self.schedule_flit(cycle + 1, nbr, nbr_port, out_vc, flit)
            if self.interposer_mesh_links:
                self.stats.link_hops_interposer += 1
                self.stats.interposer_hop_length += 1.0
            else:
                self.stats.link_hops_onchip += 1
        else:  # ejection
            eject_port_obj = router.outputs[out_port]
            self._arrivals.setdefault(cycle + 1, []).append(
                (router.node, -out_port - 1, 0, flit)
            )
            flit.packet.eject_port = eject_port_obj
            self.stats.flits_ejected += 1
        self.last_progress = cycle

    def _deliver(self, node: int, eject_port: int, flit: Flit, cycle: int) -> None:
        if self.on_deliver is not None:
            self.on_deliver(node, eject_port, flit, cycle)
        if not flit.is_tail:
            return
        packet = flit.packet
        packet.delivered = cycle
        self.receive_queues.setdefault((node, eject_port), deque()).append(
            (packet, packet.eject_port)
        )
        self._delivered[node] = self._delivered.get(node, 0) + 1
        self._delivered_total += 1
        inject = packet.inject_router if packet.inject_router is not None else packet.src
        if self.hop_fn is not None:
            hops = self.hop_fn(packet, inject, node)
        else:
            hops = self.grid.hops(inject, node)
        # Zero-load pipeline: 1 cycle NI link + 1 cycle per hop + 1 cycle
        # eject arbitration + 1 cycle to the sink + (size-1) serialisation.
        non_queuing = hops + packet.size + 2
        self.stats.record_delivery(packet, non_queuing)

    # ------------------------------------------------------------------
    # Quiescence (fast-forward support)
    # ------------------------------------------------------------------
    def skip_cycle(self) -> None:
        """Advance the clock over one provably-empty cycle.

        Only valid when :meth:`quiescent` holds: a tick of a fully
        quiescent network does nothing but increment ``cycle`` and
        ``stats.cycles``, so skipping is bit-identical to ticking.
        """
        self.cycle += 1
        self.stats.cycles += 1

    def quiescent(self) -> bool:
        """Nothing scheduled, buffered, queued or awaiting pop.

        Stronger than :meth:`idle`: pending credit returns and
        delivered-but-unpopped packets also block quiescence, because a
        tick (or an external pop) could still change state.
        """
        if self._arrivals or self._credits or self._delivered_total:
            return False
        if self._active_scheduler:
            return not self.active and not self._active_nis
        return self.in_flight() == 0 and all(
            not ni.has_work() for ni in self.nis
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sync_for_inspection(self) -> None:
        """Make router/NI *objects* reflect canonical simulator state.

        The object engine is always in sync, so this is a no-op; the
        vector engine overrides it to materialise its struct-of-arrays
        state back onto the Router/OutputPort objects.  Auditors and
        dump tools call this before reading object state directly.
        """

    def soa_invalidate(self) -> None:
        """Notify the engine that structure changed behind its back.

        Fault injection mutates ``failed_outputs`` / ``faults_fired`` /
        NI wiring directly on the objects; the vector engine overrides
        this to drop its retry memoisation so every router re-attempts
        allocation.  No-op for the object engine.
        """

    def in_flight(self) -> int:
        """Flits buffered in routers plus scheduled arrivals."""
        if self._active_scheduler:
            routers = self.routers
            buffered = sum(routers[n].flit_count for n in self.active)
        else:
            buffered = sum(r.flit_count for r in self.routers)
        scheduled = sum(len(v) for v in self._arrivals.values())
        return buffered + scheduled

    def idle(self) -> bool:
        """No flits anywhere and no NI has pending work."""
        if self._active_scheduler:
            # Active-set invariants: every buffered flit's router is in
            # ``active`` and every NI with work is armed (NI.idle() is
            # exactly not-has_work()).  Pending arrivals land in
            # ``_arrivals``; pending credits don't count here (matching
            # the dense computation below).
            return (
                not self.active
                and not self._active_nis
                and not self._arrivals
            )
        if self.in_flight():
            return False
        return all(ni.idle() for ni in self.nis)
