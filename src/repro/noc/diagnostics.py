"""Stall diagnostics: structured dumps and the periodic validator.

When a simulation hangs, the worst possible outcome is a 400k-cycle
timeout with no explanation.  This module turns a hang into a located
report:

* :func:`network_dump` renders one network's live state — per-router
  occupancy, VC allocations and owners, oldest-flit age, NI backlogs,
  the conservation-audit report, and the oldest stuck packet's current
  position (plus its full event trace when a tracer is attached);
* :func:`stall_dump` does that for every network of a fabric;
* :class:`Validator` is the harness-side driver: armed via
  ``REPRO_VALIDATE`` / ``--validate``, it audits every network every
  ``interval`` cycles (raising :class:`NetworkAuditError` on the first
  violation) and keeps an auto-attached :class:`PacketTracer` per
  network, pruned of delivered packets so only in-flight history is
  retained for the watchdog dump.

Nothing here runs when validation is disabled: the simulator's hot
loop pays a single ``is None`` test per cycle.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from .network import Network
from .tracer import PacketTracer
from .types import Packet
from .validation import AuditReport, NetworkAuditError, audit_network

DEFAULT_AUDIT_INTERVAL = 512
"""Cycles between periodic audits when ``REPRO_VALIDATE=1``."""

VALIDATE_ENV = "REPRO_VALIDATE"
WATCHDOG_ENV = "REPRO_WATCHDOG_CYCLES"


def validate_interval_from_env(default: int = 0) -> int:
    """Audit interval requested via ``REPRO_VALIDATE`` (0 = disabled).

    ``0``/empty/unset disable validation, ``1`` enables it at
    :data:`DEFAULT_AUDIT_INTERVAL`, any larger integer is the interval
    itself.
    """
    raw = os.environ.get(VALIDATE_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return resolve_validate_interval(value)


def resolve_validate_interval(value: int) -> int:
    """Normalise a ``--validate``/``REPRO_VALIDATE`` value to an interval."""
    if value <= 0:
        return 0
    if value == 1:
        return DEFAULT_AUDIT_INTERVAL
    return value


def watchdog_cycles_from_env(default: int) -> int:
    """Watchdog window override via ``REPRO_WATCHDOG_CYCLES``."""
    raw = os.environ.get(WATCHDOG_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


# ----------------------------------------------------------------------
# Locating stuck traffic
# ----------------------------------------------------------------------
def _in_flight_packets(net: Network) -> Dict[int, Packet]:
    """Every undelivered packet with at least one flit in the network."""
    packets: Dict[int, Packet] = {}
    for router in net.routers:
        for port in router.input_ports:
            for ivc in router.inputs[port]:
                for flit in ivc.queue:
                    if flit.packet.delivered is None:
                        packets[flit.packet.pid] = flit.packet
    for events in net._arrivals.values():
        for _node, _port, _vc, flit in events:
            if flit.packet.delivered is None:
                packets[flit.packet.pid] = flit.packet
    for ni in net.nis:
        for buf in ni.buffers:
            for flit in buf.flits:
                packets[flit.packet.pid] = flit.packet
    return packets


def oldest_stuck_packet(net: Network) -> Optional[Packet]:
    """The in-flight packet that has been waiting longest (by creation)."""
    packets = _in_flight_packets(net)
    if not packets:
        return None
    return min(packets.values(), key=lambda p: (p.created, p.pid))


def locate_packet(net: Network, packet: Packet) -> List[str]:
    """Where every remaining flit of ``packet`` currently sits."""
    lines: List[str] = []
    for router in net.routers:
        for port in router.input_ports:
            for vc, ivc in enumerate(router.inputs[port]):
                count = sum(
                    1 for flit in ivc.queue if flit.packet is packet
                )
                if not count:
                    continue
                where = (
                    f"router {router.node} in(p{port},v{vc}): "
                    f"{count} flit(s)"
                )
                if ivc.out_port is not None:
                    out = router.outputs[ivc.out_port]
                    where += (
                        f", allocated out(p{ivc.out_port},v{ivc.out_vc}) "
                        f"credits={out.credits[ivc.out_vc]}"
                    )
                else:
                    where += ", no output allocated"
                lines.append(where)
    for cycle, events in sorted(net._arrivals.items()):
        for node, port, vc, flit in events:
            if flit.packet is packet:
                lines.append(
                    f"on link to router {node} p{port}v{vc} "
                    f"(arrives cycle {cycle})"
                )
    for ni in net.nis:
        for idx, buf in enumerate(ni.buffers):
            count = sum(1 for flit in buf.flits if flit.packet is packet)
            if count:
                lines.append(
                    f"NI {ni.node} buffer {idx}: {count} flit(s) "
                    f"waiting for router {buf.target_node} "
                    f"p{buf.target_port} "
                    f"(vc={buf.cur_vc}, credits={buf.link.credits})"
                )
    return lines


# ----------------------------------------------------------------------
# Dumps
# ----------------------------------------------------------------------
def network_dump(
    net: Network,
    tracer: Optional[PacketTracer] = None,
    max_routers: int = 16,
    audit: bool = True,
) -> str:
    """A structured diagnostic dump of one network's live state."""
    net.sync_for_inspection()
    lines = [f"=== network {net.name!r} @ cycle {net.cycle} "
             f"(last progress {net.last_progress}) ==="]
    if audit:
        lines.append(audit_network(net).format())

    failed_links = [
        (router.node, port)
        for router in net.routers
        for port in sorted(router.failed_outputs)
    ]
    failed_bufs = [
        (ni.node, idx, "draining" if buf.draining else "failed")
        for ni in net.nis
        for idx, buf in enumerate(ni.buffers)
        if buf.failed or buf.draining
    ]
    if failed_links or failed_bufs:
        lines.append(
            "fault state: "
            + ", ".join(
                [f"router {n} out p{p} failed" for n, p in failed_links]
                + [f"NI {n} buffer {i} {state}"
                   for n, i, state in failed_bufs]
            )
        )

    occupied = [r for r in net.routers if r.flit_count]
    lines.append(
        f"routers with buffered flits: {len(occupied)}/{len(net.routers)}"
    )
    for router in occupied[:max_routers]:
        ages = [
            net.cycle - flit.buffered_at
            for port in router.input_ports
            for ivc in router.inputs[port]
            for flit in ivc.queue
        ]
        lines.append(
            f"  router {router.node}: {router.flit_count} flit(s), "
            f"oldest age {max(ages) if ages else 0}"
        )
        for port in router.input_ports:
            for vc, ivc in enumerate(router.inputs[port]):
                if not ivc.queue and ivc.out_port is None:
                    continue
                head = ivc.queue[0].packet.pid if ivc.queue else "-"
                desc = (
                    f"    in(p{port},v{vc}): {len(ivc.queue)} flit(s), "
                    f"head pid {head}"
                )
                if ivc.out_port is not None:
                    out = router.outputs[ivc.out_port]
                    desc += (
                        f" -> out(p{ivc.out_port},v{ivc.out_vc}) "
                        f"credits={out.credits[ivc.out_vc]} "
                        f"owner={out.owner[ivc.out_vc]!r}"
                    )
                lines.append(desc)
    if len(occupied) > max_routers:
        lines.append(f"  ... {len(occupied) - max_routers} more routers")

    backlogged = [ni for ni in net.nis if ni.backlog() or not ni.idle()]
    if backlogged:
        lines.append("NI backlogs:")
        for ni in backlogged[:max_routers]:
            buffered = sum(len(b.flits) for b in ni.buffers)
            lines.append(
                f"  NI {ni.node}: {ni.backlog()} queued, "
                f"{buffered} flit(s) in buffers"
            )
        if len(backlogged) > max_routers:
            lines.append(f"  ... {len(backlogged) - max_routers} more NIs")

    stuck = oldest_stuck_packet(net)
    if stuck is not None:
        lines.append(
            f"oldest stuck packet: pid {stuck.pid} {stuck.ptype.name} "
            f"{stuck.src}->{stuck.dst} created {stuck.created} "
            f"injected {stuck.injected}"
        )
        for line in locate_packet(net, stuck):
            lines.append(f"  {line}")
        if tracer is not None:
            lines.append(tracer.format_trace(stuck.pid))
    return "\n".join(lines)


def stall_dump(
    networks: Sequence[Network],
    tracers: Optional[Dict[int, PacketTracer]] = None,
    max_routers: int = 16,
) -> str:
    """Diagnostic dump of every network in a fabric (watchdog report)."""
    tracers = tracers or {}
    parts = []
    for net in networks:
        parts.append(
            network_dump(
                net,
                tracer=tracers.get(id(net)),
                max_routers=max_routers,
            )
        )
    return "\n".join(parts)


# ----------------------------------------------------------------------
# The periodic validator
# ----------------------------------------------------------------------
class Validator:
    """Periodic conservation audits plus an auto-attached tracer.

    Created by the system run loop when validation is enabled.  Every
    ``interval`` calls to :meth:`on_cycle`, it audits each network and
    raises :class:`NetworkAuditError` (with the full diagnostic dump
    attached) on the first violation.  With ``trace=True`` each network
    also carries a :class:`PacketTracer` whose delivered packets are
    pruned at every audit, so a later watchdog dump can show the full
    history of the oldest stuck packet.

    Audits are read-only: enabling validation must leave the simulated
    behaviour (and the stats fingerprint) bit-identical.
    """

    def __init__(
        self,
        networks: Sequence[Network],
        interval: int = DEFAULT_AUDIT_INTERVAL,
        trace: bool = True,
        max_trace_packets: int = 65536,
    ) -> None:
        if interval <= 0:
            raise ValueError("audit interval must be positive")
        self.networks = list(networks)
        self.interval = interval
        self.audits = 0
        self.tracers: Dict[int, PacketTracer] = {}
        if trace:
            for net in self.networks:
                self.tracers[id(net)] = PacketTracer(
                    net, max_packets=max_trace_packets
                )

    # ------------------------------------------------------------------
    def on_cycle(self, cycle: int) -> None:
        """Hook called once per harness cycle; audits every interval."""
        if cycle % self.interval:
            return
        self.audit()

    def audit(self) -> List[AuditReport]:
        """Audit every network now; raise on any violation."""
        self.audits += 1
        reports = [audit_network(net) for net in self.networks]
        for tracer in self.tracers.values():
            tracer.prune_delivered()
        if any(not r.ok for r in reports):
            raise NetworkAuditError(reports, dump=self.dump())
        return reports

    def dump(self) -> str:
        """The full diagnostic dump (used by the watchdog on a stall)."""
        return stall_dump(self.networks, self.tracers)
