"""Struct-of-arrays tick engine, bit-identical to the object model.

:class:`VectorNetwork` replaces the per-object router tick with batched
numpy phases over flat arrays.  All router state lives in
struct-of-arrays form:

* every input VC is a *slot* ``(node * P + port) * V + vc`` where ``P``
  is the network-wide input-port stride and ``V`` the VC count; a slot
  owns a power-of-two ring of flit ids (``ring``/``headpos``/``qlen``)
  and its allocated route (``route_cs``/``route_oi``/``route_dest``);
* every router output VC is a *credit slot* holding its credit count
  (``credits_all``), an ``owned`` flag, and the owner identity encoded
  as ``port * V + vc`` (decoded back to the ``(port, vc)`` tuples the
  audits expect only on materialisation);
* flits are interned integer ids into ``f_objs``; the hot phases touch
  only the ``f_tail``/``f_buffered`` arrays.

Per cycle the engine applies pending credits and arrivals with fancy
indexing, selects the winning request of every input port with one
vectorised rotate-min, and evaluates route/VC allocations in batch:
route candidates are a precomputed ``[same-source-column, cur, dst]``
table (the only thing odd-even routing asks about the source is whether
it shares the current router's column), so the common allocation shape
— no fired faults, no VC monopolisation, unfiltered single eject port,
at most one attempting head per router — reduces to gathers over the
credit/owner arrays.  Anything else falls back to an exact Python
replica of the object router's scan for just the affected ports.  A
per-node ``epoch`` vs per-slot ``fail_epoch`` comparison skips retries
that cannot succeed: a failed allocation mutates nothing in the object
model, so eliding one is bit-identical, and every event that could
change an allocation's outcome (arrival, pop, credit return, owner
release, delivered-packet pop, fault fire/heal) bumps the affected
router's epoch.

The object model stays the golden reference: the engine-parity
differential property pins ``stats_fingerprint`` equality across the
verify config space, and :meth:`sync_for_inspection` materialises the
SoA back onto the Router/OutputPort objects so the conservation audits
and diagnostics read the same state they would under the object engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from . import routing
from .network import Network
from .router import Router
from .types import Flit, Packet


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def _route_tables(grid, algorithm: str) -> Tuple[np.ndarray, np.ndarray]:
    """Candidate output directions for every (same-column, cur, dst).

    Returns two flat ``2*N*N`` arrays (first/second candidate, ``-1``
    for none) indexed ``same*N*N + cur*N + dst``, where ``same`` is
    whether the packet's source router shares ``cur``'s column — the
    only property of the source either routing function looks at.
    Entry order matches the list order of :func:`routing.xy_route` /
    :func:`routing.odd_even_routes`, which the strictly-greater credit
    comparison in ``_scan_outputs`` depends on.
    """
    N = grid.size
    W = grid.width
    ids = np.arange(N, dtype=np.int64)
    cx = ids % W
    cy = ids // W
    ex = cx[None, :] - cx[:, None]  # [cur, dst]
    ey = cy[None, :] - cy[:, None]
    vert = np.where(ey > 0, routing.PORT_S, routing.PORT_N)
    none = np.full((N, N), -1, dtype=np.int64)
    if algorithm == "xy":
        c1 = np.where(
            ex > 0, routing.PORT_E,
            np.where(ex < 0, routing.PORT_W,
                     np.where(ey > 0, routing.PORT_S,
                              np.where(ey < 0, routing.PORT_N, -1))),
        )
        flat1 = np.concatenate([c1.ravel(), c1.ravel()])
        flat2 = np.concatenate([none.ravel(), none.ravel()])
        return flat1, flat2
    if algorithm != "oddeven":
        raise ValueError(f"unknown routing algorithm {algorithm!r}")
    even_col = (cx % 2 == 0)[:, None]
    dst_odd = (cx % 2 == 1)[None, :]
    east = ex > 0
    west = ex < 0
    ey0 = ey == 0
    ones = []
    twos = []
    for same in (False, True):
        c1 = none.copy()
        c2 = none.copy()
        m = (ex == 0) & ~ey0
        c1[m] = vert[m]
        m = east & ey0
        c1[m] = routing.PORT_E
        m = east & ~ey0
        mv = m & (~even_col | same)          # vertical is turn-legal
        me = m & (dst_odd | (ex != 1))       # continuing east is legal
        c1[mv] = vert[mv]
        first_e = me & ~mv
        c1[first_e] = routing.PORT_E
        sec_e = me & mv
        c2[sec_e] = routing.PORT_E
        c1[west] = routing.PORT_W
        wv = west & even_col & ~ey0
        c2[wv] = vert[wv]
        ones.append(c1.ravel())
        twos.append(c2.ravel())
    return np.concatenate(ones), np.concatenate(twos)


class _SoA:
    """Flat-array snapshot of one network, imported from object state.

    Construction reads whatever the Router/OutputPort/event-dict objects
    currently hold, so building at the first tick (empty network) and
    rebuilding after a structural change (ports added mid-run, after a
    materialise) share one code path.
    """

    def __init__(self, net: "VectorNetwork") -> None:
        grid = net.grid
        routers = net.routers
        N = grid.size
        V = net.num_vcs
        self.N = N
        self.V = V
        P = 1 + max(max(r.inputs) for r in routers)
        self.P = P
        S = N * P * V
        self.S = S
        C = _next_pow2(max(2, net.vc_capacity))
        self.C = C
        self.cmask = C - 1
        self.version = -1

        # --- flit interning --------------------------------------------
        self.f_objs: List[Flit] = []
        self.f_cap = 1024
        self.f_tail = np.zeros(self.f_cap, dtype=np.uint8)
        self.f_head = np.zeros(self.f_cap, dtype=np.uint8)
        self.f_buffered = np.zeros(self.f_cap, dtype=np.int64)
        self.f_dst = np.zeros(self.f_cap, dtype=np.int64)
        self.f_cls = np.zeros(self.f_cap, dtype=np.int64)
        # Routing source (inject_router): assigned by the NI *after* the
        # head flit is scheduled, so it is filled lazily at the first
        # allocation attempt rather than at registration.
        self.f_src = np.full(self.f_cap, -1, dtype=np.int64)
        self.f_n = 0

        # --- input slots -----------------------------------------------
        self.ring = np.full(S * C, -1, dtype=np.int64)
        self.headpos = np.zeros(S, dtype=np.int64)
        self.qlen = np.zeros(S, dtype=np.int64)
        self.route_cs = np.full(S, -1, dtype=np.int64)   # credit slot or -1
        self.route_oi = np.full(S, -1, dtype=np.int64)   # output index
        self.route_dest = np.full(S, -1, dtype=np.int64)  # dest slot / S+oi
        self.rr_in = np.zeros(N * P, dtype=np.int64)
        self.fail_epoch = np.full(S, -1, dtype=np.int64)
        self.epoch = np.zeros(N, dtype=np.int64)
        self.slot_node = np.repeat(np.arange(N, dtype=np.int64), P * V)
        self.slot_vc = np.tile(np.arange(V, dtype=np.int64), N * P)

        # --- outputs / credit slots ------------------------------------
        out_obj = []
        out_node = []
        out_port_nr = []
        out_base = []
        dest_base = []
        cs_pair: List[Tuple[object, int]] = []
        cs_node: List[int] = []
        owner: List[Optional[object]] = []
        credits: List[int] = []
        self.out_idx: Dict[Tuple[int, int], int] = {}
        self.id2oi: Dict[int, int] = {}
        base = 0
        for node, router in enumerate(routers):
            for port in sorted(router.outputs):
                out = router.outputs[port]
                oi = len(out_obj)
                self.out_idx[(node, port)] = oi
                self.id2oi[id(out)] = oi
                out_obj.append(out)
                out_node.append(node)
                out_port_nr.append(port)
                out_base.append(base)
                if port in router.neighbors:
                    nbr, nbr_port = router.neighbors[port]
                    dest_base.append((nbr * P + nbr_port) * V)
                else:
                    dest_base.append(-1)
                for v in range(out.num_vcs):
                    cs_pair.append((out, v))
                    cs_node.append(node)
                    owner.append(out.owner[v])
                    credits.append(out.credits[v])
                base += out.num_vcs
        self.num_out = len(out_obj)
        self.out_obj = out_obj
        self.out_node = out_node
        self.out_port_nr = out_port_nr
        self.out_base = np.array(out_base, dtype=np.int64)
        self.dest_base = np.array(dest_base, dtype=np.int64)
        self.cs_pair = cs_pair
        self.cs_node = np.array(cs_node, dtype=np.int64)
        # Owner identity, encoded port * V + vc; only meaningful where
        # ``owned`` is set (stale codes are never read).
        self.owner_code = np.array(
            [-1 if o is None else o[0] * V + o[1] for o in owner],
            dtype=np.int64,
        )
        self.credits_all = np.array(credits, dtype=np.int64)
        self.out_rr = np.array([o.rr for o in out_obj], dtype=np.int64)
        rr_mod = np.array([r.rr_mod for r in routers], dtype=np.int64)
        self.rr_mod_out = rr_mod[np.array(out_node, dtype=np.int64)]

        # --- upstream credit wiring per input slot ---------------------
        self.up_cs = np.full(S, -1, dtype=np.int64)
        self.up_obj: List[Optional[Tuple[object, int]]] = [None] * S
        for (node, port), obj in net.upstream.items():
            oi = self.id2oi.get(id(obj))
            for vc in range(V):
                slot = (node * P + port) * V + vc
                if oi is not None:
                    self.up_cs[slot] = out_base[oi] + vc
                else:
                    self.up_obj[slot] = (obj, vc)

        self.vc_orders = [
            tuple((s + k) % V for k in range(V)) for s in range(V)
        ]
        self.peak = np.array([r.peak_flits for r in routers], dtype=np.int64)
        self.buffered_total = 0

        # --- vectorised-allocator tables -------------------------------
        self.owned = np.array(
            [0 if o is None else 1 for o in owner], dtype=np.uint8
        )
        NM = routing.NUM_MESH_PORTS
        self.node_out = np.full(N * NM, -1, dtype=np.int64)
        for (node, port), oi in self.out_idx.items():
            if port < NM:
                self.node_out[node * NM + port] = oi
        # Eject fast path: one unfiltered eject port (out_vc is always 0)
        self.ej_oi = np.full(N, -1, dtype=np.int64)
        self.ej_cs = np.zeros(N, dtype=np.int64)
        self.ej_rare = np.ones(N, dtype=np.uint8)
        for node, router in enumerate(routers):
            eps = router.eject_ports
            if router.eject_filter is None and len(eps) == 1:
                oi = self.out_idx[(node, eps[0])]
                self.ej_oi[node] = oi
                self.ej_cs[node] = out_base[oi]
                self.ej_rare[node] = 0
        classes = net.vc_classes
        self.av0 = np.zeros(len(classes), dtype=np.int64)
        self.av1 = np.full(len(classes), -1, dtype=np.int64)
        self.cls_rare = np.zeros(len(classes), dtype=np.uint8)
        for c, allowed in enumerate(classes):
            if not 1 <= len(allowed) <= 2:
                self.cls_rare[c] = 1
                continue
            self.av0[c] = allowed[0]
            if len(allowed) == 2:
                self.av1[c] = allowed[1]
        self.any_monopolize = any(r.monopolize for r in routers)
        self.cand1, self.cand2 = _route_tables(
            grid, routers[0].routing_algorithm
        )

        # --- pending events (applied at the start of the next tick) ----
        self.p_slots: List[int] = []
        self.p_vids: List[int] = []
        self.p_sink: List[Tuple[int, int, Flit]] = []
        self.p_cs: List[int] = []
        self.p_obj_credits: List[Tuple[object, int]] = []
        self.far: Dict[int, List[Tuple[int, int]]] = {}

        # --- import current object state -------------------------------
        for node, router in enumerate(routers):
            for port in router.input_ports:
                self.rr_in[node * P + port] = router.rr_in[port]
                for vc in range(V):
                    ivc = router.inputs[port][vc]
                    slot = (node * P + port) * V + vc
                    for k, flit in enumerate(ivc.queue):
                        self.ring[slot * C + (k & self.cmask)] = (
                            self.register(flit)
                        )
                    self.qlen[slot] = len(ivc.queue)
                    self.buffered_total += len(ivc.queue)
                    if ivc.out_port is not None:
                        oi = self.out_idx[(node, ivc.out_port)]
                        self.route_oi[slot] = oi
                        self.route_cs[slot] = out_base[oi] + ivc.out_vc
                        db = dest_base[oi]
                        self.route_dest[slot] = (
                            S + oi if db < 0 else db + ivc.out_vc
                        )
        # Rotation key of every slot under its port's current rr_in,
        # kept incrementally: rr_in only changes at traversal commits,
        # which rewrite the winner ports' V entries.
        self.arangeV = np.arange(V, dtype=np.int64)
        self.key = (self.slot_vc - np.repeat(self.rr_in, V)) % V
        next_cycle = net.cycle + 1
        for cycle in sorted(net._arrivals):
            for node, port, vc, flit in net._arrivals[cycle]:
                if port < 0:
                    self.p_sink.append((node, -port - 1, flit))
                    continue
                slot = (node * P + port) * V + vc
                vid = self.register(flit)
                if cycle == next_cycle:
                    pending_here = self.p_slots.count(slot)
                    pos = slot * C + (
                        (int(self.headpos[slot]) + int(self.qlen[slot])
                         + pending_here) & self.cmask
                    )
                    self.ring[pos] = vid
                    self.p_slots.append(slot)
                    self.p_vids.append(vid)
                else:
                    self.far.setdefault(cycle, []).append((slot, vid))
        for cycle in sorted(net._credits):
            for obj, vc in net._credits[cycle]:
                oi = self.id2oi.get(id(obj))
                if oi is not None:
                    self.p_cs.append(out_base[oi] + vc)
                else:
                    self.p_obj_credits.append((obj, vc))

    # ------------------------------------------------------------------
    def register(self, flit: Flit) -> int:
        """Intern a flit, returning its integer id."""
        i = self.f_n
        if i >= self.f_cap:
            self.f_cap *= 2
            tail = np.zeros(self.f_cap, dtype=np.uint8)
            tail[:i] = self.f_tail
            self.f_tail = tail
            head = np.zeros(self.f_cap, dtype=np.uint8)
            head[:i] = self.f_head
            self.f_head = head
            for name in ("f_buffered", "f_dst", "f_cls", "f_src"):
                old = getattr(self, name)
                buf = np.full(self.f_cap, -1, dtype=np.int64)
                buf[:i] = old
                setattr(self, name, buf)
        self.f_objs.append(flit)
        packet = flit.packet
        if flit.is_tail:
            self.f_tail[i] = 1
        if flit.is_head:
            self.f_head[i] = 1
        self.f_buffered[i] = flit.buffered_at
        self.f_dst[i] = packet.dst
        self.f_cls[i] = packet.vc_class
        self.f_n = i + 1
        return i


class VectorNetwork(Network):
    """The ``--engine vector`` network: SoA state, batched tick phases."""

    engine = "vector"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._soa: Optional[_SoA] = None
        self._struct_version = 0

    # ------------------------------------------------------------------
    # Structure tracking (ports are only added through these two)
    # ------------------------------------------------------------------
    def add_injection_port(self, node: int) -> int:
        self._struct_version += 1
        return super().add_injection_port(node)

    def add_eject_port(self, node: int, capacity: Optional[int] = None) -> int:
        self._struct_version += 1
        return super().add_eject_port(node, capacity)

    def _ensure_soa(self) -> _SoA:
        soa = self._soa
        if soa is not None and soa.version == self._struct_version:
            return soa
        if soa is not None:
            self._materialize()
        soa = _SoA(self)
        soa.version = self._struct_version
        self._soa = soa
        return soa

    # ------------------------------------------------------------------
    # Event scheduling overrides
    # ------------------------------------------------------------------
    def schedule_flit(
        self, cycle: int, node: int, port: int, vc: int, flit: Flit
    ) -> None:
        soa = self._soa
        if soa is None:
            super().schedule_flit(cycle, node, port, vc, flit)
            return
        vid = soa.register(flit)
        slot = (node * soa.P + port) * soa.V + vc
        if cycle == self.cycle + 1:
            # The landing position is stable until the arrival applies:
            # pops keep headpos+qlen invariant, commits never target
            # NI-fed slots, and one buffer feeds each slot at most one
            # flit per cycle.
            pos = slot * soa.C + (
                (int(soa.headpos[slot]) + int(soa.qlen[slot])) & soa.cmask
            )
            soa.ring[pos] = vid
            soa.p_slots.append(slot)
            soa.p_vids.append(vid)
        else:
            soa.far.setdefault(cycle, []).append((slot, vid))

    def reclaim_scheduled_flits(self, node: int, port: int) -> List[Flit]:
        soa = self._soa
        if soa is None:
            return super().reclaim_scheduled_flits(node, port)
        lo = (node * soa.P + port) * soa.V
        hi = lo + soa.V
        out: List[Flit] = []
        keep_s: List[int] = []
        keep_v: List[int] = []
        for s, v in zip(soa.p_slots, soa.p_vids):
            if lo <= s < hi:
                out.append(soa.f_objs[v])
            else:
                keep_s.append(s)
                keep_v.append(v)
        soa.p_slots = keep_s
        soa.p_vids = keep_v
        if soa.far:
            for cycle in sorted(soa.far):
                events = soa.far[cycle]
                kept = [(s, v) for s, v in events if not lo <= s < hi]
                if len(kept) == len(events):
                    continue
                out.extend(
                    soa.f_objs[v] for s, v in events if lo <= s < hi
                )
                if kept:
                    soa.far[cycle] = kept
                else:
                    del soa.far[cycle]
        return out

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def pop_delivered(self, node: int, port: Optional[int] = None) -> Optional[Packet]:
        soa = self._soa
        if soa is None:
            return super().pop_delivered(node, port)
        if not self._delivered.get(node):
            return None
        rotate = False
        start = 0
        if port is not None:
            ports = [port]
        else:
            ports = self.routers[node].eject_ports
            if len(ports) > 1:
                rotate = True
                start = self._pop_rr.get(node, 0)
                ports = ports[start:] + ports[:start]
        for k, p in enumerate(ports):
            queue = self.receive_queues.get((node, p))
            if queue:
                packet, eject_port = queue.popleft()
                oi = soa.id2oi.get(id(eject_port))
                if oi is None:
                    eject_port.credits[0] += packet.size
                else:
                    soa.credits_all[int(soa.out_base[oi])] += packet.size
                    soa.epoch[soa.out_node[oi]] = self.cycle + 1
                self._delivered[node] -= 1
                self._delivered_total -= 1
                if rotate:
                    self._pop_rr[node] = (start + k + 1) % len(ports)
                return packet
        return None

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def tick(self) -> None:
        soa = self._ensure_soa()
        self.cycle += 1
        cycle = self.cycle
        stats = self.stats
        stats.cycles += 1

        # --- pending credit returns ------------------------------------
        if soa.p_cs:
            cs = np.array(soa.p_cs, dtype=np.int64)
            soa.credits_all[cs] += 1  # distinct winners -> distinct slots
            soa.epoch[soa.cs_node[cs]] = cycle
            soa.p_cs = []
        if soa.p_obj_credits:
            for obj, vc in soa.p_obj_credits:
                obj.credits[vc] += 1
                if obj.waker is not None:
                    obj.waker()
            soa.p_obj_credits = []

        # --- pending arrivals ------------------------------------------
        if soa.far:
            events = soa.far.pop(cycle, None)
            if events:
                for slot, vid in events:
                    pos = slot * soa.C + (
                        (int(soa.headpos[slot]) + int(soa.qlen[slot]))
                        & soa.cmask
                    )
                    soa.ring[pos] = vid
                    soa.p_slots.append(slot)
                    soa.p_vids.append(vid)
        if soa.p_slots:
            slots = np.array(soa.p_slots, dtype=np.int64)
            vids = np.array(soa.p_vids, dtype=np.int64)
            soa.p_slots = []
            soa.p_vids = []
            prev = soa.qlen[slots]
            soa.qlen[slots] = prev + 1
            soa.f_buffered[vids] = cycle
            # Only a previously empty slot gained a new front flit (a
            # fresh head that must attempt); an arrival behind an
            # existing front changes nothing an allocation reads —
            # outcomes depend solely on this router's output
            # owner/credit state — so its fail memo stays valid.
            soa.fail_epoch[slots[prev == 0]] = -1
            stats.buffer_writes += len(slots)
            soa.buffered_total += len(slots)
            counts = soa.qlen.reshape(soa.N, -1).sum(axis=1)
            np.maximum(soa.peak, counts, out=soa.peak)
        if soa.p_sink:
            sink = soa.p_sink
            soa.p_sink = []
            for node, eject_port, flit in sink:
                self._deliver(node, eject_port, flit, cycle)

        # --- NI phase (identical discipline to the object engine) ------
        if self._active_scheduler:
            if self._active_nis:
                idle_nis: List[int] = []
                nis = self.nis
                for idx in sorted(self._active_nis):
                    ni = nis[idx]
                    ni.tick(cycle)
                    if not ni.has_work():
                        idle_nis.append(idx)
                for idx in idle_nis:
                    self._active_nis.discard(idx)
        else:
            for ni in self.nis:
                ni.tick(cycle)

        if not soa.buffered_total:
            return

        # --- request selection -----------------------------------------
        V = soa.V
        occ = soa.qlen > 0
        routed = soa.route_cs >= 0
        ready = occ & routed
        ready &= soa.credits_all[np.where(routed, soa.route_cs, 0)] > 0
        attempt = occ & ~routed
        any_att = attempt.any()
        if any_att:
            attempt &= soa.epoch[soa.slot_node] > soa.fail_epoch
        elif not ready.any():
            return
        key = soa.key
        # Per-port minimum rotation key over ready slots.  Fresh
        # allocations update it in place inside _attempt, so the winner
        # selection below reuses it without a second full-size pass.
        pm = np.where(ready, key, V).reshape(-1, V).min(axis=1)
        scan_ports: List[int] = []
        if any_att:
            att_idx = np.flatnonzero(attempt)
            if len(att_idx):
                # Only head flits attempt; a body at the front of an
                # unrouted VC is skipped by the rotation like an empty
                # slot.
                hv = soa.ring[
                    att_idx * soa.C + (soa.headpos[att_idx] & soa.cmask)
                ]
                is_h = soa.f_head[hv].astype(bool)
                if not is_h.all():
                    att_idx = att_idx[is_h]
                    hv = hv[is_h]
            if len(att_idx):
                # The object scan stops at the first requesting slot, so
                # an attempt happens only when no ready slot precedes it
                # in the port's VC rotation.
                reach = key[att_idx] < pm[att_idx // V]
                att_idx = att_idx[reach]
                hv = hv[reach]
            if len(att_idx):
                scan_ports = self._attempt(soa, att_idx, hv, key, ready,
                                           pm, cycle)
        vec_mask = pm < V
        if scan_ports:
            blocked = np.zeros(len(pm), dtype=bool)
            blocked[scan_ports] = True
            vec_mask &= ~blocked
        vp = np.flatnonzero(vec_mask)
        if len(vp):
            keyed_sub = np.where(
                ready.reshape(-1, V)[vp], key.reshape(-1, V)[vp], V
            )
            v_slot = vp * V + keyed_sub.argmin(axis=1)
            v_oi = soa.route_oi[v_slot]
            v_cs = soa.route_cs[v_slot]
            v_dest = soa.route_dest[v_slot]
        else:
            v_slot = v_oi = v_cs = v_dest = np.empty(0, dtype=np.int64)
        if scan_ports:
            s_slot: List[int] = []
            s_oi: List[int] = []
            s_cs: List[int] = []
            s_dest: List[int] = []
            for p in scan_ports:
                r = self._scan_port(soa, p, cycle)
                if r is not None:
                    s_slot.append(r[0])
                    s_oi.append(r[1])
                    s_cs.append(r[2])
                    s_dest.append(r[3])
            if s_slot:
                # Splice scanned requests into global port order, so the
                # request list matches the object engine's port-ascending
                # construction exactly.
                sl = np.array(s_slot, dtype=np.int64)
                pos = np.searchsorted(v_slot, sl)
                v_slot = np.insert(v_slot, pos, sl)
                v_oi = np.insert(v_oi, pos, np.array(s_oi, dtype=np.int64))
                v_cs = np.insert(v_cs, pos, np.array(s_cs, dtype=np.int64))
                v_dest = np.insert(
                    v_dest, pos, np.array(s_dest, dtype=np.int64)
                )
        nrq = len(v_slot)
        if not nrq:
            return

        # --- output arbitration ----------------------------------------
        if nrq == 1:
            w_slot, w_oi, w_cs, w_dest = v_slot, v_oi, v_cs, v_dest
        else:
            order = np.argsort(v_oi, kind="stable")
            so = v_oi[order]
            starts = np.flatnonzero(
                np.concatenate(([True], so[1:] != so[:-1]))
            )
            akey = (
                (v_slot // V) % soa.P - soa.out_rr[v_oi]
            ) % soa.rr_mod_out[v_oi]
            # Input ports are distinct per output, so keys never tie and
            # the packed min recovers the unique winner index (nrq is
            # bounded by the port count, which is at most S).
            comb = akey * soa.S + np.arange(nrq, dtype=np.int64)
            w_idx = np.minimum.reduceat(comb[order], starts) % soa.S
            # The object engine emits winners in first-appearance order
            # of their output in the request list (dict insertion
            # order); a stable sort's group starts give exactly that.
            w_idx = w_idx[np.argsort(order[starts], kind="stable")]
            w_slot = v_slot[w_idx]
            w_oi = v_oi[w_idx]
            w_cs = v_cs[w_idx]
            w_dest = v_dest[w_idx]
        n = len(w_slot)
        heads = soa.headpos[w_slot]
        vids = soa.ring[w_slot * soa.C + (heads & soa.cmask)]
        soa.headpos[w_slot] = heads + 1
        soa.qlen[w_slot] -= 1
        soa.buffered_total -= n
        soa.credits_all[w_cs] -= 1
        w_port = w_slot // V
        newrr = (w_slot % V + 1) % V
        soa.rr_in[w_port] = newrr
        # Winner ports are unique (one request per input port per
        # cycle), so the incremental rotation-key rewrite is exact.
        soa.key[(w_port[:, None] * V + soa.arangeV).ravel()] = (
            (soa.arangeV - newrr[:, None]) % V
        ).ravel()
        soa.out_rr[w_oi] = (w_port % soa.P + 1) % soa.rr_mod_out[w_oi]
        nodes_w = soa.slot_node[w_slot]
        if soa.any_monopolize:
            # VC monopolisation reads foreign-VC queue occupancy, which
            # any move changes, so keep the broad invalidation there.
            soa.epoch[nodes_w] = cycle + 1
        stats.buffer_reads += n
        stats.xbar_traversals += n
        residence = cycle - soa.f_buffered[vids] + 1
        np.add.at(stats.residence_cycles, nodes_w, residence)
        np.add.at(stats.residence_count, nodes_w, 1)
        tails = soa.f_tail[vids].astype(bool)
        if tails.any():
            t_slot = w_slot[tails]
            soa.route_cs[t_slot] = -1
            soa.route_oi[t_slot] = -1
            soa.route_dest[t_slot] = -1
            soa.fail_epoch[t_slot] = -1
            t_cs = w_cs[tails]
            soa.owned[t_cs] = 0
            # A tail traversal releases an output VC of its own router:
            # the only commit-side event that can turn a failed
            # allocation into a success there.  Non-tail moves only
            # consume credits, so they leave fail memos valid.
            soa.epoch[soa.slot_node[t_slot]] = cycle + 1
        ucs = soa.up_cs[w_slot]
        has_up = ucs >= 0
        soa.p_cs.extend(ucs[has_up].tolist())
        if not has_up.all():
            for s in w_slot[~has_up].tolist():
                pair = soa.up_obj[s]
                if pair is not None:
                    soa.p_obj_credits.append(pair)
        is_ej = w_dest >= soa.S
        if is_ej.any():
            mesh = ~is_ej
            mesh_d = w_dest[mesh]
            mesh_v = vids[mesh]
            ej_oi = w_oi[is_ej].tolist()
            ej_vids = vids[is_ej].tolist()
            stats.flits_ejected += len(ej_oi)
            for oi, vid in zip(ej_oi, ej_vids):
                flit = soa.f_objs[vid]
                flit.packet.eject_port = soa.out_obj[oi]
                soa.p_sink.append(
                    (soa.out_node[oi], soa.out_port_nr[oi], flit)
                )
        else:
            mesh_d = w_dest
            mesh_v = vids
        nm = len(mesh_d)
        if nm:
            pos = mesh_d * soa.C + (
                (soa.headpos[mesh_d] + soa.qlen[mesh_d]) & soa.cmask
            )
            soa.ring[pos] = mesh_v
            soa.p_slots.extend(mesh_d.tolist())
            soa.p_vids.extend(mesh_v.tolist())
            if self.interposer_mesh_links:
                stats.link_hops_interposer += nm
                stats.interposer_hop_length += float(nm)
            else:
                stats.link_hops_onchip += nm
        self.last_progress = cycle
        if self.on_move is not None:
            for i in range(n):
                slot = int(w_slot[i])
                oi = int(w_oi[i])
                self.on_move(
                    int(nodes_w[i]),
                    (slot // V) % soa.P,
                    slot % V,
                    soa.out_port_nr[oi],
                    int(w_cs[i]) - int(soa.out_base[oi]),
                    soa.f_objs[int(vids[i])],
                    cycle,
                )

    # ------------------------------------------------------------------
    # Batched route/VC allocation for the common shape
    # ------------------------------------------------------------------
    def _eval_candidate(
        self, soa: _SoA, oi: np.ndarray, v0: np.ndarray, v1: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate one route candidate column for a batch of attempts.

        Returns ``(has_free, best_vc, total_credits)`` with the object
        model's exact choice rule: the free VC with the most credits,
        first-of-ties in allowed order.  Entries with ``oi < 0`` read
        garbage and must be masked by the caller.
        """
        credits = soa.credits_all
        owned = soa.owned
        b = soa.out_base[np.where(oi >= 0, oi, 0)]
        cs0 = b + v0
        cr0 = credits[cs0]
        f0 = (owned[cs0] == 0) & (cr0 > 0)
        hasv1 = v1 >= 0
        cs1 = b + np.where(hasv1, v1, v0)
        cr1 = np.where(hasv1, credits[cs1], 0)
        f1 = hasv1 & (owned[cs1] == 0) & (cr1 > 0)
        has = (oi >= 0) & (f0 | f1)
        vc = np.where(f0 & (~f1 | (cr0 >= cr1)), v0, v1)
        return has, vc, cr0 + cr1

    def _attempt(
        self,
        soa: _SoA,
        att: np.ndarray,
        hv: np.ndarray,
        key: np.ndarray,
        ready: np.ndarray,
        pm: np.ndarray,
        cycle: int,
    ) -> List[int]:
        """Batch-allocate routes for attempting head slots.

        Mutates the SoA route/owner state and marks fresh allocations as
        ready (a new allocation always has a credit, so it requests
        immediately, exactly like the object scan).  Returns the sorted
        port indices that need the Python scan instead: any attempt once
        faults have fired or under VC monopolisation, filtered or
        multi-port ejection, and classes with more than two VCs.

        Routers with several attempting heads are handled in rounds —
        the object scan processes them sequentially (port order, VC
        rotation order within a port), and an earlier success both
        claims an output VC the later attempts must see and terminates
        its own port's scan.  Each round therefore commits only the
        earliest remaining attempt per router, drops the rest of a
        successful port, and re-evaluates survivors against the updated
        claims.
        """
        V = soa.V
        if self.faults_fired or soa.any_monopolize:
            return sorted(set((att // V).tolist()))
        N = soa.N
        P = soa.P
        nodes = att // (P * V)
        dst = soa.f_dst[hv]
        cls = soa.f_cls[hv]
        src = soa.f_src[hv]
        miss = src < 0
        if miss.any():
            # Routing source = inject_router, which the NI assigns only
            # after scheduling the head flit — so it cannot be interned
            # at registration time.  Fill lazily at first attempt;
            # re-injection after a fault registers a fresh flit id, so
            # an interned source can never go stale.
            f_objs = soa.f_objs
            f_src = soa.f_src
            for vid in hv[miss].tolist():
                pkt = f_objs[vid].packet
                s = pkt.inject_router
                f_src[vid] = pkt.src if s is None else s
            src = soa.f_src[hv]
        eject = dst == nodes
        rare = soa.cls_rare[cls].astype(bool)
        rare |= eject & soa.ej_rare[nodes].astype(bool)
        if rare.any():
            # A rare attempt sends the whole router to the Python scan:
            # its claims interleave with any batched attempts there.
            bad = np.zeros(N, dtype=bool)
            bad[nodes[rare]] = True
            py = bad[nodes]
            py_ports = sorted(set((att[py] // V).tolist()))
            keep = ~py
            att = att[keep]
            hv = hv[keep]
            nodes = nodes[keep]
            dst = dst[keep]
            cls = cls[keep]
            src = src[keep]
            eject = eject[keep]
            if not len(att):
                return py_ports
        else:
            py_ports = []
        if len(att) <= 4:
            # A tiny batch is cheaper in the exact-replica Python scan
            # than through the fixed cost of a vector round.
            return sorted(set(py_ports) | set((att // V).tolist()))
        if len(att) > 1:
            # Object scan order within a router: ports ascending, VC
            # rotation within a port.  att is slot-sorted (ports already
            # ascend), so only the in-port VC order needs fixing.
            order = np.argsort((att // V) * V + key[att], kind="stable")
            att = att[order]
            nodes = nodes[order]
            dst = dst[order]
            cls = cls[order]
            src = src[order]
            eject = eject[order]
        while True:
            valid, commit = self._attempt_round(
                soa, att, nodes, dst, cls, src, eject,
                key, ready, pm, cycle,
            )
            if valid.all():
                return py_ports
            # Survivors: attempts after their router's first success —
            # minus every attempt on a port whose scan just allocated
            # (the object scan breaks at the success).
            port_g = att // V
            done = np.zeros(N * P, dtype=bool)
            done[port_g[commit]] = True
            keep = ~valid & ~done[port_g]
            nk = int(keep.sum())
            if not nk:
                return py_ports
            if nk <= 8:
                # Short tail: hand the leftover ports to the Python
                # scan.  It replays each port's whole rotation — already
                # routed slots just become the port's request, already
                # failed attempts fail identically (claims are router-
                # local and this cycle's are committed) — so the replay
                # is bit-identical, only slower per attempt.
                tail = set((att[keep] // V).tolist())
                return sorted(set(py_ports) | tail)
            att = att[keep]
            nodes = nodes[keep]
            dst = dst[keep]
            cls = cls[keep]
            src = src[keep]
            eject = eject[keep]

    def _attempt_round(
        self,
        soa: _SoA,
        att: np.ndarray,
        nodes: np.ndarray,
        dst: np.ndarray,
        cls: np.ndarray,
        src: np.ndarray,
        eject: np.ndarray,
        key: np.ndarray,
        ready: np.ndarray,
        pm: np.ndarray,
        cycle: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate one round of attempts against the round-entry state.

        Within a router the object scan is sequential, but a failed
        attempt mutates nothing — so every attempt up to and including
        the router's first success saw exactly the round-entry claim
        state.  That longest valid prefix per router is committed (the
        success) or memoised (the failures) in one batch; only attempts
        after a success need re-evaluation.  Returns ``(valid, commit)``
        masks over ``att``.
        """
        na = len(att)
        ok = np.zeros(na, dtype=bool)
        sel_oi = np.zeros(na, dtype=np.int64)
        sel_cs = np.zeros(na, dtype=np.int64)
        sel_dest = np.zeros(na, dtype=np.int64)
        e = np.flatnonzero(eject)
        if len(e):
            en = nodes[e]
            ecs = soa.ej_cs[en]
            # The object's _allocate_eject does not count vc_allocs.
            ok[e] = (soa.owned[ecs] == 0) & (soa.credits_all[ecs] > 0)
            eoi = soa.ej_oi[en]
            sel_oi[e] = eoi
            sel_cs[e] = ecs
            sel_dest[e] = soa.S + eoi
        if len(e) < na:
            m = np.flatnonzero(~eject)
            W = self.grid.width
            mn = nodes[m]
            same = (src[m] % W) == (mn % W)
            N = soa.N
            tix = np.where(same, N * N, 0) + mn * N + dst[m]
            c1 = soa.cand1[tix]
            c2 = soa.cand2[tix]
            NM = routing.NUM_MESH_PORTS
            node_out = soa.node_out
            base = mn * NM
            oi1 = np.where(c1 >= 0, node_out[base + (c1 & 3)], -1)
            oi2 = np.where(c2 >= 0, node_out[base + (c2 & 3)], -1)
            v0 = soa.av0[cls[m]]
            v1 = soa.av1[cls[m]]
            # One stacked evaluation for both candidate columns.
            has, vc, tot = self._eval_candidate(
                soa,
                np.concatenate((oi1, oi2)),
                np.concatenate((v0, v0)),
                np.concatenate((v1, v1)),
            )
            nm = len(oi1)
            has1, has2 = has[:nm], has[nm:]
            vc1, vc2 = vc[:nm], vc[nm:]
            tot1, tot2 = tot[:nm], tot[nm:]
            # Strictly-greater total wins: the object keeps the first
            # candidate on ties.
            use2 = has2 & (~has1 | (tot2 > tot1))
            mok = has1 | has2
            soi = np.where(use2, oi2, oi1)
            svc = np.where(use2, vc2, vc1)
            ok[m] = mok
            sel_oi[m] = soi
            sel_cs[m] = soa.out_base[soi] + svc
            sel_dest[m] = soa.dest_base[soi] + svc
        # Longest valid prefix per router: attempts preceded by no
        # same-router success this round.  excl is non-decreasing, so
        # spreading the group-start value with a running max recovers
        # each attempt's count of earlier in-group successes.
        if na > 1:
            excl = np.cumsum(ok) - ok
            newg = np.empty(na, dtype=bool)
            newg[0] = True
            newg[1:] = nodes[1:] != nodes[:-1]
            valid = excl == np.maximum.accumulate(np.where(newg, excl, 0))
        else:
            valid = np.ones(1, dtype=bool)
        commit = valid & ok
        w = np.flatnonzero(commit)
        if len(w):
            V = soa.V
            ws = att[w]
            wcs = sel_cs[w]
            soa.route_cs[ws] = wcs
            soa.route_oi[ws] = sel_oi[w]
            soa.route_dest[ws] = sel_dest[w]
            soa.owned[wcs] = 1
            soa.owner_code[wcs] = (ws // V) % soa.P * V + ws % V
            ready[ws] = True
            # The reach pre-filter guaranteed key[ws] < pm at its port,
            # and a port allocates at most once per cycle, so the fresh
            # allocation is the port's new minimum outright.
            pm[ws // V] = key[ws]
            # The object counts a VC allocation per successful mesh
            # grant (never for ejects).
            self.stats.vc_allocs += int((~eject[w]).sum())
        failn = valid & ~ok
        if failn.any():
            soa.fail_epoch[att[failn]] = cycle
        return valid, commit

    # ------------------------------------------------------------------
    # Python replica of the object router's per-port scan (ports that
    # must attempt a route/VC allocation this cycle)
    # ------------------------------------------------------------------
    def _scan_port(
        self, soa: _SoA, port_idx: int, cycle: int
    ) -> Optional[Tuple[int, int, int, int]]:
        V = soa.V
        node = port_idx // soa.P
        port_nr = port_idx % soa.P
        router = self.routers[node]
        qlen = soa.qlen
        route_cs = soa.route_cs
        base = port_idx * V
        epoch = int(soa.epoch[node])
        for vc in soa.vc_orders[int(soa.rr_in[port_idx])]:
            slot = base + vc
            if not qlen[slot]:
                continue
            cs = int(route_cs[slot])
            if cs < 0:
                if epoch > soa.fail_epoch[slot]:
                    self._alloc(soa, router, node, port_nr, vc, slot, cycle)
                    cs = int(route_cs[slot])
                if cs < 0:
                    continue
            if soa.credits_all[cs] <= 0:
                continue
            return (
                slot, int(soa.route_oi[slot]), cs, int(soa.route_dest[slot])
            )
        return None

    def _alloc(
        self,
        soa: _SoA,
        router: Router,
        node: int,
        port_nr: int,
        vc: int,
        slot: int,
        cycle: int,
    ) -> None:
        vid = int(soa.ring[slot * soa.C + (int(soa.headpos[slot]) & soa.cmask)])
        flit = soa.f_objs[vid]
        if not flit.is_head:
            return  # body at head of an unrouted VC: no attempt, no memo
        packet = flit.packet
        owned = soa.owned
        credits = soa.credits_all
        if packet.dst == node:
            ports = (
                router.eject_filter(packet)
                if router.eject_filter is not None
                else router.eject_ports
            )
            for eject in ports:
                oi = soa.out_idx[(node, eject)]
                cs = int(soa.out_base[oi])
                if not owned[cs] and credits[cs] > 0:
                    # Note: the object model's _allocate_eject does not
                    # count vc_allocs (only mesh allocations do).
                    soa.owner_code[cs] = port_nr * soa.V + vc
                    owned[cs] = 1
                    soa.route_cs[slot] = cs
                    soa.route_oi[slot] = oi
                    soa.route_dest[slot] = soa.S + oi
                    return
            soa.fail_epoch[slot] = cycle
            return
        src = (
            packet.inject_router
            if packet.inject_router is not None
            else packet.src
        )
        candidates = routing.route_candidates(
            self.grid, router.routing_algorithm, node, src, packet.dst
        )
        allowed = router.vc_classes[packet.vc_class]
        borrowable = self._borrowable(soa, router, node, packet.vc_class, vc)
        exclude = (
            port_nr
            if port_nr < routing.NUM_MESH_PORTS and self.faults_fired
            else -1
        )
        best = self._scan_outputs(
            soa, router, node, candidates, allowed, borrowable, packet,
            exclude,
        )
        if best is None and self.faults_fired:
            usable = any(
                p in router.neighbors
                and p not in router.failed_outputs
                and p != exclude
                for p in candidates
                if p != routing.PORT_EJECT
            )
            if not usable:
                minimal = routing.minimal_ports(self.grid, node, packet.dst)
                primary = minimal[0]
                order = list(minimal) + [
                    routing.turn_right(primary),
                    routing.turn_left(primary),
                    routing.opposite(primary),
                ]
                tried = set()
                for p in order:
                    if p in tried:
                        continue
                    tried.add(p)
                    best = self._scan_outputs(
                        soa, router, node, (p,), allowed, borrowable,
                        packet, exclude,
                    )
                    if best is not None:
                        break
        if best is None:
            soa.fail_epoch[slot] = cycle
            return
        _, out_port, out_vc, oi = best
        cs = int(soa.out_base[oi]) + out_vc
        soa.owner_code[cs] = port_nr * soa.V + vc
        soa.owned[cs] = 1
        soa.route_cs[slot] = cs
        soa.route_oi[slot] = oi
        soa.route_dest[slot] = int(soa.dest_base[oi]) + out_vc
        self.stats.vc_allocs += 1

    def _scan_outputs(
        self,
        soa: _SoA,
        router: Router,
        node: int,
        ports,
        allowed,
        borrowable,
        packet: Packet,
        exclude: int,
    ) -> Optional[Tuple[int, int, int, int]]:
        failed = router.failed_outputs
        neighbors = router.neighbors
        owned = soa.owned
        credits = soa.credits_all
        best: Optional[Tuple[int, int, int, int]] = None
        for out_port in ports:
            if out_port == routing.PORT_EJECT:
                continue
            if out_port == exclude:
                continue
            if out_port not in neighbors:
                continue
            if failed and out_port in failed:
                continue
            oi = soa.out_idx[(node, out_port)]
            b = int(soa.out_base[oi])
            free = [
                v for v in allowed
                if not owned[b + v] and credits[b + v] > 0
            ]
            if not free and borrowable:
                cap = self.vc_capacity
                if cap >= packet.size:
                    free = [
                        v for v in borrowable
                        if not owned[b + v] and credits[b + v] == cap
                    ]
            if not free:
                continue
            out_vc = max(free, key=lambda v: credits[b + v])
            total = sum(int(credits[b + v]) for v in allowed)
            if best is None or total > best[0]:
                best = (total, out_port, out_vc, oi)
        return best

    def _borrowable(
        self, soa: _SoA, router: Router, node: int, vc_class: int,
        current_vc: int,
    ):
        if not router.monopolize or vc_class not in router.monopoly_classes:
            return ()
        own = router.vc_classes[vc_class]
        if current_vc not in own:
            return ()
        qlen = soa.qlen
        ring = soa.ring
        headpos = soa.headpos
        C = soa.C
        cmask = soa.cmask
        V = soa.V
        node_base = node * soa.P * V
        foreign = []
        for other in range(len(router.vc_classes)):
            if other == vc_class:
                continue
            for ovc in router.vc_classes[other]:
                for p in router.input_ports:
                    slot = node_base + p * V + ovc
                    if qlen[slot]:
                        vid = int(
                            ring[slot * C + (int(headpos[slot]) & cmask)]
                        )
                        if soa.f_objs[vid].packet.vc_class == other:
                            return ()
                foreign.append(ovc)
        return tuple(foreign)

    # ------------------------------------------------------------------
    # Inspection / fault hooks
    # ------------------------------------------------------------------
    def sync_for_inspection(self) -> None:
        if self._soa is not None:
            self._materialize()

    def soa_invalidate(self) -> None:
        soa = self._soa
        if soa is not None:
            soa.epoch[:] = self.cycle + 1

    def _materialize(self) -> None:
        """Write SoA state back onto the Router/OutputPort objects.

        Read-only with respect to the SoA: the arrays stay canonical and
        simulation continues from them; the objects (and the event-dict
        mirrors ``_arrivals``/``_credits``) become a consistent snapshot
        for auditors, dump tools and tests.
        """
        soa = self._soa
        V = soa.V
        P = soa.P
        C = soa.C
        cmask = soa.cmask
        qlen = soa.qlen
        headpos = soa.headpos
        ring = soa.ring
        f_objs = soa.f_objs
        f_buffered = soa.f_buffered
        for node, router in enumerate(self.routers):
            node_base = node * P * V
            count = 0
            for p in router.input_ports:
                port_flits = 0
                vcs = router.inputs[p]
                for vc in range(V):
                    slot = node_base + p * V + vc
                    ivc = vcs[vc]
                    queue = ivc.queue
                    queue.clear()
                    length = int(qlen[slot])
                    if length:
                        h = int(headpos[slot])
                        for k in range(length):
                            vid = int(ring[slot * C + ((h + k) & cmask)])
                            flit = f_objs[vid]
                            flit.buffered_at = int(f_buffered[vid])
                            queue.append(flit)
                        port_flits += length
                    cs = int(soa.route_cs[slot])
                    if cs >= 0:
                        oi = int(soa.route_oi[slot])
                        ivc.out_port = soa.out_port_nr[oi]
                        ivc.out_vc = cs - int(soa.out_base[oi])
                    else:
                        ivc.out_port = None
                        ivc.out_vc = None
                router.port_flits[p] = port_flits
                count += port_flits
                router.rr_in[p] = int(soa.rr_in[node * P + p])
            router.flit_count = count
            router.peak_flits = int(soa.peak[node])
        for oi in range(soa.num_out):
            out = soa.out_obj[oi]
            b = int(soa.out_base[oi])
            for v in range(out.num_vcs):
                out.credits[v] = int(soa.credits_all[b + v])
                if soa.owned[b + v]:
                    code = int(soa.owner_code[b + v])
                    out.owner[v] = (code // V, code % V)
                else:
                    out.owner[v] = None
            out.rr = int(soa.out_rr[oi])
        arrivals: List[Tuple[int, int, int, Flit]] = []
        for s, v in zip(soa.p_slots, soa.p_vids):
            arrivals.append(
                (s // (P * V), (s // V) % P, s % V, f_objs[v])
            )
        for node, eject_port, flit in soa.p_sink:
            arrivals.append((node, -eject_port - 1, 0, flit))
        self._arrivals = {self.cycle + 1: arrivals} if arrivals else {}
        for cycle in sorted(soa.far):
            self._arrivals.setdefault(cycle, []).extend(
                (s // (P * V), (s // V) % P, s % V, f_objs[v])
                for s, v in soa.far[cycle]
            )
        credits = [soa.cs_pair[cs] for cs in soa.p_cs]
        credits.extend(soa.p_obj_credits)
        self._credits = {self.cycle + 1: credits} if credits else {}
        if self._active_scheduler:
            self.active = {r.node for r in self.routers if r.flit_count}

    # ------------------------------------------------------------------
    # Telemetry (SoA-backed probes; values identical to the object ones)
    # ------------------------------------------------------------------
    def register_telemetry(self, registry: "object", prefix: str) -> None:
        stats = self.stats

        def active_nodes():
            soa = self._soa
            if soa is None:
                return [r.node for r in self.routers if r.flit_count]
            counts = soa.qlen.reshape(soa.N, -1).sum(axis=1)
            return np.flatnonzero(counts).tolist()

        def peak_router_flits():
            soa = self._soa
            if soa is None:
                return max((r.peak_flits for r in self.routers), default=0)
            return int(soa.peak.max())

        registry.register_series(f"{prefix}.in_flight", self.in_flight)
        registry.register_series(
            f"{prefix}.flits_injected", lambda: stats.flits_injected
        )
        registry.register_series(
            f"{prefix}.flits_ejected", lambda: stats.flits_ejected
        )
        registry.register_series(
            f"{prefix}.ni_backlog",
            lambda: sum(ni.backlog() for ni in self.nis),
        )
        registry.register_series(
            f"{prefix}.ni_buffer_flits",
            lambda: sum(ni.buffer_occupancy() for ni in self.nis),
        )
        registry.register_series(
            f"{prefix}.active_routers", lambda: len(active_nodes())
        )
        registry.register_residency(
            f"{prefix}.router_active", self.grid.size, active_nodes
        )
        from .stats import NetworkStats

        for name in NetworkStats.TELEMETRY_COUNTERS:
            registry.register_final(
                f"{prefix}.{name}", lambda name=name: getattr(stats, name)
            )
        registry.register_final(
            f"{prefix}.peak_router_flits", peak_router_flits
        )
        for ni in self.nis:
            ni.register_telemetry(registry, prefix)

    # ------------------------------------------------------------------
    # Quiescence / introspection
    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        soa = self._soa
        if soa is None:
            return super().in_flight()
        scheduled = len(soa.p_slots) + len(soa.p_sink)
        if soa.far:
            scheduled += sum(len(v) for v in soa.far.values())
        return soa.buffered_total + scheduled

    def quiescent(self) -> bool:
        soa = self._soa
        if soa is None:
            return super().quiescent()
        if (
            soa.p_slots or soa.p_sink or soa.far or soa.p_cs
            or soa.p_obj_credits or self._delivered_total
        ):
            return False
        if self._active_scheduler:
            return soa.buffered_total == 0 and not self._active_nis
        return soa.buffered_total == 0 and all(
            not ni.has_work() for ni in self.nis
        )

    def idle(self) -> bool:
        soa = self._soa
        if soa is None:
            return super().idle()
        if self._active_scheduler:
            return (
                soa.buffered_total == 0
                and not self._active_nis
                and not soa.p_slots
                and not soa.p_sink
                and not soa.far
            )
        if self.in_flight():
            return False
        return all(ni.idle() for ni in self.nis)
