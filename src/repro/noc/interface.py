"""Network interfaces: the injection side of every scheme.

Three NI flavours cover all seven compared schemes:

* :class:`NetworkInterface` — one injection buffer wired to the local
  router (SingleBase, VC-Mono, SeparateBase, DA2Mesh subnets, and the
  per-tile concentration ports of Interposer-CMesh).
* :class:`MultiPortInterface` — several buffers, all wired to injection
  ports on the *same* local router (the MultiPort scheme).
* :class:`EquiNoxInterface` — the paper's modified CB NI (Figure 8):
  five single-packet buffers, one to the local router and up to four to
  EIRs over single-cycle interposer links, with the shortest-path-only
  buffer-selection policy of "Buffer Selection 1".

Every buffer drains one flit per cycle into its target router input
port, subject to credit availability, exactly like a link.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.eir import EirDesign, shortest_path_eirs
from .network import Network
from .router import OutputPort
from .types import Flit, Packet


class InjectionBuffer:
    """One packet-sized injection buffer wired to a router input port."""

    __slots__ = ("network", "target_node", "target_port", "link", "flits",
                 "cur_vc", "interposer", "length", "failed", "draining",
                 "flits_sent", "stalled", "ni")

    def __init__(
        self,
        network: Network,
        target_node: int,
        interposer: bool = False,
        length: float = 0.0,
    ) -> None:
        self.network = network
        self.target_node = target_node
        self.target_port = network.add_injection_port(target_node)
        self.link = OutputPort(
            network.num_vcs, network.vc_capacity, latency=1, interposer=interposer
        )
        self.flits: Deque[Flit] = deque()
        self.cur_vc: Optional[int] = None
        self.interposer = interposer
        self.length = length
        # Fault-injection state.  ``failed`` quarantines the buffer (no
        # new packets, no sends); ``draining`` lets a partially
        # transmitted wormhole packet finish over the failing link at a
        # packet boundary, after which the buffer quarantines itself.
        self.failed = False
        self.draining = False
        # Lifetime flits this buffer pushed onto its link (telemetry:
        # the per-EIR injection-balance numbers of Figures 4/7).
        self.flits_sent = 0
        # Credit stall: set when a send blocks on link credits, cleared
        # by the returning credit (which also re-arms the owning NI).
        # Purely a scheduling hint — a stalled buffer's try_send is a
        # no-op, so skipping it cannot change simulation state.
        self.stalled = False
        self.ni: Optional["NetworkInterface"] = None
        self.link.waker = self._on_credit

    def _on_credit(self) -> None:
        if self.stalled:
            self.stalled = False
            if self.ni is not None:
                self.network.wake_ni(self.ni)

    @property
    def free(self) -> bool:
        return not self.flits

    @property
    def available(self) -> bool:
        """Free to accept a new packet (empty and not quarantined)."""
        return not self.flits and not self.failed

    def load(self, packet: Packet, start_cycle: int = 0,
             core_rate: float = 0.0) -> None:
        """Accept a packet; flits become sendable as the core serialises.

        ``core_rate`` is the NI core's serialisation rate in flits per
        (this network's) cycle; flit ``k`` is sendable once the core has
        produced it.  A zero rate means instantly available.
        """
        if self.flits:
            raise RuntimeError("injection buffer already occupied")
        if self.failed:
            raise RuntimeError("injection buffer is quarantined")
        flits = packet.make_flits()
        if core_rate > 0:
            for k, flit in enumerate(flits):
                flit.ready_at = start_cycle + int((k + 1) / core_rate)
        self.flits.extend(flits)

    def try_send(self, cycle: int) -> None:
        """Send up to one flit into the target router this cycle."""
        if not self.flits or self.failed:
            return
        flit = self.flits[0]
        if flit.ready_at > cycle:
            return  # the NI core has not serialised this flit yet
        packet = flit.packet
        if flit.is_head and self.cur_vc is None:
            # An injection port only ever carries this node's class of
            # traffic, so monopolising its VCs (VC-Mono) is always safe.
            if self.network.monopolize_injection:
                allowed = range(self.network.num_vcs)
            else:
                allowed = self.network.vc_classes[packet.vc_class]
            free = self.link.free_vcs(allowed)
            if not free:
                # Our own link's VCs are owned only by us, so "no free
                # VC" here always means "no credits": sleep until one
                # returns.
                self.stalled = True
                return
            self.cur_vc = max(free, key=lambda v: self.link.credits[v])
            self.link.owner[self.cur_vc] = self
        if self.cur_vc is None or self.link.credits[self.cur_vc] <= 0:
            self.stalled = True
            return
        self.flits.popleft()
        self.link.credits[self.cur_vc] -= 1
        self.network.schedule_flit(
            cycle + self.link.latency,
            self.target_node,
            self.target_port,
            self.cur_vc,
            flit,
        )
        self.flits_sent += 1
        stats = self.network.stats
        stats.flits_injected += 1
        if self.interposer:
            stats.link_hops_interposer += 1
            stats.interposer_hop_length += self.length
        if flit.is_head:
            packet.injected = cycle
            packet.inject_router = self.target_node
            hook = self.network.on_inject
            if hook is not None:
                hook(self, flit, cycle)
        if flit.is_tail:
            self.link.owner[self.cur_vc] = None
            self.cur_vc = None
            if self.draining:
                # The wormhole packet committed before the fault has now
                # fully left; quarantine the buffer behind it.
                self.draining = False
                self.failed = True

    def return_credit(self, vc: int) -> None:
        self.link.credits[vc] += 1


BASE_CORE_BYTES = 32
"""Default NI-core serialisation bandwidth per base cycle.

The paper's NI (Figure 8) serialises one packet at a time through the
core logic before it reaches an injection buffer.  The L2/MC datapath
behind a CB moves half a cache line per cycle (32 B), so a multi-buffer
NI can keep two full-width links busy; a single-buffer NI remains
drain-limited to one flit per cycle regardless.  DA2Mesh's CB NIs
override this with the base link width (16 B): its eight subnets split
one 128-bit interface, they do not widen it.
"""


class SerializationCore:
    """The one-packet-at-a-time serialiser inside an NI (or a CB's NIs)."""

    __slots__ = ("free_at",)

    def __init__(self) -> None:
        self.free_at = 0

    def reserve(self, now: int, size: int, rate: float) -> int:
        """Reserve the core for a packet; returns its start cycle."""
        start = max(self.free_at, now)
        self.free_at = start + max(1, math.ceil(size / rate))
        return start


class NetworkInterface:
    """Base NI: unbounded source queue feeding one local buffer."""

    __slots__ = ("network", "node", "source_queue", "buffers", "core",
                 "core_rate", "_net_index")

    def __init__(
        self,
        network: Network,
        node: int,
        core: Optional[SerializationCore] = None,
        core_bytes: int = BASE_CORE_BYTES,
    ) -> None:
        self.network = network
        self.node = node
        self.source_queue: Deque[Packet] = deque()
        self.buffers: List[InjectionBuffer] = [InjectionBuffer(network, node)]
        self._init_core(core, core_bytes)
        self._register()

    def _init_core(self, core: Optional[SerializationCore],
                   core_bytes: int = BASE_CORE_BYTES) -> None:
        self.core = core or SerializationCore()
        net = self.network
        # Flits (of this network's width) the core produces per local
        # cycle.  May be fractional: a 16 B/cycle core feeds a 32 B-flit
        # overlay at half a flit per cycle.
        self.core_rate = core_bytes / net.flit_bytes / net.clock_ratio

    def _register(self) -> None:
        self.network.register_ni(self)
        for buf in self.buffers:
            buf.ni = self
            self.network.upstream[(buf.target_node, buf.target_port)] = buf.link

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Accept a packet from the node's core logic."""
        packet.created = self.network.cycle
        self.network.stats.packets_created += 1
        self.source_queue.append(packet)
        self.network.wake_ni(self)

    def has_work(self) -> bool:
        """Whether ticking this NI this cycle could have any effect.

        A credit-stalled buffer does not count: its try_send is a no-op
        until the blocking credit returns, and that return re-arms the
        NI through the link's waker.  A queued packet counts only while
        some buffer could accept it.
        """
        queue = self.source_queue
        for buf in self.buffers:
            if buf.flits:
                if not buf.stalled:
                    return True
            elif queue and not buf.failed:
                return True
        return False

    def tick(self, cycle: int) -> None:
        if self.source_queue:
            self._assign(cycle)
        for buf in self.buffers:
            if buf.flits and not buf.stalled:
                buf.try_send(cycle)

    def _load(self, buf: InjectionBuffer, packet: Packet, cycle: int) -> None:
        start = self.core.reserve(cycle, packet.size, self.core_rate)
        buf.load(packet, start, self.core_rate)

    def _assign(self, cycle: int) -> None:
        for buf in self.buffers:
            if not self.source_queue:
                return
            if buf.available:
                self._load(buf, self.source_queue.popleft(), cycle)

    def idle(self) -> bool:
        return not self.source_queue and all(b.free for b in self.buffers)

    def backlog(self) -> int:
        """Packets waiting in the source queue (not yet in a buffer)."""
        return len(self.source_queue)

    def pressure(self) -> int:
        """Backlog plus occupied buffers: how loaded this NI looks."""
        return len(self.source_queue) + sum(
            1 for b in self.buffers if not b.free
        )

    def buffer_occupancy(self) -> int:
        """Flits currently sitting in this NI's injection buffers."""
        return sum(len(b.flits) for b in self.buffers)

    def register_telemetry(self, registry: "object", prefix: str) -> None:
        """Register per-NI probes (base NIs are covered by the network's
        aggregate series; EquiNox NIs add per-EIR breakdowns)."""


class MultiPortInterface(NetworkInterface):
    """NI with ``k`` buffers, each on its own port of the local router."""

    __slots__ = ()

    def __init__(
        self,
        network: Network,
        node: int,
        num_ports: int = 4,
        core: Optional[SerializationCore] = None,
        core_bytes: int = BASE_CORE_BYTES,
    ) -> None:
        self.network = network
        self.node = node
        self.source_queue = deque()
        self.buffers = [InjectionBuffer(network, node) for _ in range(num_ports)]
        self._init_core(core, core_bytes)
        self._register()


class EquiNoxInterface(NetworkInterface):
    """The paper's five-buffer CB NI with shortest-path buffer selection.

    Buffer 0 targets the local router; buffers 1..n target the CB's
    EIRs over one-cycle interposer links.  A packet is steered to a
    shortest-path EIR buffer (round-robin when two qualify), falling
    back to the local buffer, else stalling — Buffer Selection 1.
    """

    __slots__ = ("_eir_buffer", "num_idle_buffers", "_choices", "_rr")

    def __init__(
        self,
        network: Network,
        node: int,
        design: EirDesign,
        core: Optional[SerializationCore] = None,
    ) -> None:
        self.network = network
        self.node = node
        self.source_queue = deque()
        grid = network.grid
        group = design.group_by_cb[node]
        self.buffers = [InjectionBuffer(network, node)]
        self._eir_buffer: Dict[int, int] = {}  # eir node -> buffer index
        for eir in group.nodes:
            buf = InjectionBuffer(
                network,
                eir,
                interposer=True,
                length=float(grid.hops(node, eir)),
            )
            self._eir_buffer[eir] = len(self.buffers)
            self.buffers.append(buf)
        # Pad to the uniform five-buffer layout (idle ports, Figure 8).
        self.num_idle_buffers = 5 - len(self.buffers)
        self._init_core(core)
        self._register()
        # Precompute destination -> candidate EIR buffer indices.
        self._choices: Dict[int, Tuple[int, ...]] = {}
        for dst in grid.nodes():
            if dst == node:
                continue
            eirs = shortest_path_eirs(grid, design, node, dst)
            self._choices[dst] = tuple(self._eir_buffer[e] for e in eirs)
        # One round-robin pointer per candidate set.  A single pointer
        # advanced modulo the transient free-list length biases EIR
        # choice whenever candidate sets differ per destination.
        self._rr: Dict[Tuple[int, ...], int] = {}

    def register_telemetry(self, registry: "object", prefix: str) -> None:
        """Per-EIR injected flits plus this CB's backlog, over time.

        ``eir.cb<N>.local`` is buffer 0 (the CB's own router);
        ``eir.cb<N>.eir<M>`` are the interposer-linked EIR buffers.
        The final counters carry the end-of-run totals; the series
        carry the cumulative counts over time (injection-balance
        trajectories, Figures 4/7).
        """
        cb = self.node
        labels = {0: f"eir.cb{cb}.local"}
        for eir, index in self._eir_buffer.items():
            labels[index] = f"eir.cb{cb}.eir{eir}"
        for index, label in sorted(labels.items()):
            buf = self.buffers[index]
            registry.register_series(
                f"{label}.flits_sent",
                lambda buf=buf: buf.flits_sent,
            )
            registry.register_final(
                f"{label}.flits_sent", lambda buf=buf: buf.flits_sent
            )
        registry.register_series(
            f"eir.cb{cb}.backlog", lambda: len(self.source_queue)
        )

    def _assign(self, cycle: int) -> None:
        # Head-of-line policy: the NI core processes one packet at a
        # time; if no eligible buffer is free the packet retries next
        # cycle (it does not bypass to a later packet).
        while self.source_queue:
            packet = self.source_queue[0]
            buf_idx = self._select_buffer(packet)
            if buf_idx is None:
                return
            self.source_queue.popleft()
            self._load(self.buffers[buf_idx], packet, cycle)

    def _select_buffer(self, packet: Packet) -> Optional[int]:
        """Buffer Selection 1 (paper): shortest-path EIRs, else local.

        Quarantined (failed/draining) buffers are skipped, so a CB with
        failed EIR links re-selects among the survivors and degrades to
        single-injection behaviour when every EIR link is down.
        """
        candidates = self._choices.get(packet.dst, ())
        free = [i for i in candidates if self.buffers[i].available]
        if free:
            if len(free) == 1:
                chosen = free[0]
            else:
                # Rotate over the (stable) candidate tuple, not the
                # transient free list, so ties split evenly per set.
                start = self._rr.get(candidates, 0)
                n = len(candidates)
                chosen = min(
                    free, key=lambda i: (candidates.index(i) - start) % n
                )
            self._rr[candidates] = (
                (candidates.index(chosen) + 1) % len(candidates)
            )
            return chosen
        if self.buffers[0].available:
            return 0
        # All shortest-path EIR buffers busy/failed and the local
        # buffer unavailable: widen to *any* surviving EIR buffer (a
        # non-minimal EIR beats indefinite head-of-line blocking when
        # the preferred injectors are quarantined).
        if any(self.buffers[i].failed for i in range(len(self.buffers))):
            for idx in range(1, len(self.buffers)):
                if idx not in candidates and self.buffers[idx].available:
                    return idx
        return None
