"""Routing functions: XY dimension-order and odd-even minimal adaptive.

Output ports use the direction constants below; routing functions return
the set of *productive, turn-legal* output ports for a packet at some
router, and the router picks among them by downstream credit count
(minimal adaptive) or takes the single option (deterministic XY).

The odd-even turn model (Chiu, 2000) restricts where turns may happen
based on column parity, which keeps the channel dependency graph acyclic
without consuming virtual channels — that is what lets the single
network dedicate its two VCs to the request/reply protocol classes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.grid import Grid

PORT_E = 0  # +x
PORT_W = 1  # -x
PORT_S = 2  # +y
PORT_N = 3  # -y
NUM_MESH_PORTS = 4
PORT_EJECT = 4
"""Ejection is always port 4; injection ports are appended after it."""

PORT_NAMES = {PORT_E: "E", PORT_W: "W", PORT_S: "S", PORT_N: "N",
              PORT_EJECT: "EJ"}

_OPPOSITE = {PORT_E: PORT_W, PORT_W: PORT_E, PORT_S: PORT_N, PORT_N: PORT_S}


def opposite(port: int) -> int:
    """The port on the far side of a link (E<->W, N<->S)."""
    return _OPPOSITE[port]


_RIGHT = {PORT_E: PORT_S, PORT_S: PORT_W, PORT_W: PORT_N, PORT_N: PORT_E}
_LEFT = {v: k for k, v in _RIGHT.items()}


def turn_right(port: int) -> int:
    """90-degree clockwise turn (+y is south, so E -> S -> W -> N)."""
    return _RIGHT[port]


def turn_left(port: int) -> int:
    """90-degree counter-clockwise turn (E -> N -> W -> S)."""
    return _LEFT[port]


def port_delta(port: int) -> tuple:
    """The coordinate delta a mesh port moves a flit by."""
    return {
        PORT_E: (1, 0),
        PORT_W: (-1, 0),
        PORT_S: (0, 1),
        PORT_N: (0, -1),
    }[port]


def xy_route(grid: Grid, cur: int, dst: int) -> List[int]:
    """Deterministic XY: exhaust the x dimension, then y."""
    cx, cy = grid.coord(cur)
    dx, dy = grid.coord(dst)
    if cx < dx:
        return [PORT_E]
    if cx > dx:
        return [PORT_W]
    if cy < dy:
        return [PORT_S]
    if cy > dy:
        return [PORT_N]
    return [PORT_EJECT]


def odd_even_routes(grid: Grid, cur: int, src: int, dst: int) -> List[int]:
    """Minimal adaptive routes legal under the odd-even turn model.

    Implements the ROUTE function of Chiu's odd-even paper: East-to-
    North/South turns are forbidden in even columns and North/South-to-
    West turns in odd columns, and the returned set is never empty for
    a minimal route.  ``src`` is the router where the packet entered
    the network (the local router or an EIR).
    """
    cx, cy = grid.coord(cur)
    sx, _sy = grid.coord(src)
    dx, dy = grid.coord(dst)
    ex, ey = dx - cx, dy - cy
    if ex == 0 and ey == 0:
        return [PORT_EJECT]
    vertical = PORT_S if ey > 0 else PORT_N
    avail: List[int] = []
    if ex == 0:
        avail.append(vertical)
    elif ex > 0:  # eastbound
        if ey == 0:
            avail.append(PORT_E)
        else:
            if cx % 2 == 1 or cx == sx:
                avail.append(vertical)
            if dx % 2 == 1 or ex != 1:
                avail.append(PORT_E)
    else:  # westbound
        avail.append(PORT_W)
        if cx % 2 == 0 and ey != 0:
            avail.append(vertical)
    return avail


def minimal_ports(grid: Grid, cur: int, dst: int) -> List[int]:
    """Every productive mesh port toward ``dst``, ignoring turn models.

    Fault-avoidance fallback: when all turn-model-legal ports at a
    router have failed, a packet may take any other minimal port (or,
    if those are gone too, a one-hop perpendicular detour — see
    ``Router._route_and_allocate``).  The turn-model guarantee is
    traded for availability; the stall watchdog backstops the rare
    fault layouts that still trap a packet.
    """
    cx, cy = grid.coord(cur)
    dx, dy = grid.coord(dst)
    out: List[int] = []
    if dx > cx:
        out.append(PORT_E)
    if dx < cx:
        out.append(PORT_W)
    if dy > cy:
        out.append(PORT_S)
    if dy < cy:
        out.append(PORT_N)
    return out


_ROUTE_CACHE: Dict[Tuple[int, int, str, int, int, int], Tuple[int, ...]] = {}
_ROUTE_CACHE_LIMIT = 1 << 20


def route_candidates(
    grid: Grid, algorithm: str, cur: int, src: int, dst: int
) -> Sequence[int]:
    """Dispatch to the configured routing algorithm.

    Both algorithms are pure functions of the grid shape and the three
    node ids, and the router hot loop asks the same questions millions
    of times per run, so results are memoised as immutable tuples.
    """
    key = (grid.width, grid.height, algorithm, cur, src, dst)
    cached = _ROUTE_CACHE.get(key)
    if cached is not None:
        return cached
    if algorithm == "xy":
        out = tuple(xy_route(grid, cur, dst))
    elif algorithm == "oddeven":
        out = tuple(odd_even_routes(grid, cur, src, dst))
    else:
        raise ValueError(f"unknown routing algorithm {algorithm!r}")
    if len(_ROUTE_CACHE) >= _ROUTE_CACHE_LIMIT:
        _ROUTE_CACHE.clear()
    _ROUTE_CACHE[key] = out
    return out
